//! Workspace-level integration tests: the real storage stack, the workload
//! generator and the simulator agreeing with each other and with the
//! paper's analytic model.

use bytes::Bytes;
use diff_index::cluster::{Cluster, ClusterOptions};
use diff_index::core::{update_cost, DiffIndex, IndexScheme, IndexSpec};
use diff_index::lsm::{LsmOptions, TableOptions};
use diff_index::sim::{update_op, SimConfig};
use diff_index::ycsb::{DriverConfig, ItemWorkload, OpMix, Target};
use tempdir_lite::TempDir;

fn small_lsm() -> LsmOptions {
    LsmOptions {
        memtable_flush_bytes: 64 * 1024,
        table: TableOptions { block_size: 1024, bloom_bits_per_key: 10 },
        compaction_trigger: 4,
        version_retention: u64::MAX,
        ..LsmOptions::default()
    }
}

/// The YCSB driver running the paper's item workload against the real
/// Diff-Index stack.
struct RealTarget {
    di: DiffIndex,
}

impl Target for RealTarget {
    fn update(&self, row: &Bytes, columns: &[(Bytes, Bytes)]) {
        self.di.cluster().put("item", row, columns).unwrap();
    }
    fn read_index(&self, title: &Bytes) -> usize {
        self.di.get_by_index("item", "title", title, 1000).unwrap().len()
    }
}

#[test]
fn ycsb_driver_runs_item_workload_on_every_scheme() {
    for scheme in IndexScheme::all() {
        let dir = TempDir::new("e2e").unwrap();
        let cluster =
            Cluster::new(dir.path(), ClusterOptions { num_servers: 2, lsm: small_lsm() }).unwrap();
        cluster.create_table("item", 4).unwrap();
        let di = DiffIndex::new(cluster.clone());
        di.create_index(IndexSpec::single("title", "item", "item_title", scheme), 4).unwrap();

        let wl = ItemWorkload::new(20, 1_000_000, 7);
        let target = RealTarget { di: di.clone() };
        let report = diff_index::ycsb::run(
            &target,
            &wl,
            &DriverConfig {
                threads: 4,
                ops_per_thread: 100,
                mix: OpMix { update_fraction: 0.7 },
                key_space: 200,
                zipfian: true,
                seed: 11,
                batch_size: 1,
            },
        );
        assert_eq!(report.ops, 400, "scheme {scheme}");
        assert!(report.tps() > 0.0);
        assert!(report.update_hist.count() > 0);
        // After quiescing, every item's current title is indexed.
        di.quiesce("item");
        let rows = cluster.scan_rows("item", b"", None, u64::MAX, usize::MAX).unwrap();
        for (row, cols) in rows.iter().take(50) {
            let Some((_, title)) = cols.iter().find(|(c, _)| c.as_ref() == b"item_title") else {
                continue;
            };
            let hits = di.get_by_index("item", "title", &title.value, 10_000).unwrap();
            assert!(
                hits.iter().any(|h| h.row == *row),
                "scheme {scheme}: row {row:?} missing from index"
            );
        }
    }
}

#[test]
fn simulator_op_templates_agree_with_analytic_table2() {
    // The simulator's step expansion and core's analytic Table 2 must agree
    // on how much *synchronous* work each scheme does.
    for scheme in [None, Some(IndexScheme::SyncFull), Some(IndexScheme::SyncInsert), Some(IndexScheme::AsyncSimple)] {
        let template = update_op(scheme);
        let cost = update_cost(scheme);
        assert_eq!(
            template.sync_steps.len() as u32,
            cost.synchronous_ops(),
            "sync step count vs Table 2 for {scheme:?}"
        );
        let total = template.sync_steps.len() + template.background_steps.len();
        assert_eq!(total as u32, cost.total_ops(), "total ops for {scheme:?}");
    }
}

#[test]
fn real_stack_latency_ordering_matches_simulator_prediction() {
    // Measure mean update latency per scheme on the REAL stack and check the
    // ordering the simulator (and Equations 1-2) predict:
    // null <= async < insert < full.
    let mut means = Vec::new();
    for scheme in [
        None,
        Some(IndexScheme::AsyncSimple),
        Some(IndexScheme::SyncInsert),
        Some(IndexScheme::SyncFull),
    ] {
        let dir = TempDir::new("e2e-ord").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions { num_servers: 1, lsm: small_lsm() })
            .unwrap();
        cluster.create_table("item", 2).unwrap();
        let di = scheme.map(|s| {
            let di = DiffIndex::new(cluster.clone());
            di.create_index(IndexSpec::single("title", "item", "item_title", s), 2).unwrap();
            di
        });
        // Seed, so measured puts are updates with existing old entries.
        for i in 0..200u64 {
            cluster
                .put(
                    "item",
                    format!("item{i:03}").as_bytes(),
                    &[(Bytes::from_static(b"item_title"), Bytes::from(format!("seed{i}")))],
                )
                .unwrap();
        }
        if let Some(di) = &di {
            di.quiesce("item");
        }
        let t0 = std::time::Instant::now();
        const OPS: u64 = 400;
        for i in 0..OPS {
            cluster
                .put(
                    "item",
                    format!("item{:03}", i % 200).as_bytes(),
                    &[(Bytes::from_static(b"item_title"), Bytes::from(format!("v{i}")))],
                )
                .unwrap();
        }
        means.push(t0.elapsed().as_nanos() as f64 / OPS as f64);
    }
    let (null, asy, insert, full) = (means[0], means[1], means[2], means[3]);
    // Wall-clock on a shared test machine is noisy; assert only the
    // relationships with large margins. async's client path adds just an
    // enqueue, but the APS thread competes for CPU in-process, so compare
    // it against sync-full (5x the work) rather than sync-insert.
    assert!(asy < full, "async {asy} must be cheaper than full {full}");
    assert!(insert < full, "insert {insert} must be cheaper than full {full}");
    assert!(null < full, "null {null} must be cheapest vs full {full}");
}

#[test]
fn simulated_cluster_and_real_cluster_share_scheme_semantics() {
    // Sanity link between the two worlds: the scheme the simulator labels
    // fastest-update / slowest-read must actually be the one whose REAL
    // index is stale before quiesce (async), and the slowest-update scheme
    // must have an immediately consistent REAL index (sync-full).
    let cfg = SimConfig::in_house();
    let lat = |s| update_op(Some(s)).sync_steps.iter()
        .map(|st: &diff_index::sim::Step| st.service(&cfg) + st.extra_latency(&cfg))
        .sum::<u64>();
    assert!(lat(IndexScheme::AsyncSimple) < lat(IndexScheme::SyncFull));

    let dir = TempDir::new("e2e-link").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 1, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("full", "item", "a", IndexScheme::SyncFull), 2).unwrap();
    di.create_index(IndexSpec::single("async", "item", "b", IndexScheme::AsyncSimple), 2)
        .unwrap();
    let handle = di.index("item", "async").unwrap();
    cluster
        .put(
            "item",
            b"r1",
            &[
                (Bytes::from_static(b"a"), Bytes::from_static(b"va")),
                (Bytes::from_static(b"b"), Bytes::from_static(b"vb")),
            ],
        )
        .unwrap();
    // sync-full: immediately visible, guaranteed (causal consistency).
    assert_eq!(di.get_by_index("item", "full", b"va", 10).unwrap().len(), 1);
    // async: work went through the AUQ; eventually visible.
    assert_eq!(
        handle.auq().metrics().enqueued.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    di.quiesce("item");
    assert_eq!(di.get_by_index("item", "async", b"vb", 10).unwrap().len(), 1);
}

//! # diff-index
//!
//! Facade crate for the Diff-Index reproduction (EDBT 2014, Tan et al.):
//! differentiated secondary-index maintenance in distributed log-structured
//! data stores. Re-exports the workspace crates:
//!
//! * [`core`] — the paper's contribution: the four index maintenance
//!   schemes, AUQ/APS, session consistency, failure recovery.
//! * [`cluster`] — the HBase-like multi-region substrate.
//! * [`lsm`] — the from-scratch LSM storage engine.
//! * [`btree`] — the B+Tree baseline (Table 1).
//! * [`sim`] — the discrete-event cluster simulator behind the figures.
//! * [`ycsb`] — the extended YCSB workload generator.
//! * [`net`] — the TCP wire protocol, region-server frontend, and remote
//!   store client.
pub use diff_index_btree as btree;
pub use diff_index_cluster as cluster;
pub use diff_index_core as core;
pub use diff_index_lsm as lsm;
pub use diff_index_net as net;
pub use diff_index_sim as sim;
pub use diff_index_ycsb as ycsb;

//! Minimal re-implementation of the `proptest` API surface used by this
//! workspace's property tests.
//!
//! The build environment has no access to crates.io (see shims/README.md),
//! so this crate supplies the subset the tests rely on: `proptest!` with an
//! optional `proptest_config` attribute, `any::<T>()`, integer ranges and
//! tuples as strategies, `prop_map`, `Just`, weighted `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for simplicity:
//! - Value generation is purely random (deterministic per test name); there
//!   is no shrinking. A failing case panics with the case number so it can
//!   be replayed — the stream for a given test function never changes.
//! - `.proptest-regressions` files are ignored.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::RngExt;

/// The generator threaded through strategies while producing a test case.
pub type TestRng = StdRng;

/// Failure value for property bodies that return `Result`, mirroring
/// `proptest::test_runner::TestCaseError`. The shim's `prop_assert*` macros
/// panic instead of constructing this, but helper functions in tests can
/// still name it and propagate with `?`.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The input was rejected (not a failure).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration, mirroring the `proptest::prelude::ProptestConfig`
/// fields this workspace sets.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
    /// Accepted for source compatibility with real proptest; this shim
    /// does not shrink failing inputs, so the value is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    /// 256 cases, overridable at runtime with the `PROPTEST_CASES`
    /// environment variable — the same knob real proptest honours, so
    /// `PROPTEST_CASES=512 cargo test` deepens every property that uses
    /// the default config without a rebuild.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(256);
        ProptestConfig { cases, max_shrink_iters: 1024 }
    }
}

/// A source of random values of an associated type.
///
/// Object-safe core (`new_value`) plus sized combinators, so strategies can
/// be boxed for heterogeneous `prop_oneof!` arms.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { source: self, map: f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// Strategy for any value of `T`, returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    <$t>::arbitrary(rng).max(lo)
                } else {
                    rng.random_range(lo..hi + 1)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Strategy combinators.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Weighted choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, super::BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms. Weights must sum > 0.
        pub fn new_weighted(arms: Vec<(u32, super::BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            use rand::RngExt;
            let mut pick = rng.random_range(0..self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.new_value(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights covered the full range")
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generate vectors of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec length range is empty");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::RngExt;
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test-execution support used by the `proptest!` macro expansion.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Per-test deterministic runner state.
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// Seed deterministically from the test function's name, so each
        /// property sees a stable stream across runs.
        pub fn new(test_name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner { rng: TestRng::seed_from_u64(hash) }
        }

        /// Access the case-generation RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// Alias so `prop::collection::vec(..)` resolves, as in the real crate.
    pub use crate as prop;
}

/// Property-test entry point. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(arg in
/// strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                $(let $arg = $strat;)+
                for case in 0..cfg.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::new_value(&$arg, runner.rng());)+
                        // Closure so property bodies can use `?` with
                        // helpers returning `Result<_, TestCaseError>`.
                        #[allow(clippy::redundant_closure_call)]
                        let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })();
                        if let Err(e) = outcome {
                            panic!("{}", e);
                        }
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: property `{}` failed on case {}/{} \
                             (deterministic stream; rerun reproduces it)",
                            stringify!($name), case + 1, cfg.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Weighted one-of strategy choice: `prop_oneof![w1 => s1, w2 => s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Put(u8, u16),
        Del(u8),
        Flush,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Put(k, v)),
            2 => any::<u8>().prop_map(Op::Del),
            1 => Just(Op::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..8, v in prop::collection::vec(any::<u16>(), 1..20)) {
            prop_assert!(x < 8);
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn oneof_yields_every_arm(ops in prop::collection::vec(op_strategy(), 1..120)) {
            // Not a strict guarantee per case, but the strategy must compile
            // and yield valid values.
            for op in &ops {
                match op {
                    Op::Put(_, _) | Op::Del(_) | Op::Flush => {}
                }
            }
            prop_assert_ne!(ops.len(), 0);
        }
    }

    #[test]
    fn deterministic_stream_per_test_name() {
        use crate::test_runner::TestRunner;
        let mut a = TestRunner::new("alpha");
        let mut b = TestRunner::new("alpha");
        let s = any::<u64>();
        for _ in 0..16 {
            assert_eq!(s.new_value(a.rng()), s.new_value(b.rng()));
        }
    }
}

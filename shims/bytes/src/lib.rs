//! Minimal, dependency-free re-implementation of the subset of the `bytes`
//! crate used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim (wired up via path dependencies in the root `Cargo.toml`). It is
//! API-compatible with the real crate for everything the repo calls:
//!
//! * [`Bytes`] — cheaply cloneable, immutable byte buffer backed by an
//!   `Arc<[u8]>` plus an offset/length window. [`Bytes::slice`] is O(1) and
//!   allocation-free, which the LSM read path relies on for zero-copy block
//!   decoding.
//! * [`BytesMut`] — growable buffer that freezes into a `Bytes`.
//! * [`BufMut`] — the small write-primitive trait (`put_u8` & friends).

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
///
/// Internally an `Arc<[u8]>` with an `(offset, len)` window, so `clone` and
/// [`Bytes::slice`] are O(1) and share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    /// `None` means the empty buffer (avoids allocating for `Bytes::new()`).
    data: Option<Arc<[u8]>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// The empty buffer. Does not allocate.
    pub const fn new() -> Self {
        Bytes { data: None, off: 0, len: 0 }
    }

    /// Buffer over a static slice. (The shim copies once; semantics match.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Copy `data` into a freshly allocated buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.is_empty() {
            return Bytes::new();
        }
        Bytes { data: Some(Arc::from(data)), off: 0, len: data.len() }
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.off..self.off + self.len],
            None => &[],
        }
    }

    /// O(1) sub-window sharing the same allocation. Panics if the range is
    /// out of bounds, mirroring the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of bounds of {}", self.len);
        if start == end {
            return Bytes::new();
        }
        Bytes { data: self.data.clone(), off: self.off + start, len: end - start }
    }

    /// Split off the tail at `at`, leaving `[0, at)` in `self`. O(1).
    pub fn split_off(&mut self, at: usize) -> Self {
        let tail = self.slice(at..);
        self.len = at;
        tail
    }

    /// Split off the head up to `at`, leaving `[at, len)` in `self`. O(1).
    pub fn split_to(&mut self, at: usize) -> Self {
        let head = self.slice(..at);
        self.off += at;
        self.len -= at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Bytes::new();
        }
        let len = v.len();
        Bytes { data: Some(Arc::from(v.into_boxed_slice())), off: 0, len }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        if len == 0 {
            return Bytes::new();
        }
        Bytes { data: Some(Arc::from(v)), off: 0, len }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that can be frozen into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

/// Write primitives over growable byte sinks.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(s2.as_slice(), &[3]);
        // Same backing Arc.
        assert!(Arc::ptr_eq(b.data.as_ref().unwrap(), s2.data.as_ref().unwrap()));
    }

    #[test]
    fn ordering_and_equality_match_slices() {
        let a = Bytes::from("apple");
        let b = Bytes::from("banana");
        assert!(a < b);
        assert_eq!(a, Bytes::copy_from_slice(b"apple"));
        assert_eq!(a, "apple");
        assert_eq!(a.as_ref(), b"apple");
    }

    #[test]
    fn bytesmut_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0x01);
        m.extend_from_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.as_slice(), &[0x01, b'x', b'y']);
    }

    #[test]
    fn split_off_and_split_to() {
        let mut b = Bytes::from("hello world");
        let tail = b.split_off(5);
        assert_eq!(b, "hello");
        assert_eq!(tail, " world");
        let mut t = tail;
        let head = t.split_to(1);
        assert_eq!(head, " ");
        assert_eq!(t, "world");
    }

    #[test]
    fn empty_is_free() {
        assert!(Bytes::new().data.is_none());
        assert!(Bytes::from(Vec::new()).data.is_none());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn borrow_enables_slice_keyed_lookup() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<Bytes, u32> = BTreeMap::new();
        m.insert(Bytes::from("k1"), 1);
        assert_eq!(m.get(b"k1".as_slice()), Some(&1));
        assert_eq!(m.range::<[u8], _>((Bound::Included(b"k0".as_slice()), Bound::Unbounded)).count(), 1);
    }
}

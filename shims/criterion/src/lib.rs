//! Minimal re-implementation of the `criterion` API surface used by this
//! workspace's benchmarks.
//!
//! The build environment has no access to crates.io (see shims/README.md).
//! This shim keeps the familiar `criterion_group!` / `criterion_main!` /
//! `benchmark_group` / `Bencher::iter` shape and prints a compact
//! mean / p50 / p99 summary per benchmark. There is no statistical
//! regression analysis, HTML report, or warm-up tuning — samples are taken
//! with an adaptive batch size targeting a fixed per-benchmark time budget.
//!
//! Extra over the real crate: `--json <path>` (or `CRITERION_JSON=<path>`)
//! appends one JSON object per benchmark to a file, which the repo's
//! `hotpath` harness uses to emit machine-readable results.

#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample batching hint, mirroring `criterion::BatchSize`.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup output; many routine calls per batch are fine.
    SmallInput,
    /// Large setup output; run the routine once per setup call.
    LargeInput,
    /// One routine call per setup call.
    PerIteration,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    json_path: Option<String>,
    filter: Option<String>,
}


impl Criterion {
    /// Apply command-line configuration (`--json <path>`, and a positional
    /// substring filter like the real crate's). Unknown cargo-bench flags
    /// such as `--bench` are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => self.json_path = args.next(),
                "--bench" | "--profile-time" => {
                    // consumed flag (value, if any, handled below)
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        if self.json_path.is_none() {
            self.json_path = std::env::var("CRITERION_JSON").ok();
        }
        self
    }

    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run_one(&id, 100, f);
    }

    fn run_one(&mut self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size };
        f(&mut bencher);
        let stats = Stats::from_samples(&bencher.samples);
        println!(
            "{:<48} time: [mean {} p50 {} p99 {}]  ({} samples)",
            id,
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.p50_ns),
            fmt_ns(stats.p99_ns),
            stats.count,
        );
        if let Some(path) = &self.json_path {
            let line = format!(
                "{{\"name\":{:?},\"mean_ns\":{:.1},\"p50_ns\":{:.1},\"p99_ns\":{:.1},\"samples\":{}}}\n",
                id, stats.mean_ns, stats.p50_ns, stats.p99_ns, stats.count,
            );
            if let Ok(mut file) =
                std::fs::OpenOptions::new().create(true).append(true).open(path)
            {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }

    /// Flush/finalize (no-op in the shim; kept for drop parity).
    pub fn final_summary(&mut self) {}
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, f);
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collected timing statistics for one benchmark.
struct Stats {
    mean_ns: f64,
    p50_ns: f64,
    p99_ns: f64,
    count: usize,
}

impl Stats {
    fn from_samples(samples: &[f64]) -> Stats {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if sorted.is_empty() {
            return Stats { mean_ns: 0.0, p50_ns: 0.0, p99_ns: 0.0, count: 0 };
        }
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        Stats { mean_ns: mean, p50_ns: pct(0.5), p99_ns: pct(0.99), count: sorted.len() }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing driver handed to each benchmark closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

/// Total measurement budget per benchmark; keeps full `cargo bench` runs
/// tractable while still collecting `sample_size` samples for fast routines.
const TIME_BUDGET: Duration = Duration::from_secs(2);

impl Bencher {
    /// Time `routine`, collecting per-iteration wall-clock samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in ~1/sample_size of the budget?
        let calib = Instant::now();
        black_box(routine());
        let once = calib.elapsed().max(Duration::from_nanos(1));
        let per_sample = TIME_BUDGET / self.sample_size.max(1) as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Declare a group-runner function from benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare `fn main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Stats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ns, 51.0);
        assert_eq!(s.p99_ns, 99.0);
    }

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}

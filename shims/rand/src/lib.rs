//! Minimal re-implementation of the `rand` API surface used by this
//! workspace: a deterministic, seedable generator behind the familiar
//! `StdRng` / `SeedableRng` / `RngExt` names.
//!
//! The build environment has no access to crates.io (see shims/README.md).
//! The core generator is xoshiro256++ seeded via splitmix64 — high quality
//! for simulation / workload-generation purposes and fully deterministic
//! per seed, which is all the callers need. It is NOT cryptographically
//! secure.

#![warn(missing_docs)]

/// Construction of generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly at random by [`RngExt::random`].
pub trait Random {
    /// Draw one value from `rng`.
    fn random(rng: &mut rngs::StdRng) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f64 {
    fn random(rng: &mut rngs::StdRng) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`RngExt::random_range`] bounds.
pub trait RangeSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of a 64-bit draw over simulation-sized spans is
                // irrelevant here.
                let draw = (rng.next_u64() as u128) % span;
                lo + draw as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Convenience methods on generators, mirroring the `rand` 0.9 `Rng` surface
/// this workspace uses.
pub trait RngExt {
    /// Draw one uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T;

    /// Draw uniformly from a half-open range `lo..hi` (`lo < hi` required).
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T;

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]);
}

impl RngExt for rngs::StdRng {
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(!range.is_empty(), "random_range called with empty range");
        T::sample(self, range.start, range.end)
    }

    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Concrete generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::SeedableRng;

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Advance the generator and return the next 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the 64-bit seed into four state words with splitmix64,
            // as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

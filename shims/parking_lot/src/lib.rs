//! Minimal re-implementation of the `parking_lot` API surface used by this
//! workspace, backed by `std::sync` primitives.
//!
//! The build environment has no access to crates.io (see shims/README.md).
//! Semantics match what the repo relies on: non-poisoning guards returned
//! directly from `lock()` / `read()` / `write()`, and a [`Condvar`] that
//! waits on a `&mut MutexGuard`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex that ignores poisoning, mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // underlying std guard (std's wait consumes it by value).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning a guard. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// A reader-writer lock that ignores poisoning, mirroring
/// `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait, mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`], mirroring
/// `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.0.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, result) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            *started = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait(&mut started);
        }
        h.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}

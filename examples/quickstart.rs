//! Quickstart: create a distributed LSM store, add a Diff-Index secondary
//! index, write some rows, and query by value.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempdir_lite::TempDir::new("diffindex-quickstart")?;

    // An in-process "cluster": 2 region servers, each hosting regions of
    // every table, backed by a real LSM engine (WAL + SSTables on disk).
    let cluster = Cluster::new(dir.path(), ClusterOptions { num_servers: 2, ..Default::default() })?;
    cluster.create_table("item", 4)?;

    // Attach Diff-Index and create a global secondary index on item_title.
    // sync-full = strongest consistency: index updated before the put acks.
    let di = DiffIndex::new(cluster.clone());
    di.create_index(
        IndexSpec::single("by_title", "item", "item_title", IndexScheme::SyncFull),
        4,
    )?;

    // Regular writes through the cluster client; the coprocessor maintains
    // the index transparently.
    cluster.put("item", b"item-001", &[(b("item_title"), b("red shirt")), (b("item_price"), b("0019"))])?;
    cluster.put("item", b"item-002", &[(b("item_title"), b("blue jeans")), (b("item_price"), b("0049"))])?;
    cluster.put("item", b"item-003", &[(b("item_title"), b("red shirt")), (b("item_price"), b("0021"))])?;

    // Query by indexed value — a prefix scan on the index table, no base
    // table broadcast.
    let hits = di.get_by_index("item", "by_title", b"red shirt", 100)?;
    println!("items titled 'red shirt':");
    for h in &hits {
        let row = di.fetch_rows("item", "by_title", std::slice::from_ref(h))?;
        let (key, cols) = &row[0];
        let price = cols
            .iter()
            .find(|(c, _)| c.as_ref() == b"item_price")
            .map(|(_, v)| String::from_utf8_lossy(&v.value).into_owned())
            .unwrap_or_default();
        println!("  {} (price {})", String::from_utf8_lossy(key), price);
    }
    assert_eq!(hits.len(), 2);

    // Updates move index entries atomically-enough for sync-full: the old
    // entry is deleted in the same synchronous sequence (Algorithm 1).
    cluster.put("item", b"item-001", &[(b("item_title"), b("green shirt"))])?;
    assert_eq!(di.get_by_index("item", "by_title", b"red shirt", 100)?.len(), 1);
    assert_eq!(di.get_by_index("item", "by_title", b"green shirt", 100)?.len(), 1);
    println!("after retitling item-001: 1x red shirt, 1x green shirt ✓");

    Ok(())
}

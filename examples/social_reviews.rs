//! The paper's motivating application (§1, Figure 1): a social review site
//! with Reviews, Users and Products tables. Reviews is partitioned by
//! ReviewID, so "all reviews for restaurant X" and "all reviews by user Y"
//! need global secondary indexes.
//!
//! This example also demonstrates the per-index scheme choice (§3.4): the
//! product index is read-latency-critical (served on every product page) so
//! it uses sync-full; the user index is update-latency-critical (hot write
//! path) so it uses sync-insert; a trending-score index tolerates staleness
//! and uses async-simple.
//!
//! Run with: `cargo run --example social_reviews`

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempdir_lite::TempDir::new("diffindex-reviews")?;
    let cluster = Cluster::new(dir.path(), ClusterOptions { num_servers: 4, ..Default::default() })?;

    // Figure 1 schema.
    cluster.create_table("Reviews", 8)?; // partitioned by ReviewID
    cluster.create_table("Users", 4)?;
    cluster.create_table("Products", 4)?;

    let di = DiffIndex::new(cluster.clone());
    // Principle (2): "use sync-full when read latency is critical".
    di.create_index(
        IndexSpec::single("by_product", "Reviews", "ProductID", IndexScheme::SyncFull),
        8,
    )?;
    // Principle (3): "use sync-insert when update latency is critical".
    di.create_index(
        IndexSpec::single("by_user", "Reviews", "UserID", IndexScheme::SyncInsert),
        8,
    )?;
    // Principle (4): "use async-simple when consistency is not a concern".
    di.create_index(
        IndexSpec::single("by_rating", "Reviews", "Rating", IndexScheme::AsyncSimple),
        8,
    )?;

    // Seed products and users.
    for (id, name) in [("prod-1", "Bella Napoli"), ("prod-2", "Sushi Zen"), ("prod-3", "Taco Town")] {
        cluster.put("Products", id.as_bytes(), &[(b("Name"), b(name))])?;
    }
    for (id, name) in [("user-1", "alice"), ("user-2", "bob"), ("user-3", "carol")] {
        cluster.put("Users", id.as_bytes(), &[(b("Name"), b(name))])?;
    }

    // Post reviews: each review names a product, an author and a rating.
    let reviews = [
        ("rev-001", "prod-1", "user-1", "5", "best pizza in town"),
        ("rev-002", "prod-1", "user-2", "4", "great crust"),
        ("rev-003", "prod-2", "user-1", "5", "freshest fish"),
        ("rev-004", "prod-3", "user-3", "2", "too salty"),
        ("rev-005", "prod-1", "user-3", "3", "slow service"),
        ("rev-006", "prod-2", "user-2", "4", "nice omakase"),
    ];
    for (rid, pid, uid, rating, text) in reviews {
        cluster.put(
            "Reviews",
            rid.as_bytes(),
            &[
                (b("ProductID"), b(pid)),
                (b("UserID"), b(uid)),
                (b("Rating"), b(rating)),
                (b("Text"), b(text)),
            ],
        )?;
    }

    // "Find all reviews for a given restaurant" — selective query served by
    // the global index (no broadcast to all Reviews regions, §3.1).
    let hits = di.get_by_index("Reviews", "by_product", b"prod-1", 100)?;
    println!("reviews for Bella Napoli ({}):", hits.len());
    for h in &hits {
        let rows = di.fetch_rows("Reviews", "by_product", std::slice::from_ref(h))?;
        let text = rows[0]
            .1
            .iter()
            .find(|(c, _)| c.as_ref() == b"Text")
            .map(|(_, v)| String::from_utf8_lossy(&v.value).into_owned())
            .unwrap_or_default();
        println!("  {} — {}", String::from_utf8_lossy(&h.row), text);
    }
    assert_eq!(hits.len(), 3);

    // "Find all reviews written by a given user" — sync-insert index;
    // reads double-check against the base table (Algorithm 2).
    let hits = di.get_by_index("Reviews", "by_user", b"user-1", 100)?;
    println!("reviews by alice: {}", hits.len());
    assert_eq!(hits.len(), 2);

    // Rating histogram via the async index (eventually consistent; quiesce
    // to observe the converged state).
    di.quiesce("Reviews");
    for rating in ["5", "4", "3", "2"] {
        let n = di.get_by_index("Reviews", "by_rating", rating.as_bytes(), 100)?.len();
        println!("rating {rating}: {n} review(s)");
    }

    // A user edits their review's rating: all three indexes converge.
    cluster.put("Reviews", b"rev-004", &[(b("Rating"), b("4"))])?;
    di.quiesce("Reviews");
    assert!(di.get_by_index("Reviews", "by_rating", b"2", 100)?.is_empty());
    assert_eq!(di.get_by_index("Reviews", "by_rating", b"4", 100)?.len(), 3);
    println!("rev-004 rating edited 2 -> 4; async index converged ✓");

    Ok(())
}

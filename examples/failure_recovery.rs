//! Failure recovery (§5.3): crash a region server while asynchronous index
//! updates are pending, run master recovery (region reassignment + WAL
//! replay + AUQ re-enqueue), and show that the index converges to a correct
//! state with no separate index log.
//!
//! Run with: `cargo run --example failure_recovery`

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempdir_lite::TempDir::new("diffindex-recovery")?;
    let cluster = Cluster::new(dir.path(), ClusterOptions { num_servers: 3, ..Default::default() })?;
    cluster.create_table("item", 6)?;
    let di = DiffIndex::new(cluster.clone());
    let handle = di.create_index(
        IndexSpec::single("by_title", "item", "item_title", IndexScheme::AsyncSimple),
        6,
    )?;

    // Phase 1: steady-state writes; some index deliveries will still be
    // queued in the AUQ when we pull the plug.
    for i in 0..100 {
        cluster.put(
            "item",
            format!("item-{i:03}").as_bytes(),
            &[(b("item_title"), b("survivor"))],
        )?;
    }
    println!(
        "wrote 100 rows; AUQ depth before crash: {} (enqueued {})",
        handle.auq().depth(),
        handle.auq().metrics().enqueued.load(std::sync::atomic::Ordering::Relaxed),
    );

    // Phase 2: crash server 0. Its memtables (base AND index regions) are
    // gone; WAL segments and SSTables survive on durable storage.
    cluster.crash_server(0);
    println!("server 0 crashed; alive servers: {:?}", cluster.servers());
    match cluster.put("item", b"probe-row", &[(b("probe_col"), b("x"))]) {
        Err(e) => println!("write routed to dead server fails as expected: {e}"),
        Ok(_) => println!("probe write happened to route to a surviving server"),
    }

    // Phase 3: master recovery — reassign regions, replay WALs, and
    // re-enqueue every replayed base put into the AUQ (idempotent).
    cluster.recover()?;
    println!("recovery complete; regions reassigned to survivors");

    // Phase 4: convergence. After the AUQ drains, the index is complete:
    // every row is indexed exactly once despite crash + re-delivery.
    di.quiesce("item");
    let hits = di.get_by_index("item", "by_title", b"survivor", 1000)?;
    println!("index entries after recovery: {} (expected 100)", hits.len());
    assert_eq!(hits.len(), 100);

    // Phase 5: the cluster keeps serving; subsequent writes index normally.
    cluster.put("item", b"item-new", &[(b("item_title"), b("post-crash"))])?;
    di.quiesce("item");
    assert_eq!(di.get_by_index("item", "by_title", b"post-crash", 10)?.len(), 1);
    println!("post-recovery writes indexed correctly ✓");

    let m = handle.auq().metrics();
    println!(
        "AUQ totals: enqueued={} completed={} retries={} dropped={}",
        m.enqueued.load(std::sync::atomic::Ordering::Relaxed),
        m.completed.load(std::sync::atomic::Ordering::Relaxed),
        m.retries.load(std::sync::atomic::Ordering::Relaxed),
        m.dropped.load(std::sync::atomic::Ordering::Relaxed),
    );
    Ok(())
}

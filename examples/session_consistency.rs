//! Session consistency (§3.3 and §5.2): the exact two-user interaction from
//! the paper, run against the `async-session` scheme.
//!
//! | time | User 1                         | User 2                        |
//! |------|--------------------------------|-------------------------------|
//! | 1    | view reviews for product A     | view reviews for product B   |
//! | 2    | post review for product A      |                               |
//! | 3    | view reviews for product A     | view reviews for product A   |
//!
//! User 1 must see their own review at time 3 (read-your-writes), even
//! though the index is maintained asynchronously; User 2 is only guaranteed
//! to see it eventually.
//!
//! Run with: `cargo run --example session_consistency`

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempdir_lite::TempDir::new("diffindex-session")?;
    let cluster = Cluster::new(dir.path(), ClusterOptions { num_servers: 2, ..Default::default() })?;
    cluster.create_table("Reviews", 4)?;
    let di = DiffIndex::new(cluster.clone());
    di.create_index(
        IndexSpec::single("by_product", "Reviews", "ProductID", IndexScheme::AsyncSession),
        4,
    )?;

    // Existing reviews, fully indexed.
    cluster.put("Reviews", b"rev-old-A", &[(b("ProductID"), b("productA"))])?;
    cluster.put("Reviews", b"rev-old-B", &[(b("ProductID"), b("productB"))])?;
    di.quiesce("Reviews");

    // get_session() — the paper's sample interaction.
    let user1 = di.session();
    let user2 = di.session();
    println!("user1 session id = {}, user2 session id = {}", user1.id(), user2.id());

    // time=1
    let u1_a = user1.get_by_index("Reviews", "by_product", b"productA", 100)?;
    let u2_b = user2.get_by_index("Reviews", "by_product", b"productB", 100)?;
    println!("t1: user1 sees {} review(s) for A; user2 sees {} for B", u1_a.len(), u2_b.len());

    // time=2: user 1 posts a review for product A *within the session*.
    user1.put("Reviews", b"rev-new", &[(b("ProductID"), b("productA"))])?;
    println!("t2: user1 posted rev-new for product A");

    // time=3: user 1 lists reviews for A — MUST include rev-new even if the
    // AUQ hasn't delivered the index entry yet.
    let u1_view = user1.get_by_index("Reviews", "by_product", b"productA", 100)?;
    let u1_rows: Vec<String> =
        u1_view.iter().map(|h| String::from_utf8_lossy(&h.row).into_owned()).collect();
    println!("t3: user1 sees {u1_rows:?}");
    assert!(
        u1_rows.iter().any(|r| r == "rev-new"),
        "read-your-writes: user1 must see their own review"
    );

    // user 2's view is only eventually consistent: it may or may not have
    // rev-new right now, but after the AUQ drains it must.
    di.quiesce("Reviews");
    let u2_view = user2.get_by_index("Reviews", "by_product", b"productA", 100)?;
    assert_eq!(u2_view.len(), 2);
    println!("after AUQ drain: user2 sees {} reviews for A ✓", u2_view.len());

    // Session hygiene: end_session() garbage-collects the private table.
    user1.end();
    assert!(user1.get_by_index("Reviews", "by_product", b"productA", 1).is_err());
    println!("user1 session ended; further session reads are rejected ✓");

    Ok(())
}

//! # diff-index-sim
//!
//! A deterministic discrete-event simulation of the paper's experimental
//! clusters (the 8-server in-house cluster of §8.1 and the 40-VM RC2 cloud
//! of Figure 10), used to regenerate every latency/throughput/staleness
//! figure of the evaluation.
//!
//! Why simulate? The figures' content is *queueing behaviour* — how each
//! scheme's per-operation work (Table 2) turns into latency as servers
//! approach saturation, and how the AUQ's deferred work competes with
//! foreground traffic. A calibrated event-driven model of FIFO region
//! servers reproduces those shapes deterministically on any machine, which
//! is exactly what a reproduction needs (the absolute milliseconds of
//! 2013-era Xeons are not reproducible on principle). The correctness of
//! the schemes themselves is established against the *real* engine in
//! `diff-index-core`'s tests; the simulator reuses the same scheme
//! definitions via [`diff_index_core::IndexScheme`].

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod experiments;
pub mod ops;

pub use config::SimConfig;
pub use engine::{RunResult, Sim};
pub use experiments::{
    client_sweep, range_query_sweep, read_curves, staleness_sweep, update_curves, Curve,
    CurvePoint, RangePoint, StalenessPoint, DEFAULT_DURATION_US,
};
pub use ops::{exact_read_op, range_read_op, update_op, OpTemplate, Step, StepKind};

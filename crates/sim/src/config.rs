//! Calibrated cost model for the cluster simulator.
//!
//! The paper's absolute numbers come from 2013-era Xeon boxes we don't
//! have; what the figures actually demonstrate is *relative* behaviour:
//! latency ratios between schemes at low load, the shape of the
//! latency-vs-throughput curve near saturation, who saturates first, and
//! how staleness explodes as the AUQ competes for resources. The constants
//! below are calibrated so the simulated 8-server cluster reproduces those
//! relationships (see EXPERIMENTS.md for the paper-vs-measured table):
//!
//! * base put ≈ 2 ms at low load (client buffer off, WAL append);
//! * `sync-insert` update ≈ 2× a base put (paper §8.2, Figure 7);
//! * `sync-full` update ≈ 5× (its `RB` is disk-bounded, §8.2);
//! * `async` update ≈ a base put, but its deferred work competes for
//!   server capacity and its latency overtakes `sync-insert` at high load;
//! * `async` saturates ≈ 30 % above `sync-full` (4200 vs 3200 TPS,
//!   §8.2 "Index consistency"), credited to AUQ batching;
//! * exact-match reads: `sync-full` fast (small warmed index table),
//!   `sync-insert` much slower (K base-table double-checks, Figure 8).

/// All times in simulated microseconds.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of region servers.
    pub servers: usize,
    /// RNG seed (server choice per step, arrival jitter).
    pub seed: u64,

    // --- server-occupancy (service) costs ---------------------------------
    /// Base-table put: WAL append + memtable insert.
    pub svc_base_put: u64,
    /// Index-table put or delete (small key-only record).
    pub svc_index_put: u64,
    /// Base-table read handler time (excludes disk wait, which is
    /// `lat_base_read_extra` and does not occupy the handler).
    pub svc_base_read: u64,
    /// Index-table exact-match read handler time.
    pub svc_index_read: u64,
    /// Additional index-scan handler time per returned row.
    pub svc_scan_per_row: u64,

    // --- latency-only components (no server occupancy) --------------------
    /// Network round trip per remote operation.
    pub lat_rpc: u64,
    /// Extra latency of an index put (remote region, WAL sync window).
    pub lat_index_put_extra: u64,
    /// Extra latency of a disk-bounded base read (the paper's slow `RB`;
    /// §8.1 sizes the data so reads are disk-bounded).
    pub lat_base_read_extra: u64,
    /// Extra latency of an index read (warmed block cache, §8.1).
    pub lat_index_read_extra: u64,
    /// Extra scan latency per returned row.
    pub lat_scan_per_row: u64,

    // --- asynchronous processing ------------------------------------------
    /// Service-cost multiplier for AUQ background work (< 1: the APS batches
    /// operations, the effect the paper credits for async's ~30 % higher
    /// saturation throughput).
    pub background_batch_factor: f64,
    /// Concurrent background tasks per region server's APS. The real APS
    /// overlaps many in-flight index updates (their latency is mostly disk
    /// and network wait, not handler time); a single serial worker would
    /// cap background throughput far below what §8.2 observes.
    pub aps_workers: usize,
    /// Cache-miss probability of the per-row base-table double checks in
    /// *range* reads (Algorithm 2 over a contiguous, repeatedly queried
    /// range is largely cache-friendly; exact-match checks against random
    /// rows pay the full disk cost).
    pub range_check_miss_rate: f64,
}

impl SimConfig {
    /// The paper's in-house cluster (§8.1): 8 region servers, 40 M rows,
    /// disk-bounded reads, warmed cache for read experiments.
    pub fn in_house() -> Self {
        Self {
            servers: 8,
            seed: 0xD1FF,
            svc_base_put: 1740,
            svc_index_put: 240,
            svc_base_read: 200,
            svc_index_read: 300,
            svc_scan_per_row: 8,
            lat_rpc: 260,
            lat_index_put_extra: 1500,
            lat_base_read_extra: 4400,
            lat_index_read_extra: 500,
            lat_scan_per_row: 12,
            background_batch_factor: 0.35,
            aps_workers: 32,
            range_check_miss_rate: 0.10,
        }
    }

    /// The RC2 virtual cluster (§8.2, Figure 10): 40 data servers, 5× data,
    /// but each VM is weaker than the physical boxes and virtualization
    /// adds indirection + I/O contention — the paper observes < 4× TPS and
    /// latencies "a couple of times larger" at 5× the load.
    pub fn rc2_cloud() -> Self {
        let base = Self::in_house();
        Self {
            servers: 40,
            // Weaker virtual CPU + contended virtual disk: every cost grows.
            svc_base_put: (base.svc_base_put as f64 * 1.65) as u64,
            svc_index_put: (base.svc_index_put as f64 * 1.65) as u64,
            svc_base_read: (base.svc_base_read as f64 * 1.65) as u64,
            svc_index_read: (base.svc_index_read as f64 * 1.65) as u64,
            svc_scan_per_row: (base.svc_scan_per_row as f64 * 1.65) as u64,
            lat_rpc: (base.lat_rpc as f64 * 2.2) as u64, // virtual network indirection
            lat_index_put_extra: (base.lat_index_put_extra as f64 * 1.8) as u64,
            lat_base_read_extra: (base.lat_base_read_extra as f64 * 2.0) as u64,
            lat_index_read_extra: (base.lat_index_read_extra as f64 * 1.8) as u64,
            lat_scan_per_row: (base.lat_scan_per_row as f64 * 1.8) as u64,
            ..base
        }
    }

    /// Aggregate service capacity in server-microseconds per microsecond.
    pub fn capacity(&self) -> f64 {
        self.servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_house_matches_latency_equation_targets() {
        let c = SimConfig::in_house();
        // Low-load latency targets (see module docs): null ≈ 2 ms.
        let null = c.svc_base_put + c.lat_rpc;
        assert!((1900..2100).contains(&null), "null {null}");
        // insert ≈ 2× null.
        let insert = null + c.svc_index_put + c.lat_index_put_extra + c.lat_rpc;
        assert!(
            (insert as f64 / null as f64 - 2.0).abs() < 0.2,
            "insert/null = {}",
            insert as f64 / null as f64
        );
        // full ≈ 5× null.
        let full = insert
            + (c.svc_base_read + c.lat_base_read_extra + c.lat_rpc)
            + (c.svc_index_put + c.lat_rpc);
        assert!(
            (4.0..6.0).contains(&(full as f64 / null as f64)),
            "full/null = {}",
            full as f64 / null as f64
        );
    }

    #[test]
    fn saturation_ordering_null_async_insert_full() {
        let c = SimConfig::in_house();
        let d_null = c.svc_base_put as f64;
        let d_insert = d_null + c.svc_index_put as f64;
        let bg = (c.svc_base_read + c.svc_index_put * 2) as f64 * c.background_batch_factor;
        let d_async = d_null + bg;
        let d_full = d_null + (c.svc_index_put * 2 + c.svc_base_read) as f64;
        // Demand ordering determines saturation ordering (sat = capacity/D).
        assert!(d_null < d_async, "async does more total work than null");
        assert!(d_async < d_insert || (d_async - d_insert).abs() < 200.0);
        assert!(d_insert < d_full);
        // async saturates 20–40 % above sync-full (paper: ~30 %).
        let ratio = d_full / d_async;
        assert!((1.15..1.45).contains(&ratio), "async/full saturation ratio {ratio}");
    }

    #[test]
    fn rc2_is_bigger_but_weaker() {
        let c = SimConfig::rc2_cloud();
        let h = SimConfig::in_house();
        assert_eq!(c.servers, 40);
        assert!(c.svc_base_put > h.svc_base_put);
        assert!(c.lat_rpc > h.lat_rpc);
        // 5× servers at ~1.65× cost → < 4× aggregate throughput (paper).
        let speedup = (c.servers as f64 / h.servers as f64)
            * (h.svc_base_put as f64 / c.svc_base_put as f64);
        assert!(speedup < 4.0, "scale-out must be sub-linear: {speedup}");
        assert!(speedup > 2.0);
    }
}

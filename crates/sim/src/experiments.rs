//! High-level experiment sweeps, one per figure of the paper's §8.

use crate::config::SimConfig;
use crate::engine::{RunResult, Sim};
use crate::ops::{exact_read_op, range_read_op, update_op};
use diff_index_core::IndexScheme;

const SEC: u64 = 1_000_000;

/// Default simulated duration per data point.
pub const DEFAULT_DURATION_US: u64 = 20 * SEC;

/// One point on a latency-vs-throughput curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Client threads used for this point.
    pub clients: usize,
    /// Achieved throughput (TPS).
    pub tps: f64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
}

/// A full curve for one scheme.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Scheme label (`null` for no index).
    pub label: &'static str,
    /// Points in increasing client count.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// Highest achieved throughput (saturation estimate).
    pub fn saturation_tps(&self) -> f64 {
        self.points.iter().map(|p| p.tps).fold(0.0, f64::max)
    }

    /// Latency (ms) of the lowest-load point.
    pub fn low_load_latency_ms(&self) -> f64 {
        self.points.first().map(|p| p.mean_ms).unwrap_or(0.0)
    }
}

fn point(r: &RunResult, clients: usize) -> CurvePoint {
    CurvePoint {
        clients,
        tps: r.tps,
        mean_ms: r.latency.mean() / 1000.0,
        p95_ms: r.latency.percentile(95.0) as f64 / 1000.0,
    }
}

/// The paper's client sweep: "1 to 320 client threads" (§8.1).
pub fn client_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 128, 200, 320]
}

/// Figure 7 (and Figure 10 with `SimConfig::rc2_cloud()`): update latency
/// vs throughput for `null`, `insert`, `async`, `full`.
pub fn update_curves(cfg: &SimConfig, duration_us: u64) -> Vec<Curve> {
    let variants: [(&'static str, Option<IndexScheme>); 4] = [
        ("null", None),
        ("insert", Some(IndexScheme::SyncInsert)),
        ("async", Some(IndexScheme::AsyncSimple)),
        ("full", Some(IndexScheme::SyncFull)),
    ];
    variants
        .iter()
        .map(|(label, scheme)| Curve {
            label,
            points: client_sweep()
                .into_iter()
                .map(|clients| {
                    let r =
                        Sim::closed_loop(cfg.clone(), update_op(*scheme), clients, duration_us);
                    point(&r, clients)
                })
                .collect(),
        })
        .collect()
}

/// Figure 8: exact-match index-read latency vs throughput (warmed cache,
/// result of one row), for `full`, `insert`, `async`.
pub fn read_curves(cfg: &SimConfig, duration_us: u64) -> Vec<Curve> {
    let schemes: [(&'static str, IndexScheme); 3] = [
        ("full", IndexScheme::SyncFull),
        ("insert", IndexScheme::SyncInsert),
        ("async", IndexScheme::AsyncSimple),
    ];
    schemes
        .iter()
        .map(|(label, scheme)| Curve {
            label,
            points: client_sweep()
                .into_iter()
                .map(|clients| {
                    let r = Sim::closed_loop(
                        cfg.clone(),
                        exact_read_op(*scheme, 1),
                        clients,
                        duration_us,
                    );
                    point(&r, clients)
                })
                .collect(),
        })
        .collect()
}

/// One row of Figure 9: range-query latency at a given selectivity.
#[derive(Debug, Clone)]
pub struct RangePoint {
    /// Query selectivity (fraction of the 40 M-row table returned).
    pub selectivity: f64,
    /// Rows in the result.
    pub rows: u64,
    /// Mean latency (ms) per scheme, in the order full / insert / async.
    pub mean_ms: [f64; 3],
}

/// Figure 9: range query latency with 10 concurrent clients, selectivity
/// from 0.0001 % (40 rows) to 0.1 % (40 k rows) of a 40 M-row table.
///
/// Ten client threads are far below saturation, so these points are the
/// queue-free composition of the calibrated per-step costs (event-level
/// simulation of a 40 k-row double-check loop adds nothing but runtime).
pub fn range_query_sweep(cfg: &SimConfig) -> Vec<RangePoint> {
    let table_rows: f64 = 40_000_000.0;
    [0.000_001f64, 0.000_01, 0.000_1, 0.001]
        .iter()
        .map(|&sel| {
            let rows = (table_rows * sel).round() as u64;
            let mean_of = |scheme| {
                range_read_op(scheme, rows).analytic_latency_us(cfg) as f64 / 1000.0
            };
            RangePoint {
                selectivity: sel,
                rows,
                mean_ms: [
                    mean_of(IndexScheme::SyncFull),
                    mean_of(IndexScheme::SyncInsert),
                    mean_of(IndexScheme::AsyncSimple),
                ],
            }
        })
        .collect()
}

/// One row of Figure 11: staleness distribution at a fixed transaction rate.
#[derive(Debug)]
pub struct StalenessPoint {
    /// Offered transaction rate (TPS).
    pub tps: f64,
    /// Staleness percentiles in ms: p50, p95, p99, max.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Max observed, ms.
    pub max_ms: f64,
    /// Fraction of index updates applied within 100 ms (the paper's
    /// "most index entries are updated within 100 ms" observation).
    pub within_100ms: f64,
    /// Background tasks still pending at the end of the run.
    pub backlog: u64,
}

/// Figure 11: index-after-data time lag of `async-simple` under fixed
/// transaction rates 600..4000 TPS (§8.2 "Index consistency in
/// async-simple").
pub fn staleness_sweep(cfg: &SimConfig, rates: &[f64], duration_us: u64) -> Vec<StalenessPoint> {
    rates
        .iter()
        .map(|&tps| {
            let r = Sim::open_loop(
                cfg.clone(),
                update_op(Some(IndexScheme::AsyncSimple)),
                tps,
                duration_us,
            );
            StalenessPoint {
                tps,
                p50_ms: r.staleness.percentile(50.0) as f64 / 1000.0,
                p95_ms: r.staleness.percentile(95.0) as f64 / 1000.0,
                p99_ms: r.staleness.percentile(99.0) as f64 / 1000.0,
                max_ms: r.staleness.max() as f64 / 1000.0,
                within_100ms: r.staleness.cdf_at(100_000),
                backlog: r.backlog,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short() -> u64 {
        6 * SEC
    }

    #[test]
    fn figure7_shape_low_load_ratios_and_saturation_order() {
        let cfg = SimConfig::in_house();
        let curves = update_curves(&cfg, short());
        let by_label = |l: &str| curves.iter().find(|c| c.label == l).unwrap();
        let (null, insert, asy, full) =
            (by_label("null"), by_label("insert"), by_label("async"), by_label("full"));

        // Low-load latencies: insert ≈ 2× base put; full ≈ 5×; async ≈ null.
        let n0 = null.low_load_latency_ms();
        assert!((1.7..2.4).contains(&(insert.low_load_latency_ms() / n0)));
        assert!((4.0..6.0).contains(&(full.low_load_latency_ms() / n0)));
        assert!((asy.low_load_latency_ms() / n0) < 1.15);

        // Saturation: null > async > insert ≈/> full, async ≈ 30% over full.
        assert!(null.saturation_tps() > asy.saturation_tps());
        assert!(asy.saturation_tps() > full.saturation_tps());
        let ratio = asy.saturation_tps() / full.saturation_tps();
        assert!((1.1..1.7).contains(&ratio), "async/full saturation {ratio}");

        // §8.2 headline: sync-insert and async reduce 60–80 % of the index
        // update latency (the part on top of a base put) vs sync-full.
        let added_full = full.low_load_latency_ms() - n0;
        let added_insert = insert.low_load_latency_ms() - n0;
        let reduction = 1.0 - added_insert / added_full;
        assert!((0.6..0.95).contains(&reduction), "insert reduction {reduction}");
    }

    #[test]
    fn figure8_shape_insert_reads_much_slower() {
        let cfg = SimConfig::in_house();
        let curves = read_curves(&cfg, short());
        let by_label = |l: &str| curves.iter().find(|c| c.label == l).unwrap();
        let full = by_label("full").low_load_latency_ms();
        let insert = by_label("insert").low_load_latency_ms();
        let asy = by_label("async").low_load_latency_ms();
        assert!(insert > full * 3.0, "insert read {insert} vs full {full}");
        assert!((asy / full) < 1.2, "async read ≈ full read");
    }

    #[test]
    fn figure9_shape_insert_explodes_with_lower_selectivity() {
        let cfg = SimConfig::in_house();
        let pts = range_query_sweep(&cfg);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].rows, 40);
        assert_eq!(pts[3].rows, 40_000);
        for p in &pts {
            let [full, insert, asy] = p.mean_ms;
            assert!(insert > full, "insert always pays the double-check");
            assert!((asy - full).abs() < 0.01, "async range read == full range read");
        }
        // sync-insert latency grows ~linearly with the result size (1000×
        // more rows → ~1000× the double-check cost)...
        let growth = pts[3].mean_ms[1] / pts[0].mean_ms[1];
        assert!((300.0..1500.0).contains(&growth), "insert growth {growth}");
        // ...while the gap to sync-full widens with lower selectivity
        // (paper: "sync-insert has a much larger latency as selectivity
        // grows lower"; "acceptable when query selectivity is high").
        let gap_small = pts[0].mean_ms[1] / pts[0].mean_ms[0];
        let gap_large = pts[3].mean_ms[1] / pts[3].mean_ms[0];
        assert!(gap_large > gap_small, "{gap_small} -> {gap_large}");
        assert!(gap_large > 10.0, "at 0.1% the double-check dominates: {gap_large}");
    }

    #[test]
    fn figure11_shape_staleness_grows_with_rate() {
        let cfg = SimConfig::in_house();
        let pts = staleness_sweep(&cfg, &[600.0, 2700.0, 4000.0], 15 * SEC);
        // Modest load: most index entries updated within 100 ms (§8.2).
        assert!(pts[0].within_100ms > 0.9, "600 TPS: {}", pts[0].within_100ms);
        assert!(pts[1].within_100ms > 0.8, "2700 TPS: {}", pts[1].within_100ms);
        // 4000 TPS: close to saturation; lag can reach seconds-to-hundreds
        // of seconds (here bounded by the simulated duration) or an
        // unbounded backlog.
        let p = &pts[2];
        assert!(
            p.max_ms > 1000.0 || p.backlog > 100,
            "near saturation: max {} ms backlog {}",
            p.max_ms,
            p.backlog
        );
    }

    #[test]
    fn figure10_shape_sublinear_scale_out_same_ordering() {
        let small = SimConfig::in_house();
        let big = SimConfig::rc2_cloud();
        let small_curves = update_curves(&small, short());
        let big_curves = update_curves(&big, short());
        let sat = |cs: &[Curve], l: &str| {
            cs.iter().find(|c| c.label == l).unwrap().saturation_tps()
        };
        // 5× servers yields < 4× throughput (the paper's observation)...
        for l in ["null", "insert", "async", "full"] {
            let speedup = sat(&big_curves, l) / sat(&small_curves, l);
            assert!(speedup < 4.0, "{l} speedup {speedup} should be sub-linear");
            assert!(speedup > 1.5, "{l} speedup {speedup} should still be substantial");
        }
        // ...and the relative ordering of schemes is preserved (paper: "the
        // relative performance of all Diff-Index schemes remain in RC2").
        assert!(sat(&big_curves, "null") > sat(&big_curves, "async"));
        assert!(sat(&big_curves, "async") > sat(&big_curves, "full"));
    }
}

//! Expansion of client operations into per-server work steps, per scheme.
//!
//! This is Table 2 of the paper in executable form: each scheme turns an
//! update or read into a sequence of (service, extra-latency) steps. The
//! synchronous steps are on the client's critical path; the background
//! steps (async schemes) run on the APS.

use crate::config::SimConfig;
use diff_index_core::IndexScheme;

/// What a step does — determines its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// `PB`: base-table put (WAL + memtable).
    BasePut,
    /// `PI` / `DI`: index-table put or delete (same cost in LSM, §6.1).
    IndexPut,
    /// `RB`: base-table read (disk-bounded in the update path).
    BaseRead,
    /// `RI`: exact-match index read (warmed cache).
    IndexRead,
    /// Index range scan returning `rows` entries.
    IndexScan {
        /// Rows returned by the scan.
        rows: u64,
    },
    /// Per-row base-table double check in sync-insert's read path
    /// (Algorithm 2's SR2).
    BaseCheck,
    /// A batch of `rows` base-table double checks issued by a range query.
    /// Modeled as one aggregate step (mostly cache-friendly, see
    /// [`crate::config::SimConfig::range_check_miss_rate`]).
    BaseCheckBatch {
        /// Number of rows double-checked.
        rows: u64,
    },
}

/// One unit of work: visits one (random) server.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// What the step does.
    pub kind: StepKind,
    /// True if executed by the APS (batched service cost).
    pub background: bool,
}

impl Step {
    fn sync(kind: StepKind) -> Self {
        Step { kind, background: false }
    }

    fn bg(kind: StepKind) -> Self {
        Step { kind, background: true }
    }

    /// Server-occupancy time of this step.
    pub fn service(&self, cfg: &SimConfig) -> u64 {
        let base = match self.kind {
            StepKind::BasePut => cfg.svc_base_put,
            StepKind::IndexPut => cfg.svc_index_put,
            StepKind::BaseRead | StepKind::BaseCheck => cfg.svc_base_read,
            StepKind::IndexRead => cfg.svc_index_read,
            StepKind::IndexScan { rows } => cfg.svc_index_read + cfg.svc_scan_per_row * rows,
            StepKind::BaseCheckBatch { rows } => cfg.svc_base_read * rows,
        };
        if self.background {
            ((base as f64) * cfg.background_batch_factor).max(1.0) as u64
        } else {
            base
        }
    }

    /// Latency added beyond service + queueing (disk waits, RPC).
    pub fn extra_latency(&self, cfg: &SimConfig) -> u64 {
        let wait = match self.kind {
            StepKind::BasePut => 0,
            StepKind::IndexPut => cfg.lat_index_put_extra,
            StepKind::BaseRead | StepKind::BaseCheck => cfg.lat_base_read_extra,
            StepKind::IndexRead => cfg.lat_index_read_extra,
            StepKind::IndexScan { rows } => {
                cfg.lat_index_read_extra + cfg.lat_scan_per_row * rows
            }
            StepKind::BaseCheckBatch { rows } => {
                ((rows as f64) * cfg.range_check_miss_rate * cfg.lat_base_read_extra as f64)
                    as u64
            }
        };
        wait + cfg.lat_rpc
    }
}

/// An operation: its synchronous critical path plus optional deferred work.
#[derive(Debug, Clone)]
pub struct OpTemplate {
    /// Steps on the client's critical path, in order.
    pub sync_steps: Vec<Step>,
    /// Steps handed to the APS after the op acks (async schemes).
    pub background_steps: Vec<Step>,
}

impl OpTemplate {
    /// Queue-free latency of the synchronous path: the sum of every step's
    /// service and extra latency. This is the expected client latency at
    /// light load (no contention) — used for the Figure 9 points, whose 10
    /// client threads are far below saturation.
    pub fn analytic_latency_us(&self, cfg: &SimConfig) -> u64 {
        self.sync_steps.iter().map(|s| s.service(cfg) + s.extra_latency(cfg)).sum()
    }
}

/// One index update accompanying a base put (Figure 7 / Figure 10 workload).
pub fn update_op(scheme: Option<IndexScheme>) -> OpTemplate {
    use StepKind::*;
    match scheme {
        None => OpTemplate {
            sync_steps: vec![Step::sync(BasePut)],
            background_steps: vec![],
        },
        // Algorithm 1: SU1 PB, SU2 PI, SU3 RB, SU4 DI — all synchronous.
        Some(IndexScheme::SyncFull) => OpTemplate {
            sync_steps: vec![
                Step::sync(BasePut),
                Step::sync(IndexPut),
                Step::sync(BaseRead),
                Step::sync(IndexPut), // DI: same cost as PI in LSM (§6.1)
            ],
            background_steps: vec![],
        },
        // SU1 + SU2 only.
        Some(IndexScheme::SyncInsert) => OpTemplate {
            sync_steps: vec![Step::sync(BasePut), Step::sync(IndexPut)],
            background_steps: vec![],
        },
        // Algorithm 3/4: ack after PB; BA2 RB, BA3 DI, BA4 PI deferred.
        Some(IndexScheme::AsyncSimple) | Some(IndexScheme::AsyncSession) => OpTemplate {
            sync_steps: vec![Step::sync(BasePut)],
            background_steps: vec![
                Step::bg(BaseRead),
                Step::bg(IndexPut),
                Step::bg(IndexPut),
            ],
        },
    }
}

/// One exact-match index read returning `k` rows (Figure 8 workload).
pub fn exact_read_op(scheme: IndexScheme, k: u64) -> OpTemplate {
    use StepKind::*;
    let mut sync_steps = vec![Step::sync(IndexRead)];
    if scheme == IndexScheme::SyncInsert {
        // Algorithm 2: double-check each of the K hits against the base.
        for _ in 0..k {
            sync_steps.push(Step::sync(BaseCheck));
        }
    }
    OpTemplate { sync_steps, background_steps: vec![] }
}

/// One range query returning `rows` entries (Figure 9 workload).
pub fn range_read_op(scheme: IndexScheme, rows: u64) -> OpTemplate {
    use StepKind::*;
    let mut sync_steps = vec![Step::sync(IndexScan { rows })];
    if scheme == IndexScheme::SyncInsert && rows > 0 {
        sync_steps.push(Step::sync(BaseCheckBatch { rows }));
    }
    OpTemplate { sync_steps, background_steps: vec![] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_step_counts_match_table2() {
        assert_eq!(update_op(None).sync_steps.len(), 1);
        let full = update_op(Some(IndexScheme::SyncFull));
        assert_eq!(full.sync_steps.len(), 4); // PB, PI, RB, DI
        assert!(full.background_steps.is_empty());
        let insert = update_op(Some(IndexScheme::SyncInsert));
        assert_eq!(insert.sync_steps.len(), 2);
        let asy = update_op(Some(IndexScheme::AsyncSimple));
        assert_eq!(asy.sync_steps.len(), 1, "client path = base put only");
        assert_eq!(asy.background_steps.len(), 3); // RB, DI, PI
        assert!(asy.background_steps.iter().all(|s| s.background));
    }

    #[test]
    fn read_step_counts_match_table2() {
        let full = exact_read_op(IndexScheme::SyncFull, 5);
        assert_eq!(full.sync_steps.len(), 1);
        let insert = exact_read_op(IndexScheme::SyncInsert, 5);
        assert_eq!(insert.sync_steps.len(), 6, "1 index read + K base checks");
        let asy = exact_read_op(IndexScheme::AsyncSimple, 5);
        assert_eq!(asy.sync_steps.len(), 1);
    }

    #[test]
    fn background_service_is_batched() {
        let cfg = SimConfig::in_house();
        let s = Step::sync(StepKind::BaseRead);
        let b = Step::bg(StepKind::BaseRead);
        assert!(b.service(&cfg) < s.service(&cfg));
        assert_eq!(
            b.service(&cfg),
            ((s.service(&cfg) as f64) * cfg.background_batch_factor) as u64
        );
    }

    #[test]
    fn scan_cost_grows_with_rows() {
        let cfg = SimConfig::in_house();
        let small = Step::sync(StepKind::IndexScan { rows: 40 });
        let big = Step::sync(StepKind::IndexScan { rows: 40_000 });
        assert!(big.service(&cfg) > small.service(&cfg) * 100);
        assert!(big.extra_latency(&cfg) > small.extra_latency(&cfg));
    }

    #[test]
    fn full_update_latency_is_about_5x_null() {
        let cfg = SimConfig::in_house();
        let lat = |t: &OpTemplate| -> u64 {
            t.sync_steps.iter().map(|s| s.service(&cfg) + s.extra_latency(&cfg)).sum()
        };
        let null = lat(&update_op(None)) as f64;
        let full = lat(&update_op(Some(IndexScheme::SyncFull))) as f64;
        let insert = lat(&update_op(Some(IndexScheme::SyncInsert))) as f64;
        let asy = lat(&update_op(Some(IndexScheme::AsyncSimple))) as f64;
        assert!((1.8..2.3).contains(&(insert / null)), "insert/null {}", insert / null);
        assert!((4.0..6.0).contains(&(full / null)), "full/null {}", full / null);
        assert!((asy / null) < 1.1, "async ≈ null at low load");
    }
}

//! The discrete-event simulator: region servers as FIFO resources,
//! closed-loop or open-loop clients, and a per-server APS draining deferred
//! index work. Deterministic for a given seed.

use crate::config::SimConfig;
use crate::ops::{OpTemplate, Step};
use diff_index_ycsb::Histogram;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Outcome of one simulation run.
#[derive(Debug)]
pub struct RunResult {
    /// Client-observed operation latency (µs), measurement window only.
    pub latency: Histogram,
    /// Index-after-data time lag (µs) of completed background tasks
    /// (Figure 11's staleness metric: `T2 − T1`).
    pub staleness: Histogram,
    /// Operations completed inside the measurement window.
    pub completed: u64,
    /// Achieved throughput, operations/second.
    pub tps: f64,
    /// Background tasks still queued or running when the run ended (an
    /// indicator that the APS could not keep up).
    pub backlog: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// An op instance is ready to issue its next step.
    Op(u32),
    /// Background task `id` is ready to issue its next step.
    Bg(u32),
    /// The APS on `server` may admit more tasks from its queue.
    Aps(u32),
    /// Open-loop arrival of a fresh operation.
    Arrival,
}

struct OpInstance {
    steps: VecDeque<Step>,
    started: u64,
    /// Set for closed-loop clients (they immediately start the next op).
    closed_loop: bool,
    live: bool,
}

struct BgTask {
    steps: VecDeque<Step>,
    t1: u64,
    home: u32,
}

struct Aps {
    queue: VecDeque<BgTask>,
    /// Tasks currently admitted (≤ `cfg.aps_workers`).
    active: usize,
}

/// The simulation world.
pub struct Sim {
    cfg: SimConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, EvKey)>>,
    server_free: Vec<u64>,
    ops: Vec<OpInstance>,
    free_ops: Vec<u32>,
    bg: Vec<BgTask>,
    free_bg: Vec<u32>,
    aps: Vec<Aps>,
    template: OpTemplate,
    // open loop
    arrival_gap_us: Option<f64>,
    // measurement
    warmup_us: u64,
    duration_us: u64,
    latency: Histogram,
    staleness: Histogram,
    completed: u64,
}

// BinaryHeap needs Ord; wrap Ev into an order-stable key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKey {
    Op(u32),
    Bg(u32),
    Aps(u32),
    Arrival,
}

fn to_key(e: Ev) -> EvKey {
    match e {
        Ev::Op(i) => EvKey::Op(i),
        Ev::Bg(i) => EvKey::Bg(i),
        Ev::Aps(s) => EvKey::Aps(s),
        Ev::Arrival => EvKey::Arrival,
    }
}

impl Sim {
    /// Closed-loop simulation: `clients` concurrent clients each repeatedly
    /// issue `template` ops for `duration_us` simulated microseconds (the
    /// first 25 % is warm-up and not measured).
    pub fn closed_loop(cfg: SimConfig, template: OpTemplate, clients: usize, duration_us: u64) -> RunResult {
        let mut sim = Sim::new(cfg, template, duration_us, None);
        for _ in 0..clients {
            let id = sim.alloc_op(0, true);
            sim.schedule(0, Ev::Op(id));
        }
        sim.run()
    }

    /// Open-loop simulation: operations arrive as a Poisson process at
    /// `rate_tps`, regardless of completion (Figure 11's fixed transaction
    /// rates).
    pub fn open_loop(cfg: SimConfig, template: OpTemplate, rate_tps: f64, duration_us: u64) -> RunResult {
        assert!(rate_tps > 0.0);
        let gap = 1e6 / rate_tps;
        let mut sim = Sim::new(cfg, template, duration_us, Some(gap));
        sim.schedule(0, Ev::Arrival);
        sim.run()
    }

    fn new(cfg: SimConfig, template: OpTemplate, duration_us: u64, arrival_gap_us: Option<f64>) -> Self {
        let servers = cfg.servers;
        let seed = cfg.seed;
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            server_free: vec![0; servers],
            ops: Vec::new(),
            free_ops: Vec::new(),
            bg: Vec::new(),
            free_bg: Vec::new(),
            aps: (0..servers)
                .map(|_| Aps { queue: VecDeque::new(), active: 0 })
                .collect(),
            template,
            arrival_gap_us,
            warmup_us: duration_us / 4,
            duration_us,
            latency: Histogram::new(),
            staleness: Histogram::new(),
            completed: 0,
        }
    }

    fn schedule(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, to_key(ev))));
    }

    fn alloc_op(&mut self, now: u64, closed_loop: bool) -> u32 {
        let inst = OpInstance {
            steps: self.template.sync_steps.iter().copied().collect(),
            started: now,
            closed_loop,
            live: true,
        };
        if let Some(id) = self.free_ops.pop() {
            self.ops[id as usize] = inst;
            id
        } else {
            self.ops.push(inst);
            (self.ops.len() - 1) as u32
        }
    }

    fn pick_server(&mut self) -> usize {
        self.rng.random_range(0..self.cfg.servers)
    }

    /// Reserve FIFO service on a server starting no earlier than `now`;
    /// returns the completion time visible to the requester.
    fn visit_server(&mut self, service: u64, extra: u64) -> u64 {
        let s = self.pick_server();
        let start = self.now.max(self.server_free[s]);
        self.server_free[s] = start + service;
        start + service + extra
    }

    fn in_window(&self) -> bool {
        self.now >= self.warmup_us && self.now < self.duration_us
    }

    fn run(mut self) -> RunResult {
        while let Some(Reverse((t, _, key))) = self.heap.pop() {
            if t >= self.duration_us {
                break;
            }
            self.now = t;
            match key {
                EvKey::Arrival => {
                    let id = self.alloc_op(self.now, false);
                    self.schedule(self.now, Ev::Op(id));
                    let gap = self.arrival_gap_us.expect("arrival without open loop");
                    // Exponential inter-arrival (Poisson process).
                    let u: f64 = self.rng.random::<f64>().max(1e-12);
                    let next = self.now + (-u.ln() * gap).max(1.0) as u64;
                    self.schedule(next, Ev::Arrival);
                }
                EvKey::Op(id) => self.op_event(id),
                EvKey::Bg(id) => self.bg_event(id),
                EvKey::Aps(s) => self.aps_event(s as usize),
            }
        }
        let window_us = self.duration_us - self.warmup_us;
        let backlog: u64 = self
            .aps
            .iter()
            .map(|a| a.queue.len() as u64 + a.active as u64)
            .sum();
        RunResult {
            tps: self.completed as f64 / (window_us as f64 / 1e6),
            latency: self.latency,
            staleness: self.staleness,
            completed: self.completed,
            backlog,
        }
    }

    fn op_event(&mut self, id: u32) {
        let Some(step) = self.ops[id as usize].steps.pop_front() else {
            // Op finished its critical path.
            self.finish_op(id);
            return;
        };
        let service = step.service(&self.cfg);
        let extra = step.extra_latency(&self.cfg);
        let done = self.visit_server(service, extra);
        self.schedule(done, Ev::Op(id));
    }

    fn finish_op(&mut self, id: u32) {
        let started = self.ops[id as usize].started;
        let closed_loop = self.ops[id as usize].closed_loop;
        if !self.ops[id as usize].live {
            return;
        }
        if self.in_window() && started >= self.warmup_us {
            self.latency.record(self.now - started);
            self.completed += 1;
        }
        // Hand deferred work to the APS of a random server (the paper's AUQ
        // lives on the region server that took the base put).
        if !self.template.background_steps.is_empty() {
            let s = self.pick_server();
            let task = BgTask {
                steps: self.template.background_steps.iter().copied().collect(),
                t1: self.now,
                home: s as u32,
            };
            self.aps[s].queue.push_back(task);
            self.schedule(self.now, Ev::Aps(s as u32));
        }
        if closed_loop {
            // Immediately start the next op (closed loop, zero think time).
            self.ops[id as usize].steps = self.template.sync_steps.iter().copied().collect();
            self.ops[id as usize].started = self.now;
            self.schedule(self.now, Ev::Op(id));
        } else {
            self.ops[id as usize].live = false;
            self.free_ops.push(id);
        }
    }

    /// Admit queued tasks up to the per-server worker limit.
    fn aps_event(&mut self, s: usize) {
        while self.aps[s].active < self.cfg.aps_workers {
            let Some(task) = self.aps[s].queue.pop_front() else { return };
            self.aps[s].active += 1;
            let id = if let Some(id) = self.free_bg.pop() {
                self.bg[id as usize] = task;
                id
            } else {
                self.bg.push(task);
                (self.bg.len() - 1) as u32
            };
            self.schedule(self.now, Ev::Bg(id));
        }
    }

    /// Advance one background task by one step.
    fn bg_event(&mut self, id: u32) {
        match self.bg[id as usize].steps.pop_front() {
            Some(step) => {
                let service = step.service(&self.cfg);
                let extra = step.extra_latency(&self.cfg);
                let done = self.visit_server(service, extra);
                self.schedule(done, Ev::Bg(id));
            }
            None => {
                // Task complete: record staleness, free a worker slot.
                let t1 = self.bg[id as usize].t1;
                let home = self.bg[id as usize].home as usize;
                if self.in_window() {
                    self.staleness.record(self.now - t1);
                }
                self.aps[home].active -= 1;
                self.free_bg.push(id);
                if !self.aps[home].queue.is_empty() {
                    self.schedule(self.now, Ev::Aps(home as u32));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::update_op;
    use diff_index_core::IndexScheme;

    const SEC: u64 = 1_000_000;

    #[test]
    fn single_client_latency_matches_analytic_sum() {
        let cfg = SimConfig::in_house();
        let template = update_op(Some(IndexScheme::SyncFull));
        let analytic: u64 = template
            .sync_steps
            .iter()
            .map(|s| s.service(&cfg) + s.extra_latency(&cfg))
            .sum();
        let r = Sim::closed_loop(cfg, template, 1, 20 * SEC);
        // One client never queues: mean latency == analytic sum (bucket error).
        let mean = r.latency.mean();
        assert!(
            (mean - analytic as f64).abs() / (analytic as f64) < 0.02,
            "mean {mean} vs analytic {analytic}"
        );
        assert!(r.completed > 0);
    }

    #[test]
    fn throughput_saturates_near_capacity() {
        let cfg = SimConfig::in_house();
        let d_null = cfg.svc_base_put as f64 / 1e6; // demand per op, seconds
        let cap_tps = cfg.capacity() / d_null;
        let r = Sim::closed_loop(cfg, update_op(None), 320, 20 * SEC);
        assert!(r.tps < cap_tps * 1.05, "tps {} must not exceed capacity {cap_tps}", r.tps);
        assert!(r.tps > cap_tps * 0.80, "tps {} should approach capacity {cap_tps}", r.tps);
    }

    #[test]
    fn latency_rises_with_load() {
        let cfg = SimConfig::in_house();
        let lo = Sim::closed_loop(cfg.clone(), update_op(Some(IndexScheme::SyncFull)), 1, 20 * SEC);
        let hi = Sim::closed_loop(cfg, update_op(Some(IndexScheme::SyncFull)), 320, 20 * SEC);
        assert!(
            hi.latency.mean() > lo.latency.mean() * 2.0,
            "queueing must inflate latency: lo={} hi={}",
            lo.latency.mean(),
            hi.latency.mean()
        );
    }

    #[test]
    fn async_staleness_small_at_low_load_large_near_saturation() {
        let cfg = SimConfig::in_house();
        let low = Sim::open_loop(cfg.clone(), update_op(Some(IndexScheme::AsyncSimple)), 600.0, 30 * SEC);
        assert!(low.staleness.count() > 0);
        let low_p50 = low.staleness.percentile(50.0);
        assert!(low_p50 < 100_000, "at 600 TPS most lags are < 100 ms: {low_p50}µs");

        let high = Sim::open_loop(cfg, update_op(Some(IndexScheme::AsyncSimple)), 4000.0, 30 * SEC);
        let high_mean = high.staleness.mean().max(high.backlog as f64);
        assert!(
            high.staleness.mean() > low.staleness.mean() * 10.0 || high.backlog > 1000,
            "near saturation staleness must explode: low={} high={} backlog={}",
            low.staleness.mean(),
            high_mean,
            high.backlog
        );
    }

    #[test]
    fn open_loop_tracks_offered_rate_below_saturation() {
        let cfg = SimConfig::in_house();
        let r = Sim::open_loop(cfg, update_op(None), 1000.0, 30 * SEC);
        assert!(
            (r.tps - 1000.0).abs() / 1000.0 < 0.10,
            "below saturation achieved ≈ offered: {}",
            r.tps
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig::in_house();
        let a = Sim::closed_loop(cfg.clone(), update_op(Some(IndexScheme::AsyncSimple)), 8, 5 * SEC);
        let b = Sim::closed_loop(cfg, update_op(Some(IndexScheme::AsyncSimple)), 8, 5 * SEC);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency.percentile(50.0), b.latency.percentile(50.0));
    }
}

//! Log-bucketed latency histogram (HdrHistogram-style), used by the
//! workload driver and the cluster simulator to report the latency
//! percentiles behind the paper's figures.

/// Histogram over `u64` values (microseconds by convention) with bounded
/// relative error: each power of two is split into 16 linear sub-buckets
/// (≈ 6% worst-case error), which is plenty for latency curves.
const SUB_BUCKETS: usize = 16;
const BUCKETS: usize = 64 * SUB_BUCKETS;

/// A recording histogram.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p99", &self.percentile(99.0))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    // Position within the power-of-two range, quantized to SUB_BUCKETS.
    let shift = msb - 4; // log2(SUB_BUCKETS) = 4
    let sub = ((v >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    let idx = (msb - 3) * SUB_BUCKETS + sub;
    idx.min(BUCKETS - 1)
}

fn bucket_value(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let msb = idx / SUB_BUCKETS + 3;
    let sub = (idx % SUB_BUCKETS) as u64;
    let shift = msb - 4;
    (1u64 << msb) + (sub << shift)
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], count: 0, sum: 0, max: 0, min: u64::MAX }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at percentile `p` (0–100), approximated to bucket resolution.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Fraction of recorded values `<= v` (empirical CDF), used for the
    /// paper's Figure 11 staleness distributions.
    pub fn cdf_at(&self, v: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let cut = bucket_of(v);
        let below: u64 = self.counts[..=cut].iter().sum();
        below as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(100.0), 15);
    }

    #[test]
    fn percentiles_are_close() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        assert!((p50 as f64 - 5000.0).abs() / 5000.0 < 0.10, "p50={p50}");
        let p99 = h.percentile(99.0);
        assert!((p99 as f64 - 9900.0).abs() / 9900.0 < 0.10, "p99={p99}");
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [1u64, 100, 1000, 12345, 999_999, 123_456_789] {
            let b = bucket_value(bucket_of(v));
            let err = (v as f64 - b as f64).abs() / v as f64;
            assert!(err < 0.07, "v={v} b={b} err={err}");
            assert!(b <= v, "bucket value must round down");
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100 {
            a.record(v);
        }
        for v in 100..200 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.max(), 199);
        assert_eq!(a.min(), 0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1000, 10000] {
            h.record(v);
        }
        assert!(h.cdf_at(5) <= h.cdf_at(50));
        assert!(h.cdf_at(50) <= h.cdf_at(50_000));
        assert_eq!(h.cdf_at(1_000_000), 1.0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) > 0);
    }
}

//! Closed-loop workload driver (YCSB's client model, §8.1 of the paper):
//! each of N client threads continuously submits a request and issues the
//! next one as soon as the previous completes.
//!
//! The driver runs against the *real* cluster + Diff-Index stack and
//! measures wall-clock latency. (The paper's latency-vs-throughput figures
//! are regenerated on the simulator, where hardware scale is configurable;
//! the driver exists to validate relative scheme cost on real I/O and to
//! drive the Criterion micro-benchmarks.)

use crate::generator::{KeyChooser, ScrambledZipfian, Uniform};
use crate::histogram::Histogram;
use crate::workload::{ItemWorkload, OpMix};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Concurrent client threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Update / read mix.
    pub mix: OpMix,
    /// Key space (item ids `0..key_space`).
    pub key_space: u64,
    /// Use a zipfian (true) or uniform (false) key distribution.
    pub zipfian: bool,
    /// RNG seed.
    pub seed: u64,
    /// Updates per client-side batch. `1` (the YCSB default) issues every
    /// update individually; larger values buffer consecutive updates and
    /// flush them through [`Target::update_batch`], amortizing WAL fsyncs
    /// and round-trips. Reads are never batched.
    pub batch_size: usize,
}

/// Aggregated driver results.
#[derive(Debug)]
pub struct DriverReport {
    /// Latency of update operations, µs.
    pub update_hist: Histogram,
    /// Latency of index-read operations, µs.
    pub read_hist: Histogram,
    /// Wall-clock duration of the run, µs.
    pub elapsed_us: u64,
    /// Completed operations.
    pub ops: u64,
}

impl DriverReport {
    /// Overall throughput in operations per second.
    pub fn tps(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed_us as f64 / 1e6)
    }
}

/// The operations a driver knows how to issue; implemented for the real
/// Diff-Index stack (and mockable in tests).
pub trait Target: Send + Sync {
    /// Apply an update to item `row` with the given columns.
    fn update(&self, row: &Bytes, columns: &[(Bytes, Bytes)]);
    /// Apply several row updates as one client batch. The default forwards
    /// to [`Target::update`] one row at a time; targets with a native
    /// multi-row write API override this.
    fn update_batch(&self, rows: &[(Bytes, Vec<(Bytes, Bytes)>)]) {
        for (row, columns) in rows {
            self.update(row, columns);
        }
    }
    /// Exact-match index read; returns the hit count.
    fn read_index(&self, title: &Bytes) -> usize;
}

/// Flush buffered updates through [`Target::update_batch`], attributing an
/// equal share of the batch latency to every row so histogram counts keep
/// matching operation counts.
fn flush_updates<T: Target>(
    target: &T,
    pending: &mut Vec<(Bytes, Vec<(Bytes, Bytes)>)>,
    hist: &mut Histogram,
) {
    if pending.is_empty() {
        return;
    }
    let t0 = Instant::now();
    target.update_batch(pending);
    let per_row = t0.elapsed().as_micros() as u64 / pending.len() as u64;
    for _ in 0..pending.len() {
        hist.record(per_row);
    }
    pending.clear();
}

/// Run the closed loop and collect latency histograms.
pub fn run<T: Target>(target: &T, wl: &ItemWorkload, cfg: &DriverConfig) -> DriverReport {
    let version = Arc::new(AtomicU64::new(1));
    let start = Instant::now();
    let results: Vec<(Histogram, Histogram, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads {
            let version = Arc::clone(&version);
            handles.push(scope.spawn(move || {
                let mut update_hist = Histogram::new();
                let mut read_hist = Histogram::new();
                let mut keys: Box<dyn KeyChooser> = if cfg.zipfian {
                    Box::new(ScrambledZipfian::new(cfg.key_space, cfg.seed ^ t as u64))
                } else {
                    Box::new(Uniform::new(cfg.key_space, cfg.seed ^ t as u64))
                };
                let mut ops = 0u64;
                let mut op_rng = cfg.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ (t as u64) << 32;
                let batch = cfg.batch_size.max(1);
                let mut pending: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = Vec::with_capacity(batch);
                for _ in 0..cfg.ops_per_thread {
                    let id = keys.next_key();
                    // Cheap xorshift for the op-type coin.
                    op_rng ^= op_rng << 13;
                    op_rng ^= op_rng >> 7;
                    op_rng ^= op_rng << 17;
                    let is_update =
                        (op_rng as f64 / u64::MAX as f64) < cfg.mix.update_fraction;
                    if is_update {
                        let ver = version.fetch_add(1, Ordering::Relaxed);
                        let row = wl.row_key(id);
                        let cols = wl.updated_row(id, ver);
                        if batch == 1 {
                            let t0 = Instant::now();
                            target.update(&row, &cols);
                            update_hist.record(t0.elapsed().as_micros() as u64);
                        } else {
                            pending.push((row, cols));
                            if pending.len() >= batch {
                                flush_updates(target, &mut pending, &mut update_hist);
                            }
                        }
                    } else {
                        let t0 = Instant::now();
                        let title = wl.title_of(id);
                        target.read_index(&title);
                        read_hist.record(t0.elapsed().as_micros() as u64);
                    }
                    ops += 1;
                }
                flush_updates(target, &mut pending, &mut update_hist);
                (update_hist, read_hist, ops)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("driver thread")).collect()
    });
    let elapsed_us = start.elapsed().as_micros() as u64;
    let mut update_hist = Histogram::new();
    let mut read_hist = Histogram::new();
    let mut ops = 0;
    for (u, r, n) in results {
        update_hist.merge(&u);
        read_hist.merge(&r);
        ops += n;
    }
    DriverReport { update_hist, read_hist, elapsed_us, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct CountingTarget {
        updates: AtomicU64,
        reads: AtomicU64,
        rows_seen: Mutex<std::collections::HashSet<Bytes>>,
    }

    impl Target for CountingTarget {
        fn update(&self, row: &Bytes, _columns: &[(Bytes, Bytes)]) {
            self.updates.fetch_add(1, Ordering::Relaxed);
            self.rows_seen.lock().insert(row.clone());
        }
        fn read_index(&self, _title: &Bytes) -> usize {
            self.reads.fetch_add(1, Ordering::Relaxed);
            0
        }
    }

    #[test]
    fn driver_issues_the_requested_ops() {
        let target = CountingTarget {
            updates: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            rows_seen: Mutex::new(Default::default()),
        };
        let wl = ItemWorkload::new(100, 10_000, 1);
        let cfg = DriverConfig {
            threads: 4,
            ops_per_thread: 250,
            mix: OpMix { update_fraction: 0.5 },
            key_space: 1000,
            zipfian: true,
            seed: 9,
            batch_size: 1,
        };
        let report = run(&target, &wl, &cfg);
        assert_eq!(report.ops, 1000);
        let u = target.updates.load(Ordering::Relaxed);
        let r = target.reads.load(Ordering::Relaxed);
        assert_eq!(u + r, 1000);
        assert!(u > 300 && u < 700, "roughly half updates, got {u}");
        assert_eq!(report.update_hist.count() + report.read_hist.count(), 1000);
        assert!(report.tps() > 0.0);
        assert!(target.rows_seen.lock().len() > 10);
    }

    #[test]
    fn update_only_mix_never_reads() {
        let target = CountingTarget {
            updates: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            rows_seen: Mutex::new(Default::default()),
        };
        let wl = ItemWorkload::new(100, 10_000, 1);
        let cfg = DriverConfig {
            threads: 2,
            ops_per_thread: 100,
            mix: OpMix::update_only(),
            key_space: 100,
            zipfian: false,
            seed: 1,
            batch_size: 1,
        };
        let report = run(&target, &wl, &cfg);
        assert_eq!(target.reads.load(Ordering::Relaxed), 0);
        assert_eq!(report.update_hist.count(), 200);
    }

    struct BatchCountingTarget {
        rows: AtomicU64,
        batches: AtomicU64,
        largest: AtomicU64,
    }

    impl Target for BatchCountingTarget {
        fn update(&self, _row: &Bytes, _columns: &[(Bytes, Bytes)]) {
            self.rows.fetch_add(1, Ordering::Relaxed);
        }
        fn update_batch(&self, rows: &[(Bytes, Vec<(Bytes, Bytes)>)]) {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.rows.fetch_add(rows.len() as u64, Ordering::Relaxed);
            self.largest.fetch_max(rows.len() as u64, Ordering::Relaxed);
        }
        fn read_index(&self, _title: &Bytes) -> usize {
            0
        }
    }

    #[test]
    fn batched_driver_groups_updates_without_losing_any() {
        let target = BatchCountingTarget {
            rows: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            largest: AtomicU64::new(0),
        };
        let wl = ItemWorkload::new(100, 10_000, 1);
        let cfg = DriverConfig {
            threads: 2,
            ops_per_thread: 100,
            mix: OpMix::update_only(),
            key_space: 100,
            zipfian: false,
            seed: 1,
            batch_size: 16,
        };
        let report = run(&target, &wl, &cfg);
        // Every update arrives exactly once, via the batch API, in batches
        // no larger than configured; the trailing partial batch flushes too.
        assert_eq!(target.rows.load(Ordering::Relaxed), 200);
        let batches = target.batches.load(Ordering::Relaxed);
        assert_eq!(batches, 14, "2 threads x (6 full + 1 trailing partial) batches");
        assert!(target.largest.load(Ordering::Relaxed) <= 16);
        // Latency attribution keeps histogram counts equal to op counts.
        assert_eq!(report.update_hist.count(), 200);
    }
}

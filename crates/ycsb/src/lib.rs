//! # diff-index-ycsb
//!
//! YCSB-style workload tooling for the Diff-Index reproduction: the paper's
//! extended `item`-table workload (§8.1 — 10 columns, indexed `item_title`
//! and `item_price`, ≈1 KB rows), YCSB key distributions (uniform, zipfian,
//! scrambled-zipfian, latest), a closed-loop multi-threaded driver, and
//! log-bucketed latency histograms.

#![warn(missing_docs)]

pub mod driver;
pub mod generator;
pub mod histogram;
pub mod workload;

pub use driver::{run, DriverConfig, DriverReport, Target};
pub use generator::{KeyChooser, Latest, ScrambledZipfian, Uniform, Zipfian};
pub use histogram::Histogram;
pub use workload::{ItemWorkload, OpMix};

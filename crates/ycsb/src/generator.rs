//! Key-choice distributions, following YCSB (Cooper et al., SoCC'10), which
//! the paper uses as its workload driver (§8.1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// FNV-1a 64-bit hash, YCSB's scrambling function.
pub fn fnv1a64(v: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A distribution over `0..n` item ids.
pub trait KeyChooser: Send {
    /// Next key id.
    fn next_key(&mut self) -> u64;
}

/// Uniform over `0..n`.
pub struct Uniform {
    rng: StdRng,
    n: u64,
}

impl Uniform {
    /// Uniform chooser over `0..n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), n: n.max(1) }
    }
}

impl KeyChooser for Uniform {
    fn next_key(&mut self) -> u64 {
        self.rng.random_range(0..self.n)
    }
}

/// Zipfian over `0..n` using Gray et al.'s rejection-free algorithm (the
/// same one YCSB implements), skewing toward small ids.
pub struct Zipfian {
    rng: StdRng,
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// YCSB's default skew (θ = 0.99).
    pub fn new(n: u64, seed: u64) -> Self {
        Self::with_theta(n, 0.99, seed)
    }

    /// Zipfian with explicit skew parameter θ ∈ (0, 1).
    pub fn with_theta(n: u64, theta: f64, seed: u64) -> Self {
        let n = n.max(1);
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self { rng: StdRng::seed_from_u64(seed), n, theta, alpha, zetan, eta, zeta2theta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; fine for the sizes used in tests/benches (≤ ~10M with
        // caching at construction time).
        let mut z = 0.0;
        for i in 1..=n {
            z += 1.0 / (i as f64).powf(theta);
        }
        z
    }
}

impl KeyChooser for Zipfian {
    fn next_key(&mut self) -> u64 {
        let _ = self.zeta2theta;
        let u: f64 = self.rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }
}

/// Zipfian scrambled over the key space (hot keys spread out), YCSB's
/// `scrambled_zipfian` — what the paper's hash-partitioned tables see.
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Scrambled zipfian over `0..n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { inner: Zipfian::new(n, seed) }
    }
}

impl KeyChooser for ScrambledZipfian {
    fn next_key(&mut self) -> u64 {
        fnv1a64(self.inner.next_key()) % self.inner.n
    }
}

/// "Latest" distribution: skewed toward the most recently inserted ids.
pub struct Latest {
    inner: Zipfian,
    n: u64,
}

impl Latest {
    /// Latest-skewed chooser over `0..n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { inner: Zipfian::new(n, seed), n: n.max(1) }
    }

    /// Grow the key space after an insert.
    pub fn advance(&mut self, new_n: u64) {
        self.n = new_n.max(1);
    }
}

impl KeyChooser for Latest {
    fn next_key(&mut self) -> u64 {
        let off = self.inner.next_key() % self.n;
        self.n - 1 - off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_range() {
        let mut u = Uniform::new(100, 7);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            let k = u.next_key();
            assert!(k < 100);
            seen[k as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 95);
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut z = Zipfian::new(10_000, 42);
        let mut head = 0;
        let total = 100_000;
        for _ in 0..total {
            if z.next_key() < 100 {
                head += 1;
            }
        }
        // With θ=0.99 the top 1% of keys receive far more than 1% of
        // accesses (typically >50%).
        assert!(
            head as f64 / total as f64 > 0.3,
            "zipfian head share too small: {head}/{total}"
        );
    }

    #[test]
    fn zipfian_stays_in_range() {
        let mut z = Zipfian::new(1000, 3);
        for _ in 0..10_000 {
            assert!(z.next_key() < 1000);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let mut s = ScrambledZipfian::new(10_000, 42);
        let mut low_half = 0;
        for _ in 0..10_000 {
            if s.next_key() < 5_000 {
                low_half += 1;
            }
        }
        // Scrambling should spread mass roughly evenly across halves.
        assert!((3_500..6_500).contains(&low_half), "low half got {low_half}");
    }

    #[test]
    fn latest_prefers_recent() {
        let mut l = Latest::new(10_000, 42);
        let mut recent = 0;
        for _ in 0..10_000 {
            if l.next_key() >= 9_900 {
                recent += 1;
            }
        }
        assert!(recent > 3_000, "latest should hit the newest 1% often: {recent}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Zipfian::new(1000, 5);
        let mut b = Zipfian::new(1000, 5);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(0), fnv1a64(0));
        assert_ne!(fnv1a64(1), fnv1a64(2));
    }
}

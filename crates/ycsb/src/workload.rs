//! The paper's extended YCSB workload (§8.1): an `item` table whose rows
//! have a unique item id as rowkey and 10 columns — `item_title` and
//! `item_price` (both indexed in the experiments) plus 8 filler columns of
//! 100 random bytes, ≈ 1 KB per row.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of filler columns.
pub const FILLER_COLUMNS: usize = 8;
/// Size of each filler value.
pub const FILLER_BYTES: usize = 100;

/// Deterministic generator for item rows.
pub struct ItemWorkload {
    /// Number of distinct `item_title` values; controls how many rows an
    /// exact-match index query returns (Table 2's `K`).
    pub title_cardinality: u64,
    /// Price range `0..max_price`, zero-padded so byte order == numeric
    /// order (range queries, Figure 9).
    pub max_price: u64,
    seed: u64,
}

impl ItemWorkload {
    /// Workload with the given title cardinality and price range.
    pub fn new(title_cardinality: u64, max_price: u64, seed: u64) -> Self {
        Self { title_cardinality: title_cardinality.max(1), max_price: max_price.max(1), seed }
    }

    /// Row key for item `id` (zero-padded for locality-free ordering).
    pub fn row_key(&self, id: u64) -> Bytes {
        Bytes::from(format!("item{:012}", crate::generator::fnv1a64(id) % 1_000_000_000_000))
    }

    /// The title value of item `id`.
    pub fn title_of(&self, id: u64) -> Bytes {
        Bytes::from(format!("title{:08}", crate::generator::fnv1a64(id ^ self.seed) % self.title_cardinality))
    }

    /// The price value of item `id` (zero-padded decimal).
    pub fn price_of(&self, id: u64) -> Bytes {
        Bytes::from(format!("{:010}", crate::generator::fnv1a64(id.wrapping_mul(31) ^ self.seed) % self.max_price))
    }

    /// A price *range* `[lo, hi]` covering approximately `selectivity`
    /// (e.g. `0.001` = 0.1 %) of the price space.
    pub fn price_range(&self, selectivity: f64, at: f64) -> (Bytes, Bytes) {
        let span = ((self.max_price as f64) * selectivity).max(1.0) as u64;
        let lo = ((self.max_price as f64 - span as f64) * at) as u64;
        let hi = (lo + span).min(self.max_price - 1);
        (Bytes::from(format!("{lo:010}")), Bytes::from(format!("{hi:010}")))
    }

    /// Full 10-column row for item `id`: `item_title`, `item_price`, and 8
    /// filler columns (`field0..field7`).
    pub fn row(&self, id: u64) -> Vec<(Bytes, Bytes)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ id);
        let mut cols = Vec::with_capacity(2 + FILLER_COLUMNS);
        cols.push((Bytes::from_static(b"item_title"), self.title_of(id)));
        cols.push((Bytes::from_static(b"item_price"), self.price_of(id)));
        for f in 0..FILLER_COLUMNS {
            let mut v = vec![0u8; FILLER_BYTES];
            rng.fill(&mut v[..]);
            cols.push((Bytes::from(format!("field{f}")), Bytes::from(v)));
        }
        cols
    }

    /// An updated row for item `id` at version `ver`: new title + price,
    /// same shape. Used for the update workloads of Figure 7.
    pub fn updated_row(&self, id: u64, ver: u64) -> Vec<(Bytes, Bytes)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ id ^ (ver << 32));
        let title = format!(
            "title{:08}",
            crate::generator::fnv1a64(id ^ self.seed ^ ver) % self.title_cardinality
        );
        let price = format!(
            "{:010}",
            crate::generator::fnv1a64(id.wrapping_mul(31) ^ ver) % self.max_price
        );
        let mut v = vec![0u8; FILLER_BYTES];
        rng.fill(&mut v[..]);
        vec![
            (Bytes::from_static(b"item_title"), Bytes::from(title)),
            (Bytes::from_static(b"item_price"), Bytes::from(price)),
            (Bytes::from(format!("field{}", ver as usize % FILLER_COLUMNS)), Bytes::from(v)),
        ]
    }
}

/// Operation mix for a driver run.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Fraction of operations that are updates (rest are index reads).
    pub update_fraction: f64,
}

impl OpMix {
    /// 100 % updates (the paper's update experiments, Figure 7).
    pub fn update_only() -> Self {
        Self { update_fraction: 1.0 }
    }

    /// 100 % index reads (Figure 8).
    pub fn read_only() -> Self {
        Self { update_fraction: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_shape_matches_paper() {
        let w = ItemWorkload::new(1000, 1_000_000, 42);
        let row = w.row(7);
        assert_eq!(row.len(), 10, "paper: 10 columns");
        assert_eq!(row[0].0, Bytes::from_static(b"item_title"));
        assert_eq!(row[1].0, Bytes::from_static(b"item_price"));
        let total: usize = row.iter().map(|(c, v)| c.len() + v.len()).sum();
        assert!(total > 800 && total < 1200, "≈1 KB per row, got {total}");
    }

    #[test]
    fn rows_are_deterministic() {
        let w = ItemWorkload::new(1000, 1_000_000, 42);
        assert_eq!(w.row(5), w.row(5));
        assert_ne!(w.row(5), w.row(6));
        assert_eq!(w.row_key(9), w.row_key(9));
    }

    #[test]
    fn title_cardinality_bounds_distinct_titles() {
        let w = ItemWorkload::new(10, 1000, 1);
        let titles: std::collections::HashSet<Bytes> = (0..1000).map(|i| w.title_of(i)).collect();
        assert!(titles.len() <= 10);
        assert!(titles.len() >= 8, "most of the 10 titles should appear");
    }

    #[test]
    fn price_is_zero_padded_and_ordered() {
        let w = ItemWorkload::new(10, 1_000_000, 1);
        for i in 0..100 {
            let p = w.price_of(i);
            assert_eq!(p.len(), 10);
        }
        // Byte order == numeric order thanks to the padding.
        assert!(b"0000000002".as_slice() < b"0000000010".as_slice());
    }

    #[test]
    fn price_range_selectivity() {
        let w = ItemWorkload::new(10, 1_000_000, 1);
        let (lo, hi) = w.price_range(0.001, 0.5);
        let lo_n: u64 = std::str::from_utf8(&lo).unwrap().parse().unwrap();
        let hi_n: u64 = std::str::from_utf8(&hi).unwrap().parse().unwrap();
        assert_eq!(hi_n - lo_n, 1000, "0.1% of 1M");
        assert!(lo < hi);
    }

    #[test]
    fn updated_row_changes_indexed_columns() {
        let w = ItemWorkload::new(1_000_000, 1_000_000, 42);
        let a = w.updated_row(7, 1);
        let b = w.updated_row(7, 2);
        assert_ne!(a[0].1, b[0].1, "title changes across versions");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn op_mix_presets() {
        assert_eq!(OpMix::update_only().update_fraction, 1.0);
        assert_eq!(OpMix::read_only().update_fraction, 0.0);
    }
}

//! Write-path harness: single-put latency/throughput, batched multi-row
//! ingest, and N-thread indexed-put throughput for every synchronous and
//! asynchronous index scheme, all with a durable WAL (`wal_sync = true`) so
//! the numbers reflect what group commit actually buys. Emits
//! machine-readable results to `BENCH_writepath.json` (override with the
//! first CLI argument) alongside a human summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p diff-index-bench --bin writepath [out.json]
//! ```

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use diff_index_lsm::{LsmOptions, TableOptions};
use diff_index_ycsb::{DriverConfig, ItemWorkload, OpMix, Target};
use std::time::Instant;
use tempdir_lite::TempDir;

/// Rows inserted by the batched-ingest workload.
const BATCH_ROWS: u64 = 4096;
/// Logical client batch size for the batched-ingest workload.
const BATCH_SIZE: usize = 64;
/// Puts issued by the single-put workload.
const SINGLE_OPS: u64 = 600;
/// Writer threads in the indexed-put workloads.
const THREADS: usize = 8;
/// Puts per writer thread in the indexed-put workloads.
const OPS_PER_THREAD: u64 = 150;
/// Distinct indexed values (small, so updates replace old index entries).
const TITLE_CARDINALITY: u64 = 64;

fn durable_lsm() -> LsmOptions {
    LsmOptions {
        wal_sync: true,
        memtable_flush_bytes: 32 * 1024 * 1024, // stay out of flush territory
        table: TableOptions::default(),
        auto_compact: false,
        compaction_trigger: 0,
        ..LsmOptions::default()
    }
}

fn new_cluster(dir: &TempDir) -> Cluster {
    Cluster::new(dir.path(), ClusterOptions { num_servers: 1, lsm: durable_lsm() })
        .expect("cluster")
}

fn row_key(id: u64) -> Bytes {
    Bytes::from(format!("row{id:06}"))
}

fn title(id: u64, ver: u64) -> Bytes {
    Bytes::from(format!("title{:04}", (id ^ ver.wrapping_mul(31)) % TITLE_CARDINALITY))
}

fn filler(id: u64, ver: u64) -> Bytes {
    Bytes::from(format!("value-{ver:08}-{id:08}-{:060}", 0))
}

struct WorkloadResult {
    name: &'static str,
    ops: u64,
    elapsed_us: u64,
}

impl WorkloadResult {
    fn ops_per_sec(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed_us as f64 / 1e6)
    }
}

/// One row at a time, one client, durable WAL: the floor every other
/// workload is measured against.
fn single_put() -> WorkloadResult {
    let dir = TempDir::new("writepath-single").expect("tempdir");
    let cluster = new_cluster(&dir);
    cluster.create_table("t", 4).expect("table");
    let t0 = Instant::now();
    for i in 0..SINGLE_OPS {
        cluster
            .put("t", &row_key(i), &[(Bytes::from_static(b"c"), filler(i, 0))])
            .expect("put");
    }
    WorkloadResult { name: "single_put", ops: SINGLE_OPS, elapsed_us: t0.elapsed().as_micros() as u64 }
}

/// Bulk ingest of `BATCH_ROWS` rows in client batches of `BATCH_SIZE`,
/// unindexed. Uses the widest batch API the cluster offers.
fn batched_put() -> WorkloadResult {
    let dir = TempDir::new("writepath-batch").expect("tempdir");
    let cluster = new_cluster(&dir);
    cluster.create_table("t", 4).expect("table");
    let t0 = Instant::now();
    for chunk_start in (0..BATCH_ROWS).step_by(BATCH_SIZE) {
        let rows: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = (chunk_start
            ..(chunk_start + BATCH_SIZE as u64).min(BATCH_ROWS))
            .map(|i| (row_key(i), vec![(Bytes::from_static(b"c"), filler(i, 0))]))
            .collect();
        cluster.put_batch("t", &rows).expect("put_batch");
    }
    WorkloadResult { name: "batched_put", ops: BATCH_ROWS, elapsed_us: t0.elapsed().as_micros() as u64 }
}

/// `THREADS` concurrent clients updating indexed rows under `scheme`:
/// every put rewrites the indexed column, so sync schemes pay SU2 (and
/// SU3/SU4 for sync-full) inline. Rows are pre-seeded and the index
/// quiesced before the clock starts.
fn indexed_put(scheme: IndexScheme, name: &'static str) -> WorkloadResult {
    let dir = TempDir::new("writepath-indexed").expect("tempdir");
    let cluster = new_cluster(&dir);
    cluster.create_table("item", 4).expect("table");
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("title", "item", "item_title", scheme), 4)
        .expect("index");

    let key_space = THREADS as u64 * OPS_PER_THREAD;
    for i in 0..key_space {
        cluster
            .put(
                "item",
                &row_key(i),
                &[
                    (Bytes::from_static(b"item_title"), title(i, 0)),
                    (Bytes::from_static(b"field0"), filler(i, 0)),
                ],
            )
            .expect("seed put");
    }
    di.quiesce("item");

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cluster = cluster.clone();
            scope.spawn(move || {
                for n in 0..OPS_PER_THREAD {
                    let id = (t as u64 * OPS_PER_THREAD + n * 7) % key_space;
                    cluster
                        .put(
                            "item",
                            &row_key(id),
                            &[
                                (Bytes::from_static(b"item_title"), title(id, n + 1)),
                                (Bytes::from_static(b"field0"), filler(id, n + 1)),
                            ],
                        )
                        .expect("indexed put");
                }
            });
        }
    });
    let elapsed_us = t0.elapsed().as_micros() as u64;
    // Drain deferred work outside the timed window so the process exits
    // cleanly; async throughput here is *client-ack* throughput, as in §8.2.
    di.quiesce("item");
    WorkloadResult { name, ops: THREADS as u64 * OPS_PER_THREAD, elapsed_us }
}

/// The real Diff-Index stack as a YCSB target; batched updates go through
/// [`Cluster::put_batch`].
struct YcsbTarget {
    di: DiffIndex,
}

impl Target for YcsbTarget {
    fn update(&self, row: &Bytes, columns: &[(Bytes, Bytes)]) {
        self.di.cluster().put("item", row, columns).expect("put");
    }
    fn update_batch(&self, rows: &[(Bytes, Vec<(Bytes, Bytes)>)]) {
        self.di.cluster().put_batch("item", rows).expect("put_batch");
    }
    fn read_index(&self, title: &Bytes) -> usize {
        self.di.get_by_index("item", "title", title, 1000).expect("index read").len()
    }
}

/// YCSB Workload A (50/50 update/read, zipfian) on a sync-full index with
/// the given client batch size — the before/after of the batched-put API.
fn ycsb_a(batch_size: usize, name: &'static str) -> WorkloadResult {
    let dir = TempDir::new("writepath-ycsb").expect("tempdir");
    let cluster = new_cluster(&dir);
    cluster.create_table("item", 4).expect("table");
    let di = DiffIndex::new(cluster.clone());
    di.create_index(
        IndexSpec::single("title", "item", "item_title", IndexScheme::SyncFull),
        4,
    )
    .expect("index");
    let wl = ItemWorkload::new(TITLE_CARDINALITY, 1_000_000, 7);
    let key_space = 400u64;
    for i in 0..key_space {
        cluster.put("item", &wl.row_key(i), &wl.row(i)).expect("seed put");
    }
    di.quiesce("item");
    let target = YcsbTarget { di };
    let cfg = DriverConfig {
        threads: THREADS,
        ops_per_thread: OPS_PER_THREAD as usize,
        mix: OpMix { update_fraction: 0.5 },
        key_space,
        zipfian: true,
        seed: 11,
        batch_size,
    };
    let report = diff_index_ycsb::run(&target, &wl, &cfg);
    target.di.quiesce("item");
    WorkloadResult { name, ops: report.ops, elapsed_us: report.elapsed_us }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_writepath.json".to_string());

    let results = [
        single_put(),
        batched_put(),
        indexed_put(IndexScheme::SyncFull, "indexed_put_8t_sync_full"),
        indexed_put(IndexScheme::SyncInsert, "indexed_put_8t_sync_insert"),
        indexed_put(IndexScheme::AsyncSimple, "indexed_put_8t_async_simple"),
        ycsb_a(1, "ycsb_a_sync_full_batch1"),
        ycsb_a(16, "ycsb_a_sync_full_batch16"),
    ];

    println!(
        "writepath: wal_sync=true, batch={BATCH_SIZE}, {THREADS} threads x {OPS_PER_THREAD} indexed puts"
    );
    for r in &results {
        println!(
            "  {:<28} {:>8} ops in {:>9} us  ({:>10.1} puts/s)",
            r.name,
            r.ops,
            r.elapsed_us,
            r.ops_per_sec()
        );
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"ops\":{},\"elapsed_us\":{},\"ops_per_sec\":{:.1}}}",
                r.name,
                r.ops,
                r.elapsed_us,
                r.ops_per_sec()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\"wal_sync\": true, \"batch_rows\": {BATCH_ROWS}, \"batch_size\": {BATCH_SIZE}, \"threads\": {THREADS}, \"ops_per_thread\": {OPS_PER_THREAD}, \"title_cardinality\": {TITLE_CARDINALITY}}},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}

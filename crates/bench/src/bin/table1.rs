//! **Table 1 — LSM tree vs. B-Tree.**
//!
//! The paper's Table 1 is a qualitative comparison; this binary quantifies
//! it by running the same workload on both engines built in this workspace
//! and printing each claim next to the measured evidence:
//!
//! * LSM writes are append-only and fast; B-Tree writes are in-place and
//!   slower (random page I/O).
//! * LSM has one `put` for insert and update (it cannot tell them apart);
//!   B-Tree `insert` distinguishes them (returns the old value).
//! * LSM reads are relatively slow (multi-component lookup); B-Tree reads
//!   are relatively fast.

use diff_index_btree::BTree;
use diff_index_lsm::{LsmOptions, LsmTree};
use std::time::Instant;
use tempdir_lite::TempDir;

const N: u64 = 30_000;

fn main() {
    let dir = TempDir::new("table1").unwrap();

    // --- LSM engine --------------------------------------------------------
    let lsm = LsmTree::open(
        dir.path().join("lsm"),
        LsmOptions { memtable_flush_bytes: 1 << 20, ..LsmOptions::default() },
    )
    .unwrap();
    let t0 = Instant::now();
    for i in 0..N {
        lsm.put(key(i), 1_000 + i, value(i)).unwrap();
    }
    let lsm_write = t0.elapsed();
    // Updates: same API, same cost — a put is a blind upsert.
    let t0 = Instant::now();
    for i in 0..N {
        lsm.put(key(i), 2_000_000 + i, value(i + 1)).unwrap();
    }
    let lsm_update = t0.elapsed();
    lsm.flush().unwrap();
    let t0 = Instant::now();
    for i in (0..N).step_by(7) {
        lsm.get_latest(key(i).as_bytes()).unwrap().unwrap();
    }
    let lsm_read = t0.elapsed() / (N as u32 / 7);
    let lsm_write_per_op = lsm_write / N as u32;
    let lsm_update_per_op = lsm_update / N as u32;

    // --- B+Tree engine ------------------------------------------------------
    let bt = BTree::open(dir.path().join("btree.db"), 1024).unwrap();
    let t0 = Instant::now();
    for i in 0..N {
        bt.insert(key(i).as_bytes(), value(i).as_bytes()).unwrap();
    }
    bt.sync().unwrap();
    let bt_write = t0.elapsed();
    let t0 = Instant::now();
    let mut old_seen = 0u64;
    for i in 0..N {
        if bt.insert(key(i).as_bytes(), value(i + 1).as_bytes()).unwrap().is_some() {
            old_seen += 1;
        }
    }
    bt.sync().unwrap();
    let bt_update = t0.elapsed();
    let t0 = Instant::now();
    for i in (0..N).step_by(7) {
        bt.get(key(i).as_bytes()).unwrap().unwrap();
    }
    let bt_read = t0.elapsed() / (N as u32 / 7);
    let bt_write_per_op = bt_write / N as u32;
    let bt_update_per_op = bt_update / N as u32;

    println!("# Table 1: LSM tree vs. B-Tree ({} ops each, this machine)\n", N);
    println!("{:<26} {:<26} {:<26}", "Features", "LSM", "B-Tree");
    println!(
        "{:<26} {:<26} {:<26}",
        "Optimized for",
        format!("write ({lsm_write_per_op:?}/op)"),
        format!("moderate r+w ({bt_write_per_op:?}/op)"),
    );
    println!(
        "{:<26} {:<26} {:<26}",
        "Write",
        format!("append-only ({lsm_update_per_op:?}/update)"),
        format!("in-place ({bt_update_per_op:?}/update)"),
    );
    println!(
        "{:<26} {:<26} {:<26}",
        "Write API",
        "put for insert AND delete",
        format!("insert/update distinct ({old_seen} olds returned)"),
    );
    println!(
        "{:<26} {:<26} {:<26}",
        "Read",
        format!("relatively slow ({lsm_read:?}/get)"),
        format!("relatively fast ({bt_read:?}/get)"),
    );
    println!("{:<26} {:<26} {:<26}", "Usage", "BigTable, HBase, Cassandra", "many RDBMS");

    // The structural claims, verified:
    assert_eq!(old_seen, N, "B-Tree updates know they are updates");
    let m = lsm.metrics().snapshot();
    println!(
        "\nLSM evidence: {} WAL appends (sequential I/O only), {} flushes, tables probed {}",
        m.wal_appends, m.flushes, m.tables_probed
    );
    println!(
        "B-Tree evidence: {} random page reads, {} random page writes",
        bt.disk_reads(),
        bt.disk_writes()
    );
    // Read/write asymmetry: LSM writes are faster than its reads.
    let lsm_asym = lsm_read.as_nanos() as f64 / lsm_write_per_op.as_nanos().max(1) as f64;
    println!("\nLSM read/write latency ratio: {lsm_asym:.1}x (reads are slower)");
}

fn key(i: u64) -> String {
    format!("user{:012}", i.wrapping_mul(0x9E3779B97F4A7C15) % 1_000_000_000_000)
}

fn value(i: u64) -> String {
    format!("value-{i}-{}", "x".repeat(64))
}

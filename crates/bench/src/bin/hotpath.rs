//! Read-path hot-path harness: point-get latency (cold and warm block
//! cache), point-get throughput, and scan throughput against a multi-table
//! LSM tree. Emits machine-readable results to `BENCH_hotpath.json`
//! (override with the first CLI argument) alongside a human summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p diff-index-bench --bin hotpath [out.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use diff_index_lsm::{BlockCache, LsmOptions, LsmTree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempdir_lite::TempDir;

const KEYS: u64 = 50_000;
const VALUE_LEN: usize = 100;
const TABLES: u64 = 5;
const GET_OPS: usize = 30_000;
const SCAN_OPS: usize = 300;
const SCAN_LIMIT: usize = 100;

fn key(id: u64) -> Bytes {
    Bytes::from(format!("user{id:08}"))
}

fn value(id: u64) -> Bytes {
    let mut v = vec![0u8; VALUE_LEN];
    let mut rng = StdRng::seed_from_u64(id);
    rng.fill(&mut v[..]);
    Bytes::from(v)
}

/// Build a tree with `TABLES` SSTables plus a partially filled memtable, so
/// gets exercise the full probe path (memtable + several tables).
fn build_tree(cache: Option<Arc<BlockCache>>, dir: &TempDir) -> LsmTree {
    let opts = LsmOptions {
        block_cache: cache,
        auto_flush: false,
        auto_compact: false,
        compaction_trigger: 0,
        ..LsmOptions::default()
    };
    let tree = LsmTree::open(dir.path().join("hotpath"), opts).expect("open");
    let per_table = KEYS / TABLES;
    for id in 0..KEYS {
        tree.put(key(id), id + 1, value(id)).expect("put");
        if id % per_table == per_table - 1 && id != KEYS - 1 {
            tree.flush().expect("flush");
        }
    }
    tree.flush().expect("final flush");
    // A second round of writes for 20% of keys leaves a live memtable and
    // multi-version rows, as a steady-state server would have.
    for id in (0..KEYS).step_by(5) {
        tree.put(key(id), KEYS + id + 1, value(id ^ 1)).expect("put v2");
    }
    tree
}

struct LatencyStats {
    mean_ns: f64,
    p50_ns: f64,
    p99_ns: f64,
    ops_per_sec: f64,
}

fn stats(mut samples: Vec<f64>) -> LatencyStats {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    LatencyStats {
        mean_ns: mean,
        p50_ns: pct(0.5),
        p99_ns: pct(0.99),
        ops_per_sec: 1e9 / mean,
    }
}

fn time_gets(tree: &LsmTree, ops: usize, seed: u64) -> LatencyStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(ops);
    for _ in 0..ops {
        let id = rng.random_range(0..KEYS);
        let k = key(id);
        let start = Instant::now();
        let got = tree.get_latest(&k).expect("get");
        samples.push(start.elapsed().as_nanos() as f64);
        assert!(got.is_some(), "key {id} must exist");
    }
    stats(samples)
}

fn time_scans(tree: &LsmTree, ops: usize, seed: u64) -> (LatencyStats, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(ops);
    let mut rows = 0usize;
    for _ in 0..ops {
        let id = rng.random_range(0..KEYS - SCAN_LIMIT as u64);
        let start_key = key(id);
        let start = Instant::now();
        let got = tree
            .scan(&start_key, None, u64::MAX, SCAN_LIMIT)
            .expect("scan");
        samples.push(start.elapsed().as_nanos() as f64);
        rows += got.len();
    }
    let s = stats(samples);
    let rows_per_sec = rows as f64 / (s.mean_ns * ops as f64 / 1e9);
    (s, rows_per_sec)
}

fn json_entry(name: &str, s: &LatencyStats, extra: &str) -> String {
    format!(
        "    {{\"name\":\"{name}\",\"mean_ns\":{:.1},\"p50_ns\":{:.1},\"p99_ns\":{:.1},\"ops_per_sec\":{:.1}{extra}}}",
        s.mean_ns, s.p50_ns, s.p99_ns, s.ops_per_sec,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    // Cold: no block cache at all — every block read decodes from disk.
    let cold_dir = TempDir::new("hotpath-cold").expect("tempdir");
    let cold_tree = build_tree(None, &cold_dir);
    let cold = time_gets(&cold_tree, GET_OPS / 3, 0xC01D);

    // Warm: generous shared cache, pre-warmed with one full key sweep.
    let warm_dir = TempDir::new("hotpath-warm").expect("tempdir");
    let cache = Arc::new(BlockCache::new(256 * 1024 * 1024));
    let warm_tree = build_tree(Some(Arc::clone(&cache)), &warm_dir);
    for id in 0..KEYS {
        warm_tree.get_latest(&key(id)).expect("warmup get");
    }
    let warm = time_gets(&warm_tree, GET_OPS, 0x3A93);
    let (scan, rows_per_sec) = time_scans(&warm_tree, SCAN_OPS, 0x5CA9);

    let hits = cache.hits();
    let misses = cache.misses();

    println!("hotpath: {KEYS} keys x {VALUE_LEN} B, {TABLES} tables + live memtable");
    for (name, s) in [("point_get_cold", &cold), ("point_get_warm", &warm), ("scan_warm", &scan)] {
        println!(
            "  {name:<16} mean {:>9.1} ns  p50 {:>9.1} ns  p99 {:>9.1} ns  ({:.0} ops/s)",
            s.mean_ns, s.p50_ns, s.p99_ns, s.ops_per_sec
        );
    }
    println!("  scan rows/s      {rows_per_sec:.0}");
    println!("  block cache      {hits} hits / {misses} misses");

    let json = format!(
        "{{\n  \"config\": {{\"keys\": {KEYS}, \"value_len\": {VALUE_LEN}, \"tables\": {TABLES}, \"scan_limit\": {SCAN_LIMIT}}},\n  \"results\": [\n{},\n{},\n{}\n  ],\n  \"scan_rows_per_sec\": {rows_per_sec:.1},\n  \"block_cache\": {{\"hits\": {hits}, \"misses\": {misses}}}\n}}\n",
        json_entry("point_get_cold", &cold, ""),
        json_entry("point_get_warm", &warm, ""),
        json_entry("scan_warm", &scan, &format!(",\"rows_per_sec\":{rows_per_sec:.1}")),
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}

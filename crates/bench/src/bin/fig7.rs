//! **Figure 7 — Update performance** (8-server cluster, 100 % updates,
//! 1–320 client threads): index-update latency vs achieved throughput for
//! `null` (no index), `insert` (sync-insert), `async` (async-simple) and
//! `full` (sync-full), plus the §8.2 headline numbers derived from the
//! curves.

use diff_index_bench::{render_curves, render_summary};
use diff_index_sim::{update_curves, SimConfig};

fn main() {
    let cfg = SimConfig::in_house();
    let duration = duration_us();
    let curves = update_curves(&cfg, duration);
    print!("{}", render_curves("Figure 7: update latency vs throughput (8 servers)", &curves));
    println!("{}", render_summary(&curves));

    let by = |l: &str| curves.iter().find(|c| c.label == l).unwrap();
    let null = by("null");
    let insert = by("insert");
    let asy = by("async");
    let full = by("full");

    // §8.2 claims, re-derived from the measured curves:
    let added = |c: &diff_index_sim::Curve| c.low_load_latency_ms() - null.low_load_latency_ms();
    println!("derived claims (paper §8.2):");
    println!(
        "  sync-insert latency ≈ {:.1}x a base put   (paper: \"approximately two times\")",
        insert.low_load_latency_ms() / null.low_load_latency_ms()
    );
    println!(
        "  sync-full latency   ≈ {:.1}x a base put   (paper: \"can be five times higher\")",
        full.low_load_latency_ms() / null.low_load_latency_ms()
    );
    println!(
        "  index-update latency reduction, insert vs full: {:.0}%  (paper: 60-80%)",
        (1.0 - added(insert) / added(full)) * 100.0
    );
    println!(
        "  index-update latency reduction, async  vs full: {:.0}%  (paper: 60-80%)",
        (1.0 - added(asy).max(0.0) / added(full)) * 100.0
    );
    println!(
        "  async saturation {:.0} TPS vs sync-full {:.0} TPS: {:.0}% higher  (paper: 4200 vs 3200, ~30%)",
        asy.saturation_tps(),
        full.saturation_tps(),
        (asy.saturation_tps() / full.saturation_tps() - 1.0) * 100.0
    );
}

fn duration_us() -> u64 {
    std::env::var("SIM_SECONDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(15)
        * 1_000_000
}

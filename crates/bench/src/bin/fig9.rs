//! **Figure 9 — Read latency under different selectivity** (range queries
//! on `item_price`, 10 client threads, selectivity 0.0001 %–0.1 % of a
//! 40 M-row table). The paper's observation: sync-insert's latency grows
//! enormously as selectivity drops because every returned row is
//! double-checked against the base table.

use diff_index_sim::{range_query_sweep, SimConfig};

fn main() {
    let cfg = SimConfig::in_house();
    let pts = range_query_sweep(&cfg);
    println!("# Figure 9: range query latency vs selectivity (10 client threads)\n");
    println!(
        "{:<13} {:>9} {:>12} {:>12} {:>12}",
        "selectivity", "rows", "full ms", "insert ms", "async ms"
    );
    for p in &pts {
        println!(
            "{:<13} {:>9} {:>12.1} {:>12.1} {:>12.1}",
            format!("{:.4}%", p.selectivity * 100.0),
            p.rows,
            p.mean_ms[0],
            p.mean_ms[1],
            p.mean_ms[2]
        );
    }
    let first = &pts[0];
    let last = &pts[pts.len() - 1];
    println!("\nderived claims (paper §8.2):");
    println!(
        "  insert/full gap grows from {:.1}x (0.0001%) to {:.1}x (0.1%)",
        first.mean_ms[1] / first.mean_ms[0],
        last.mean_ms[1] / last.mean_ms[0]
    );
    println!("  (paper: \"sync-insert has a much larger latency as selectivity grows lower\";");
    println!("   \"the read performance of sync-insert is acceptable when query selectivity is high\")");
}

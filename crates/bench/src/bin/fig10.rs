//! **Figure 10 — Diff-Index update performance in IBM RC2** (40 virtual
//! data servers, 5× the data of the in-house cluster). The paper's
//! findings: the 40-server cluster reaches *less than 4×* the TPS of the
//! 8-server cluster; latencies at 5× the throughput are a couple of times
//! larger; yet the relative ordering of the schemes is preserved.

use diff_index_bench::{render_curves, render_summary};
use diff_index_sim::{update_curves, Curve, SimConfig};

fn main() {
    let duration = std::env::var("SIM_SECONDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(15)
        * 1_000_000;
    let small = update_curves(&SimConfig::in_house(), duration);
    let big = update_curves(&SimConfig::rc2_cloud(), duration);
    print!("{}", render_curves("Figure 10: update latency vs throughput (40-VM RC2 cloud)", &big));
    println!("{}", render_summary(&big));

    let sat = |cs: &[Curve], l: &str| cs.iter().find(|c| c.label == l).unwrap().saturation_tps();
    println!("scale-out analysis (5x servers, paper: \"less than 4x TPS\"):");
    for l in ["null", "insert", "async", "full"] {
        println!(
            "  {l:<7} 8-server {:>6.0} TPS -> 40-server {:>7.0} TPS  ({:.1}x)",
            sat(&small, l),
            sat(&big, l),
            sat(&big, l) / sat(&small, l)
        );
    }
    let lat = |cs: &[Curve], l: &str| cs.iter().find(|c| c.label == l).unwrap().low_load_latency_ms();
    println!("\nlow-load latency, cloud vs in-house (paper: \"a couple of times larger\"):");
    for l in ["null", "insert", "async", "full"] {
        println!("  {l:<7} {:.1} ms -> {:.1} ms ({:.1}x)", lat(&small, l), lat(&big, l), lat(&big, l) / lat(&small, l));
    }
}

//! Network-path harness: YCSB Workloads A–F driven against the same
//! Diff-Index stack twice — once in-process (function calls into the
//! cluster) and once over the wire (a loopback [`diff_index_net::ServerGroup`]
//! fronted by a [`diff_index_net::RemoteClient`]). Both sides share one
//! `Target` implementation that goes through the [`Store`] trait, so the
//! only variable is the transport.
//!
//! Emits the socket-side results to `BENCH_netpath.json` and the
//! in-process results to `BENCH_netpath_baseline.json` (override with the
//! first/second CLI arguments). With `--remote <addr>` the driver skips
//! the loopback group and the baseline and measures an external server
//! instead.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p diff-index-bench --bin netbench [--remote ADDR] [out.json [baseline.json]]
//! ```
//!
//! Workload mapping (the driver supports update/read-by-index mixes; the
//! YCSB letters are approximated on that surface):
//!
//! | WL | mix                | distribution | notes                                  |
//! |----|--------------------|--------------|----------------------------------------|
//! | A  | 50% update         | zipfian      |                                        |
//! | B  | 5% update          | zipfian      |                                        |
//! | C  | read-only          | zipfian      |                                        |
//! | D  | 5% update          | uniform      | "latest" approximated as uniform       |
//! | E  | 5% update          | zipfian      | reads are short index scans (limit 1k) |
//! | F  | 50% update         | uniform      | RMW approximated as blind update       |

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use diff_index_lsm::{LsmOptions, TableOptions};
use diff_index_net::{RemoteClient, ServerGroup};
use diff_index_ycsb::{DriverConfig, ItemWorkload, OpMix, Target};
use std::sync::Arc;
use tempdir_lite::TempDir;

/// Concurrent client threads per workload.
const THREADS: usize = 4;
/// Operations per client thread per workload.
const OPS_PER_THREAD: usize = 150;
/// Item ids `0..KEY_SPACE`, seeded before the clock starts.
const KEY_SPACE: u64 = 400;
/// Distinct indexed values (Table 2's `K`).
const TITLE_CARDINALITY: u64 = 64;
/// Region servers (and loopback listeners) in the stack under test.
const NUM_SERVERS: usize = 2;
/// Regions for the base table and the index table.
const REGIONS: usize = 4;

struct WorkloadSpec {
    name: &'static str,
    update_fraction: f64,
    zipfian: bool,
}

const WORKLOADS: [WorkloadSpec; 6] = [
    WorkloadSpec { name: "ycsb_a", update_fraction: 0.5, zipfian: true },
    WorkloadSpec { name: "ycsb_b", update_fraction: 0.05, zipfian: true },
    WorkloadSpec { name: "ycsb_c", update_fraction: 0.0, zipfian: true },
    WorkloadSpec { name: "ycsb_d", update_fraction: 0.05, zipfian: false },
    WorkloadSpec { name: "ycsb_e", update_fraction: 0.05, zipfian: true },
    WorkloadSpec { name: "ycsb_f", update_fraction: 0.5, zipfian: false },
];

fn durable_lsm() -> LsmOptions {
    LsmOptions {
        wal_sync: true,
        memtable_flush_bytes: 32 * 1024 * 1024,
        table: TableOptions::default(),
        auto_compact: false,
        compaction_trigger: 0,
        ..LsmOptions::default()
    }
}

struct WorkloadResult {
    name: &'static str,
    ops: u64,
    elapsed_us: u64,
    update_p99_us: u64,
    read_p99_us: u64,
}

impl WorkloadResult {
    fn ops_per_sec(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed_us as f64 / 1e6)
    }
}

/// One target for both backends: every operation goes through the
/// [`Store`] the [`DiffIndex`] was built over, so the in-process and
/// remote runs execute identical logic modulo transport.
struct NetTarget {
    di: DiffIndex,
}

impl Target for NetTarget {
    fn update(&self, row: &Bytes, columns: &[(Bytes, Bytes)]) {
        self.di.store().put("item", row, columns).expect("put");
    }
    fn update_batch(&self, rows: &[(Bytes, Vec<(Bytes, Bytes)>)]) {
        self.di.store().put_batch("item", rows).expect("put_batch");
    }
    fn read_index(&self, title: &Bytes) -> usize {
        self.di.get_by_index("item", "title", title, 1000).expect("index read").len()
    }
}

/// Seed the key space and create the sync-full index through `di` (an
/// admin RPC when `di` is remote), then run all six workloads.
fn run_suite(di: DiffIndex, wl: &ItemWorkload) -> Vec<WorkloadResult> {
    if !di.store().has_table("item").expect("has_table") {
        di.store().create_table("item", REGIONS).expect("create_table");
    }
    if di.index("item", "title").is_err() {
        di.create_index(
            IndexSpec::single("title", "item", "item_title", IndexScheme::SyncFull),
            REGIONS,
        )
        .expect("create index");
    }
    for i in 0..KEY_SPACE {
        di.store().put("item", &wl.row_key(i), &wl.row(i)).expect("seed put");
    }
    di.quiesce("item");

    let target = NetTarget { di };
    WORKLOADS
        .iter()
        .map(|spec| {
            let cfg = DriverConfig {
                threads: THREADS,
                ops_per_thread: OPS_PER_THREAD,
                mix: OpMix { update_fraction: spec.update_fraction },
                key_space: KEY_SPACE,
                zipfian: spec.zipfian,
                seed: 11,
                batch_size: 1,
            };
            let report = diff_index_ycsb::run(&target, wl, &cfg);
            WorkloadResult {
                name: spec.name,
                ops: report.ops,
                elapsed_us: report.elapsed_us,
                update_p99_us: report.update_hist.percentile(99.0),
                read_p99_us: report.read_hist.percentile(99.0),
            }
        })
        .collect()
}

fn write_json(path: &str, mode: &str, results: &[WorkloadResult]) {
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"ops\":{},\"elapsed_us\":{},\"ops_per_sec\":{:.1},\"update_p99_us\":{},\"read_p99_us\":{}}}",
                r.name,
                r.ops,
                r.elapsed_us,
                r.ops_per_sec(),
                r.update_p99_us,
                r.read_p99_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\"mode\": \"{mode}\", \"wal_sync\": true, \"threads\": {THREADS}, \"ops_per_thread\": {OPS_PER_THREAD}, \"key_space\": {KEY_SPACE}, \"title_cardinality\": {TITLE_CARDINALITY}, \"num_servers\": {NUM_SERVERS}, \"scheme\": \"sync_full\"}},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write json");
    println!("wrote {path}");
}

fn print_results(label: &str, results: &[WorkloadResult]) {
    println!("{label}:");
    for r in results {
        println!(
            "  {:<8} {:>6} ops in {:>9} us  ({:>9.1} ops/s, update p99 {:>6} us, read p99 {:>6} us)",
            r.name,
            r.ops,
            r.elapsed_us,
            r.ops_per_sec(),
            r.update_p99_us,
            r.read_p99_us
        );
    }
}

fn main() {
    let mut remote_addr: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--remote" {
            remote_addr = Some(args.next().expect("--remote needs an address"));
        } else {
            positional.push(a);
        }
    }
    let out_path = positional.first().cloned().unwrap_or_else(|| "BENCH_netpath.json".to_string());
    let baseline_path =
        positional.get(1).cloned().unwrap_or_else(|| "BENCH_netpath_baseline.json".to_string());

    let wl = ItemWorkload::new(TITLE_CARDINALITY, 1_000_000, 7);

    if let Some(addr) = remote_addr {
        // External server: measure only the socket path.
        let client = RemoteClient::connect_default(vec![addr.clone()]).expect("connect");
        let remote = run_suite(DiffIndex::over_store(Arc::new(client)), &wl);
        print_results(&format!("netpath (remote {addr})"), &remote);
        write_json(&out_path, "remote", &remote);
        return;
    }

    // In-process baseline: direct function calls into the cluster.
    let dir = TempDir::new("netbench-local").expect("tempdir");
    let cluster = Cluster::new(
        dir.path(),
        ClusterOptions { num_servers: NUM_SERVERS, lsm: durable_lsm() },
    )
    .expect("cluster");
    let local = run_suite(DiffIndex::new(cluster), &wl);

    // Loopback: same stack, every operation crosses a real socket.
    let dir2 = TempDir::new("netbench-loopback").expect("tempdir");
    let cluster2 = Cluster::new(
        dir2.path(),
        ClusterOptions { num_servers: NUM_SERVERS, lsm: durable_lsm() },
    )
    .expect("cluster");
    let serve_di = DiffIndex::new(cluster2);
    let group = ServerGroup::start(&serve_di).expect("server group");
    let client = RemoteClient::connect_default(group.addrs()).expect("connect");
    let remote = run_suite(DiffIndex::over_store(Arc::new(client)), &wl);
    group.shutdown();

    print_results("netpath (in-process baseline)", &local);
    print_results("netpath (loopback sockets)", &remote);
    println!("loopback / in-process throughput ratio:");
    for (l, r) in local.iter().zip(remote.iter()) {
        let ratio = if r.ops_per_sec() > 0.0 { l.ops_per_sec() / r.ops_per_sec() } else { 0.0 };
        println!("  {:<8} {:>5.2}x slower over loopback", l.name, ratio);
    }

    write_json(&out_path, "loopback", &remote);
    write_json(&baseline_path, "in_process", &local);
}

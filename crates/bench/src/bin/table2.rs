//! **Table 2 — I/O cost of Diff-Index schemes.**
//!
//! Reproduces the paper's Table 2 by *measuring*: for each scheme, run one
//! index update (a base put that changes an indexed column) and one index
//! read on the real cluster, snapshot the per-table engine counters around
//! each action, and print the observed `(Base Put, Base Read, Index Put,
//! Index Read)` counts next to the analytic table from
//! `diff_index_core::cost`. The binary exits non-zero on any mismatch.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{read_cost, update_cost, DiffIndex, IndexScheme, IndexSpec};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

struct Row {
    scheme: &'static str,
    action: &'static str,
    base_put: u64,
    base_read: u64,
    index_put: u64,
    index_read: u64,
    asynchronous: bool,
}

fn main() {
    let mut rows = Vec::new();
    let mut failures = 0;

    // no-index baseline.
    {
        let dir = tempdir_lite::TempDir::new("table2").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
        cluster.create_table("item", 2).unwrap();
        let m0 = cluster.table_metrics("item").unwrap();
        cluster.put("item", b"r", &[(b("item_title"), b("v"))]).unwrap();
        let d = cluster.table_metrics("item").unwrap() - m0;
        rows.push(Row {
            scheme: "no-index",
            action: "update",
            base_put: d.puts,
            base_read: d.gets,
            index_put: 0,
            index_read: 0,
            asynchronous: false,
        });
        let expect = update_cost(None);
        failures += check("no-index update", d.puts, d.gets, 0, 0, expect.base_put, expect.base_read, expect.index_put, expect.index_read);
    }

    for scheme in [IndexScheme::SyncFull, IndexScheme::SyncInsert, IndexScheme::AsyncSimple] {
        let dir = tempdir_lite::TempDir::new("table2").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
        cluster.create_table("item", 2).unwrap();
        let di = DiffIndex::new(cluster.clone());
        di.create_index(IndexSpec::single("title", "item", "item_title", scheme), 2).unwrap();
        let idx = di.index("item", "title").unwrap().spec.index_table();

        // Seed so the measured put is an UPDATE (old value exists).
        cluster.put("item", b"r", &[(b("item_title"), b("v1"))]).unwrap();
        di.quiesce("item");

        // --- update action ---------------------------------------------------
        let b0 = cluster.table_metrics("item").unwrap();
        let i0 = cluster.table_metrics(&idx).unwrap();
        cluster.put("item", b"r", &[(b("item_title"), b("v2"))]).unwrap();
        di.quiesce("item"); // let async work complete (counted as "[ ]")
        let db = cluster.table_metrics("item").unwrap() - b0;
        let di_ = cluster.table_metrics(&idx).unwrap() - i0;
        let expect = update_cost(Some(scheme));
        rows.push(Row {
            scheme: scheme.short_name(),
            action: "update",
            base_put: db.puts,
            base_read: db.gets,
            index_put: di_.puts + di_.deletes,
            index_read: di_.scans + di_.gets,
            asynchronous: expect.async_base_read > 0,
        });
        failures += check(
            &format!("{scheme} update"),
            db.puts,
            db.gets,
            di_.puts + di_.deletes,
            di_.scans + di_.gets,
            expect.base_put,
            expect.base_read,
            expect.index_put,
            expect.index_read,
        );

        // --- read action ------------------------------------------------------
        let b0 = cluster.table_metrics("item").unwrap();
        let i0 = cluster.table_metrics(&idx).unwrap();
        let hits = di.get_by_index("item", "title", b"v2", 100).unwrap();
        let k = hits.len() as u32;
        let db = cluster.table_metrics("item").unwrap() - b0;
        let di_ = cluster.table_metrics(&idx).unwrap() - i0;
        let expect = read_cost(scheme, k);
        rows.push(Row {
            scheme: scheme.short_name(),
            action: "read",
            base_put: db.puts,
            base_read: db.gets,
            index_put: di_.puts + di_.deletes,
            index_read: di_.scans + di_.gets,
            asynchronous: false,
        });
        // sync-insert deletes K index rows only when stale; the analytic
        // table counts the worst case, the measurement the actual (0 stale
        // here), so index_put is checked as <=.
        let actual_iput = di_.puts + di_.deletes;
        if db.puts != expect.base_put as u64
            || db.gets != expect.base_read as u64
            || actual_iput > expect.index_put as u64
            || di_.scans != expect.index_read as u64
        {
            eprintln!("MISMATCH {scheme} read: measured ({}, {}, {}, {}) vs Table 2 ({}, {}, ≤{}, {})",
                db.puts, db.gets, actual_iput, di_.scans,
                expect.base_put, expect.base_read, expect.index_put, expect.index_read);
            failures += 1;
        }
    }

    println!("# Table 2: I/O cost of Diff-Index schemes (measured on the real cluster)\n");
    println!(
        "{:<12} {:<8} {:>9} {:>10} {:>10} {:>11}",
        "Scheme", "Action", "Base Put", "Base Read", "Index Put", "Index Read"
    );
    for r in &rows {
        let wrap = |v: u64| {
            if r.asynchronous && r.action == "update" && v > 0 {
                format!("[{v}]")
            } else {
                v.to_string()
            }
        };
        println!(
            "{:<12} {:<8} {:>9} {:>10} {:>10} {:>11}",
            r.scheme,
            r.action,
            r.base_put,
            wrap(r.base_read),
            wrap(r.index_put),
            r.index_read
        );
    }
    println!("\n(\"[n]\" marks operations executed asynchronously by the AUQ, as in the paper.)");
    if failures == 0 {
        println!("\nAll measured counts match the analytic Table 2. ✓");
    } else {
        eprintln!("\n{failures} mismatches against the analytic Table 2");
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn check(
    label: &str,
    bp: u64,
    br: u64,
    ip: u64,
    ir: u64,
    ebp: u32,
    ebr: u32,
    eip: u32,
    eir: u32,
) -> u32 {
    if (bp, br, ip, ir) != (ebp as u64, ebr as u64, eip as u64, eir as u64) {
        eprintln!(
            "MISMATCH {label}: measured ({bp}, {br}, {ip}, {ir}) vs Table 2 ({ebp}, {ebr}, {eip}, {eir})"
        );
        1
    } else {
        0
    }
}

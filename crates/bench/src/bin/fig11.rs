//! **Figure 11 — Time-lag between data and index** (`async-simple`,
//! open-loop transaction rates 600–4000 TPS): the distribution of the
//! index-after-data lag `T2 − T1`. The paper's observations: at modest
//! load (600–2700 TPS) most index entries are updated within 100 ms; at
//! 4000 TPS the system is close to saturation and the index can be up to
//! several hundred seconds late.

use diff_index_sim::{staleness_sweep, SimConfig};

fn main() {
    let cfg = SimConfig::in_house();
    let secs = std::env::var("SIM_SECONDS").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(30);
    let rates = [600.0, 1500.0, 2700.0, 3500.0, 4000.0];
    let pts = staleness_sweep(&cfg, &rates, secs * 1_000_000);
    println!("# Figure 11: index-after-data time lag (async-simple, {secs}s simulated)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "TPS", "p50 ms", "p95 ms", "p99 ms", "max ms", "<=100ms", "backlog"
    );
    for p in &pts {
        println!(
            "{:>6.0} {:>10.1} {:>10.1} {:>10.1} {:>12.0} {:>11.1}% {:>9}",
            p.tps, p.p50_ms, p.p95_ms, p.p99_ms, p.max_ms, p.within_100ms * 100.0, p.backlog
        );
    }
    println!("\nderived claims (paper §8.2):");
    println!(
        "  600-2700 TPS: {:.0}-{:.0}% of index entries updated within 100 ms (paper: \"most ... within 100 ms\")",
        pts[2].within_100ms * 100.0,
        pts[0].within_100ms * 100.0
    );
    println!(
        "  4000 TPS: max lag {:.0} ms and {} tasks backlogged — the AUQ cannot keep up (paper: \"up to several hundred seconds late\")",
        pts[4].max_ms, pts[4].backlog
    );
}

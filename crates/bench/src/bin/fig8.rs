//! **Figure 8 — Read performance** (exact-match `getByIndex`, warmed cache,
//! 1–320 client threads): read latency vs throughput for `full`, `insert`
//! and `async`. The paper's observations: sync-full reads are fast (only
//! the small index table is touched); sync-insert reads are much slower
//! (each hit incurs a base-table double check); async reads match sync-full
//! but without a consistency guarantee.

use diff_index_bench::{render_curves, render_summary};
use diff_index_sim::{read_curves, SimConfig};

fn main() {
    let cfg = SimConfig::in_house();
    let duration = std::env::var("SIM_SECONDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(15)
        * 1_000_000;
    let curves = read_curves(&cfg, duration);
    print!("{}", render_curves("Figure 8: exact-match index read latency vs throughput", &curves));
    println!("{}", render_summary(&curves));
    let by = |l: &str| curves.iter().find(|c| c.label == l).unwrap();
    println!("derived claims (paper §8.2):");
    println!(
        "  sync-insert read ≈ {:.1}x sync-full read  (paper: \"much higher because it involves an additional base table read\")",
        by("insert").low_load_latency_ms() / by("full").low_load_latency_ms()
    );
    println!(
        "  async read ≈ {:.2}x sync-full read       (paper: \"close to sync-full however ... not guaranteed to be consistent\")",
        by("async").low_load_latency_ms() / by("full").low_load_latency_ms()
    );
}

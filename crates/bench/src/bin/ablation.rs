//! **Ablation — the cost of the recovery protocol's design choices.**
//!
//! §5.3 claims: *"This draining-AUQ-before-flush approach will slightly
//! delay flush when the system is under a heavy write load. We show in
//! Section 8 that in practice, this delay is reasonable."* and argues the
//! simplicity of idempotent re-delivery "outweighs the potential excessive
//! (but semantically correct) index update".
//!
//! This binary measures both on the real stack:
//!
//! 1. **Flush delay vs AUQ depth** — wall-clock cost of `flush_table` with
//!    0 / 32 / 128 / 512 pending asynchronous index updates (the pre-flush
//!    hook pauses intake and drains them first).
//! 2. **Re-delivery overhead** — extra index-table operations caused by
//!    recovery re-enqueueing already-delivered work, which LSM semantics
//!    absorb with zero duplicate entries.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use std::time::Instant;
use tempdir_lite::TempDir;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn main() {
    println!("# Ablation 1: drain-AUQ-before-flush delay (paper §5.3)\n");
    println!("{:>12} {:>16} {:>18}", "AUQ depth", "flush wall time", "per pending task");
    for depth in [0usize, 32, 128, 512] {
        let dir = TempDir::new("ablation").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
        cluster.create_table("item", 2).unwrap();
        let di = DiffIndex::new(cluster.clone());
        let handle = di
            .create_index(IndexSpec::single("t", "item", "item_title", IndexScheme::AsyncSimple), 2)
            .unwrap();

        // Build up a backlog by pausing the APS's view: we enqueue faster
        // than it drains by writing a burst, then immediately flushing.
        for i in 0..depth {
            cluster
                .put("item", format!("r{i:04}").as_bytes(), &[(b("item_title"), b("v"))])
                .unwrap();
        }
        let queued = handle.auq().depth();
        let t0 = Instant::now();
        cluster.flush_table("item").unwrap(); // pre_flush: pause + drain
        let took = t0.elapsed();
        let per = if queued > 0 { took / queued as u32 } else { std::time::Duration::ZERO };
        println!("{:>12} {:>16?} {:>18?}", queued, took, per);
        assert_eq!(handle.auq().depth(), 0, "flush must leave the AUQ empty (PR(Flushed) = ∅)");
    }

    println!("\n# Ablation 2: idempotent re-delivery overhead (paper §5.3)\n");
    let dir = TempDir::new("ablation2").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 2, ..Default::default() }).unwrap();
    cluster.create_table("item", 4).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let handle = di
        .create_index(IndexSpec::single("t", "item", "item_title", IndexScheme::AsyncSimple), 4)
        .unwrap();
    const ROWS: usize = 200;
    for i in 0..ROWS {
        // Spread rows over the whole key space so every region holds some.
        let row = format!("{}row{i:04}", char::from((i * 37 % 250 + 1) as u8));
        cluster.put("item", row.as_bytes(), &[(b("item_title"), b("v"))]).unwrap();
    }
    di.quiesce("item"); // everything delivered once
    let idx = di.index("item", "t").unwrap().spec.index_table();
    let before = cluster.table_metrics(&idx).unwrap();
    let enq_before = handle.auq().metrics().enqueued.load(std::sync::atomic::Ordering::Relaxed);

    cluster.crash_server(0);
    cluster.recover().unwrap();
    di.quiesce("item"); // re-deliveries execute

    let after = cluster.table_metrics(&idx).unwrap();
    let enq_after = handle.auq().metrics().enqueued.load(std::sync::atomic::Ordering::Relaxed);
    let redelivered = enq_after - enq_before;
    let extra_index_puts = (after - before).puts;
    let entries = di.get_by_index("item", "t", b"v", 10_000).unwrap().len();
    println!("rows: {ROWS}");
    println!("index-update tasks re-enqueued by recovery: {redelivered}");
    println!("extra (idempotent) index puts executed:     {extra_index_puts}");
    println!("index entries after recovery:               {entries} (no duplicates)");
    assert_eq!(entries, ROWS);
    println!(
        "\nconclusion: re-delivery costs {} redundant index writes but zero duplicate\n\
         entries and zero extra logging machinery — the paper's trade (§5.3: the\n\
         simplicity \"outweighs the potential excessive (but semantically correct)\n\
         index update\").",
        extra_index_puts
    );
}

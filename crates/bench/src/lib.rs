//! # diff-index-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§8). One binary per exhibit:
//!
//! | binary  | paper exhibit | what it does |
//! |---------|---------------|--------------|
//! | `table1`| Table 1       | LSM vs B+Tree operational comparison on the real engines |
//! | `table2`| Table 2       | measures per-scheme I/O counts on the real cluster and asserts they equal the analytic table |
//! | `fig7`  | Figure 7      | update latency vs throughput, 8-server simulation |
//! | `fig8`  | Figure 8      | exact-match index-read latency vs throughput |
//! | `fig9`  | Figure 9      | range-query latency vs selectivity |
//! | `fig10` | Figure 10     | update curves on the 40-VM cloud model, scale-out analysis |
//! | `fig11` | Figure 11     | index staleness (time lag) distribution vs transaction rate |
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the raw engine
//! asymmetry, per-scheme update cost and index-read cost on the real stack.

#![warn(missing_docs)]

use diff_index_sim::Curve;

/// Render a set of latency/throughput curves as an aligned text table,
/// one row per (scheme, client-count) point — the textual equivalent of the
/// paper's scatter plots.
pub fn render_curves(title: &str, curves: &[Curve]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<8} {:>8} {:>12} {:>12} {:>12}\n",
        "scheme", "clients", "TPS", "mean ms", "p95 ms"
    ));
    for c in curves {
        for p in &c.points {
            out.push_str(&format!(
                "{:<8} {:>8} {:>12.0} {:>12.2} {:>12.2}\n",
                c.label, p.clients, p.tps, p.mean_ms, p.p95_ms
            ));
        }
        out.push('\n');
    }
    out
}

/// Summarize per-curve saturation and low-load latency.
pub fn render_summary(curves: &[Curve]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>16} {:>20}\n",
        "scheme", "low-load ms", "saturation TPS"
    ));
    for c in curves {
        out.push_str(&format!(
            "{:<8} {:>16.2} {:>20.0}\n",
            c.label,
            c.low_load_latency_ms(),
            c.saturation_tps()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diff_index_sim::CurvePoint;

    fn curve() -> Curve {
        Curve {
            label: "full",
            points: vec![CurvePoint { clients: 1, tps: 100.0, mean_ms: 10.0, p95_ms: 12.0 }],
        }
    }

    #[test]
    fn render_contains_data() {
        let s = render_curves("Figure 7", &[curve()]);
        assert!(s.contains("Figure 7"));
        assert!(s.contains("full"));
        assert!(s.contains("100"));
        let s = render_summary(&[curve()]);
        assert!(s.contains("full"));
    }
}

//! Criterion micro-benchmark for the durable write path: what batching
//! buys when every commit must reach the disk (`wal_sync = true`). A
//! single put pays one WAL record + one fsync; `put_batch` pays one WAL
//! record + one fsync for the whole batch, so throughput should scale
//! nearly linearly with batch size until payload bytes dominate.
//!
//! The wall-clock harness (`--bin writepath`) covers the multi-threaded
//! group-commit and indexed-put cases; this bench isolates the per-call
//! batching effect with criterion's statistics.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_lsm::LsmOptions;
use tempdir_lite::TempDir;

fn durable_cluster() -> (TempDir, Cluster) {
    let dir = TempDir::new("bench-writepath").unwrap();
    let lsm = LsmOptions {
        wal_sync: true,
        memtable_flush_bytes: 32 * 1024 * 1024,
        auto_compact: false,
        compaction_trigger: 0,
        ..LsmOptions::default()
    };
    let cluster = Cluster::new(dir.path(), ClusterOptions { num_servers: 1, lsm }).unwrap();
    cluster.create_table("t", 4).unwrap();
    (dir, cluster)
}

fn row(i: u64) -> Bytes {
    Bytes::from(format!("row{i:08}"))
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_path_durable");
    group.sample_size(20);

    {
        let (_dir, cluster) = durable_cluster();
        let mut i = 0u64;
        group.bench_function("single_put", |b| {
            b.iter(|| {
                i += 1;
                cluster
                    .put("t", &row(i), &[(Bytes::from_static(b"c"), Bytes::from(format!("v{i}")))])
                    .unwrap();
            })
        });
    }

    for batch in [16usize, 64, 256] {
        let (_dir, cluster) = durable_cluster();
        // Per-iteration time covers the whole batch; divide by `batch` for
        // the per-row cost.
        let mut i = 0u64;
        group.bench_function(format!("batched_put_{batch}"), |b| {
            b.iter(|| {
                let rows: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = (0..batch as u64)
                    .map(|k| {
                        (
                            row(i * batch as u64 + k),
                            vec![(Bytes::from_static(b"c"), Bytes::from(format!("v{i}")))],
                        )
                    })
                    .collect();
                i += 1;
                cluster.put_batch("t", &rows).unwrap();
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_write_path);
criterion_main!(benches);

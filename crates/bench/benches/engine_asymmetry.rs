//! Criterion micro-benchmark behind Table 1: the raw read/write asymmetry
//! of the LSM engine versus the B+Tree baseline, on real files.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use diff_index_btree::BTree;
use diff_index_lsm::{LsmOptions, LsmTree};
use std::hint::black_box;
use tempdir_lite::TempDir;

const PRELOAD: u64 = 20_000;

fn key(i: u64) -> String {
    format!("user{:012}", i.wrapping_mul(0x9E3779B97F4A7C15) % 1_000_000_000_000)
}

fn lsm_engine(dir: &TempDir) -> LsmTree {
    let lsm = LsmTree::open(
        dir.path().join("lsm"),
        LsmOptions { memtable_flush_bytes: 1 << 20, ..LsmOptions::default() },
    )
    .unwrap();
    for i in 0..PRELOAD {
        lsm.put(key(i), 1000 + i, format!("value-{i}")).unwrap();
    }
    lsm.flush().unwrap();
    lsm
}

fn btree_engine(dir: &TempDir) -> BTree {
    let bt = BTree::open(dir.path().join("bt.db"), 512).unwrap();
    for i in 0..PRELOAD {
        bt.insert(key(i).as_bytes(), format!("value-{i}").as_bytes()).unwrap();
    }
    bt.sync().unwrap();
    bt
}

fn bench_writes(c: &mut Criterion) {
    let dir = TempDir::new("bench-asym").unwrap();
    let lsm = lsm_engine(&dir);
    let bt = btree_engine(&dir);
    let mut group = c.benchmark_group("table1_write");
    group.sample_size(20);
    let mut i = PRELOAD;
    group.bench_function("lsm_put_append_only", |b| {
        b.iter(|| {
            i += 1;
            lsm.put(key(i % PRELOAD), 1_000_000 + i, "updated").unwrap();
        })
    });
    let mut j = PRELOAD;
    group.bench_function("btree_update_in_place", |b| {
        b.iter(|| {
            j += 1;
            bt.insert(key(j % PRELOAD).as_bytes(), b"updated").unwrap();
        })
    });
    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let dir = TempDir::new("bench-asym").unwrap();
    let lsm = lsm_engine(&dir);
    let bt = btree_engine(&dir);
    let mut group = c.benchmark_group("table1_read");
    group.sample_size(20);
    let mut i = 0u64;
    group.bench_function("lsm_get", |b| {
        b.iter(|| {
            i = i.wrapping_add(7919);
            black_box(lsm.get_latest(key(i % PRELOAD).as_bytes()).unwrap());
        })
    });
    let mut j = 0u64;
    group.bench_function("btree_get", |b| {
        b.iter(|| {
            j = j.wrapping_add(7919);
            black_box(bt.get(key(j % PRELOAD).as_bytes()).unwrap());
        })
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let dir = TempDir::new("bench-asym").unwrap();
    let lsm = lsm_engine(&dir);
    let mut group = c.benchmark_group("table1_scan");
    group.sample_size(20);
    group.bench_function("lsm_scan_100", |b| {
        b.iter_batched(
            || (),
            |_| black_box(lsm.scan(b"user", None, u64::MAX, 100).unwrap()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_writes, bench_reads, bench_scan);
criterion_main!(benches);

//! Criterion micro-benchmark behind Figure 7's low-load regime: the cost
//! of one index-maintaining update per scheme, on the real cluster stack
//! (real WAL, memtables, coprocessors). The expected ordering is
//! `null < async ≈ null < insert < full`, i.e. Equations 1–2 of the paper.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use tempdir_lite::TempDir;

fn setup(scheme: Option<IndexScheme>) -> (TempDir, Cluster, Option<DiffIndex>) {
    let dir = TempDir::new("bench-scheme").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = scheme.map(|s| {
        let di = DiffIndex::new(cluster.clone());
        di.create_index(IndexSpec::single("title", "item", "item_title", s), 2).unwrap();
        di
    });
    // Seed rows so every benched put is an update with an old index entry.
    for i in 0..1000u64 {
        cluster
            .put(
                "item",
                format!("item{i:04}").as_bytes(),
                &[(Bytes::from_static(b"item_title"), Bytes::from(format!("seed{i}")))],
            )
            .unwrap();
    }
    if let Some(di) = &di {
        di.quiesce("item");
    }
    (dir, cluster, di)
}

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_low_load_update");
    group.sample_size(30);
    let cases: [(&str, Option<IndexScheme>); 4] = [
        ("null", None),
        ("sync_insert", Some(IndexScheme::SyncInsert)),
        ("async_simple", Some(IndexScheme::AsyncSimple)),
        ("sync_full", Some(IndexScheme::SyncFull)),
    ];
    for (name, scheme) in cases {
        let (_dir, cluster, _di) = setup(scheme);
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                i += 1;
                cluster
                    .put(
                        "item",
                        format!("item{:04}", i % 1000).as_bytes(),
                        &[(
                            Bytes::from_static(b"item_title"),
                            Bytes::from(format!("v{i}")),
                        )],
                    )
                    .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);

//! Criterion micro-benchmark behind Figures 8/9: `getByIndex` cost per
//! scheme on the real stack. sync-full and async read only the index table;
//! sync-insert pays K base-table double checks (and more as the result set
//! grows).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use std::hint::black_box;
use tempdir_lite::TempDir;

/// Rows per distinct title (the K of Table 2).
const K: u64 = 10;
const TITLES: u64 = 50;

fn setup(scheme: IndexScheme) -> (TempDir, DiffIndex) {
    let dir = TempDir::new("bench-read").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("title", "item", "item_title", scheme), 2).unwrap();
    di.create_index(IndexSpec::single("price", "item", "item_price", scheme), 2).unwrap();
    for i in 0..TITLES * K {
        cluster
            .put(
                "item",
                format!("item{i:05}").as_bytes(),
                &[
                    (Bytes::from_static(b"item_title"), Bytes::from(format!("title{:03}", i % TITLES))),
                    (Bytes::from_static(b"item_price"), Bytes::from(format!("{:06}", i * 7 % 10_000))),
                ],
            )
            .unwrap();
    }
    di.quiesce("item");
    // Warm the block cache, as the paper does before read experiments.
    for t in 0..TITLES {
        let _ = di.get_by_index("item", "title", format!("title{t:03}").as_bytes(), 100);
    }
    (dir, di)
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_exact_match_read");
    group.sample_size(30);
    for scheme in [IndexScheme::SyncFull, IndexScheme::SyncInsert, IndexScheme::AsyncSimple] {
        let (_dir, di) = setup(scheme);
        let mut t = 0u64;
        group.bench_function(scheme.short_name(), |b| {
            b.iter(|| {
                t += 1;
                black_box(
                    di.get_by_index("item", "title", format!("title{:03}", t % TITLES).as_bytes(), 100)
                        .unwrap(),
                );
            })
        });
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_range_read");
    group.sample_size(20);
    for scheme in [IndexScheme::SyncFull, IndexScheme::SyncInsert] {
        let (_dir, di) = setup(scheme);
        group.bench_function(format!("{}_range", scheme.short_name()), |b| {
            b.iter(|| {
                black_box(
                    di.range_by_index("item", "price", b"000000", b"005000", true, 10_000)
                        .unwrap(),
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_range);
criterion_main!(benches);

//! Criterion micro-benchmarks of the snapshot read path, layer by layer:
//! snapshot acquisition, memtable probe, single-table probe (warm cache),
//! raw block binary search, and the full engine `get`. Together they show
//! where a warm point read spends its time and prove the lock-free rebuild
//! pays off end to end.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use diff_index_lsm::{Block, BlockCache, Cell, LsmOptions, LsmTree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use tempdir_lite::TempDir;

const KEYS: u64 = 50_000;
const TABLES: u64 = 5;

fn key(id: u64) -> Bytes {
    Bytes::from(format!("user{id:08}"))
}

/// Same shape as the hotpath harness: TABLES tables of contiguous key
/// ranges plus a live memtable holding fresher versions of 20% of keys.
fn build_tree(dir: &TempDir) -> LsmTree {
    let opts = LsmOptions {
        block_cache: Some(Arc::new(BlockCache::new(256 * 1024 * 1024))),
        auto_flush: false,
        auto_compact: false,
        compaction_trigger: 0,
        ..LsmOptions::default()
    };
    let tree = LsmTree::open(dir.path().join("db"), opts).unwrap();
    let per_table = KEYS / TABLES;
    for id in 0..KEYS {
        tree.put(key(id), id + 1, vec![b'v'; 100]).unwrap();
        if id % per_table == per_table - 1 && id != KEYS - 1 {
            tree.flush().unwrap();
        }
    }
    tree.flush().unwrap();
    for id in (0..KEYS).step_by(5) {
        tree.put(key(id), KEYS + id + 1, vec![b'w'; 100]).unwrap();
    }
    // Warm the block cache.
    for id in 0..KEYS {
        tree.get_latest(&key(id)).unwrap();
    }
    tree
}

fn bench_read_path(c: &mut Criterion) {
    let dir = TempDir::new("bench-read-path").unwrap();
    let tree = build_tree(&dir);
    let mut rng = StdRng::seed_from_u64(0xBE7C);

    let mut g = c.benchmark_group("read_path");

    // Full engine get at snapshot ∞ — the headline number.
    g.bench_function("engine_get_warm", |b| {
        b.iter_batched(
            || key(rng.random_range(0..KEYS)),
            |k| black_box(tree.get_latest(&k).unwrap()),
            BatchSize::SmallInput,
        )
    });

    // Engine get of a key living only in the memtable (fresh version):
    // never touches a table, isolating snapshot + memtable cost.
    g.bench_function("engine_get_memtable_hit", |b| {
        b.iter_batched(
            || key(rng.random_range(0..KEYS / 5) * 5),
            |k| black_box(tree.get_latest(&k).unwrap()),
            BatchSize::SmallInput,
        )
    });

    // Snapshot scan of 100 rows.
    g.bench_function("engine_scan_100", |b| {
        b.iter_batched(
            || key(rng.random_range(0..KEYS - 200)),
            |k| black_box(tree.scan(&k, None, u64::MAX, 100).unwrap()),
            BatchSize::SmallInput,
        )
    });

    // Raw block binary search + zero-copy materialization, no engine at all.
    let cells: Vec<Cell> = (0..64)
        .map(|i| Cell::put(format!("blk{i:04}"), i + 1, vec![b'x'; 100]))
        .collect();
    let block = Block::from_cells(&cells);
    g.bench_function("block_seek_and_cell", |b| {
        b.iter_batched(
            || format!("blk{:04}", rng.random_range(0..64u64)).into_bytes(),
            |k| {
                let pos = block.seek(&k, u64::MAX, diff_index_lsm::CellKind::Delete);
                black_box(block.cell(pos))
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_read_path);
criterion_main!(benches);

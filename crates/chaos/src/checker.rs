//! Consistency checkers: turn a recorded [`History`] plus the final store
//! state into a verdict.
//!
//! The model is deliberately simple because the harness issues operations
//! from a single thread and region timestamp oracles are monotonic (and
//! advanced past replayed state on recovery): for each cell, the legal
//! final values are exactly
//!
//! > { value of the last **acked** write } ∪ { value of every **ambiguous**
//! > write issued after it }
//!
//! An acked write must never be lost (it was durable before the ack); an
//! ambiguous write — one whose client saw an error — may or may not have
//! been applied, and if several applied, the latest-issued one wins.

use bytes::Bytes;
use diff_index_core::{
    verify_index, DiffIndex, History, IndexScheme, IndexSpec, Store, WriteKind, WriteOutcome,
};
use std::collections::BTreeMap;

/// One consistency violation found by a checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which checker fired.
    pub check: &'static str,
    /// Human-readable description of what diverged.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// The legal final contents of one cell: `None` = absent (deleted or never
/// written), `Some(v)` = value `v`.
pub type AllowedValues = Vec<Option<Bytes>>;

/// Fold the history into the per-row set of allowed final values for
/// `column` of `table`.
pub fn allowed_final_values(
    history: &History,
    table: &str,
    column: &[u8],
) -> BTreeMap<Bytes, AllowedValues> {
    struct Cell {
        last_acked: Option<Option<Bytes>>,
        ambiguous: Vec<Option<Bytes>>,
    }
    let mut cells: BTreeMap<Bytes, Cell> = BTreeMap::new();
    for rec in history.snapshot() {
        if rec.table != table {
            continue;
        }
        let written: Option<Option<Bytes>> = match &rec.kind {
            WriteKind::Put { columns } => {
                columns.iter().find(|(c, _)| c.as_ref() == column).map(|(_, v)| Some(v.clone()))
            }
            WriteKind::Delete { columns } => {
                columns.iter().find(|c| c.as_ref() == column).map(|_| None)
            }
        };
        let Some(value) = written else { continue };
        let cell = cells
            .entry(rec.row.clone())
            .or_insert(Cell { last_acked: None, ambiguous: Vec::new() });
        match &rec.outcome {
            WriteOutcome::Acked { .. } => {
                cell.last_acked = Some(value);
                cell.ambiguous.clear();
            }
            WriteOutcome::Ambiguous { .. } => cell.ambiguous.push(value),
        }
    }
    cells
        .into_iter()
        .map(|(row, cell)| {
            // No acked write ⇒ the initial state (absent) is also legal.
            let mut allowed = vec![cell.last_acked.unwrap_or(None)];
            for v in cell.ambiguous {
                if !allowed.contains(&v) {
                    allowed.push(v);
                }
            }
            (row, allowed)
        })
        .collect()
}

fn fmt_val(v: &Option<Bytes>) -> String {
    match v {
        Some(b) => String::from_utf8_lossy(b).into_owned(),
        None => "<absent>".into(),
    }
}

/// **No lost acked writes**: the final value of every cell must be one the
/// history allows, and no row the history never wrote may exist.
pub fn check_final_state(
    store: &dyn Store,
    history: &History,
    table: &str,
    column: &[u8],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let model = allowed_final_values(history, table, column);
    for (row, allowed) in &model {
        let actual = match store.get(table, row, column, u64::MAX) {
            Ok(v) => v.map(|vv| vv.value),
            Err(e) => {
                violations.push(Violation {
                    check: "final-state",
                    detail: format!("read of row {:?} failed after quiesce: {e}", row),
                });
                continue;
            }
        };
        if !allowed.contains(&actual) {
            violations.push(Violation {
                check: "final-state",
                detail: format!(
                    "row {:?}: final value {} not in allowed set {{{}}} (lost acked write?)",
                    row,
                    fmt_val(&actual),
                    allowed.iter().map(fmt_val).collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }
    match store.scan_rows(table, b"", None, u64::MAX, usize::MAX) {
        Ok(rows) => {
            for (row, cols) in rows {
                if cols.iter().any(|(c, _)| c.as_ref() == column) && !model.contains_key(&row) {
                    violations.push(Violation {
                        check: "final-state",
                        detail: format!("phantom row {:?}: present but never written", row),
                    });
                }
            }
        }
        Err(e) => violations.push(Violation {
            check: "final-state",
            detail: format!("base scan failed after quiesce: {e}"),
        }),
    }
    violations
}

/// **Index/base agreement after quiesce** via [`verify_index`]: missing
/// entries are a violation for every scheme; stale entries for every scheme
/// except `sync-insert`, which leaves them by design (read-repair and
/// `cleanse_index` remove them lazily, §4.2).
pub fn check_index_agreement(
    store: &dyn Store,
    spec: &IndexSpec,
    scheme: IndexScheme,
) -> Vec<Violation> {
    let report = match verify_index(store, spec) {
        Ok(r) => r,
        Err(e) => {
            return vec![Violation {
                check: "verify-index",
                detail: format!("verify_index failed: {e}"),
            }]
        }
    };
    let mut violations = Vec::new();
    if report.missing_count() > 0 {
        violations.push(Violation {
            check: "verify-index",
            detail: format!(
                "{} base row(s) missing from the index after quiesce: {:?}",
                report.missing_count(),
                report.divergences
            ),
        });
    }
    if report.stale_count() > 0 && scheme != IndexScheme::SyncInsert {
        violations.push(Violation {
            check: "verify-index",
            detail: format!(
                "{} stale index entr(ies) after quiesce under {:?}: {:?}",
                report.stale_count(),
                scheme,
                report.divergences
            ),
        });
    }
    violations
}

/// **Convergence**: after quiesce, exact-match `getByIndex` agrees with the
/// base table for every value of the alphabet, under every scheme
/// (`sync-insert` converges through read-repair at this point).
pub fn check_read_agreement(
    di: &DiffIndex,
    store: &dyn Store,
    base_table: &str,
    index_name: &str,
    column: &[u8],
    values: &[Bytes],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let rows = match store.scan_rows(base_table, b"", None, u64::MAX, usize::MAX) {
        Ok(r) => r,
        Err(e) => {
            return vec![Violation {
                check: "read-agreement",
                detail: format!("base scan failed: {e}"),
            }]
        }
    };
    let mut by_value: BTreeMap<Bytes, Vec<Bytes>> = BTreeMap::new();
    for (row, cols) in rows {
        if let Some((_, v)) = cols.iter().find(|(c, _)| c.as_ref() == column) {
            by_value.entry(v.value.clone()).or_default().push(row);
        }
    }
    for value in values {
        let mut expected = by_value.get(value).cloned().unwrap_or_default();
        expected.sort();
        let mut actual: Vec<Bytes> = match di.get_by_index(base_table, index_name, value, usize::MAX)
        {
            Ok(hits) => hits.into_iter().map(|h| h.row).collect(),
            Err(e) => {
                violations.push(Violation {
                    check: "read-agreement",
                    detail: format!("get_by_index({:?}) failed after quiesce: {e}", value),
                });
                continue;
            }
        };
        actual.sort();
        actual.dedup();
        if expected != actual {
            violations.push(Violation {
                check: "read-agreement",
                detail: format!(
                    "value {:?}: index returned {:?}, base holds {:?}",
                    value, actual, expected
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use diff_index_core::History;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn model_tracks_acked_and_ambiguous() {
        let h = History::new();
        let put = |v: &str| WriteKind::Put { columns: vec![(b("c"), b(v))] };
        h.record("t", b"r1", put("v1"), WriteOutcome::Acked { ts: 10 });
        h.record("t", b"r1", put("v2"), WriteOutcome::Ambiguous { error: "boom".into() });
        h.record("t", b"r2", put("v3"), WriteOutcome::Ambiguous { error: "boom".into() });
        h.record("t", b"r3", WriteKind::Delete { columns: vec![b("c")] }, WriteOutcome::Acked {
            ts: 11,
        });
        let model = allowed_final_values(&h, "t", b"c");
        assert_eq!(model[&b("r1")], vec![Some(b("v1")), Some(b("v2"))]);
        // Never acked: initial absence is also legal.
        assert_eq!(model[&b("r2")], vec![None, Some(b("v3"))]);
        assert_eq!(model[&b("r3")], vec![None]);
    }

    #[test]
    fn ack_clears_prior_ambiguity() {
        let h = History::new();
        let put = |v: &str| WriteKind::Put { columns: vec![(b("c"), b(v))] };
        h.record("t", b"r", put("v1"), WriteOutcome::Ambiguous { error: "e".into() });
        h.record("t", b"r", put("v2"), WriteOutcome::Acked { ts: 5 });
        let model = allowed_final_values(&h, "t", b"c");
        // v1 cannot be final: v2 was applied after it with a later ts.
        assert_eq!(model[&b("r")], vec![Some(b("v2"))]);
    }

    #[test]
    fn other_tables_and_columns_ignored() {
        let h = History::new();
        h.record(
            "other",
            b"r",
            WriteKind::Put { columns: vec![(b("c"), b("x"))] },
            WriteOutcome::Acked { ts: 1 },
        );
        h.record(
            "t",
            b"r",
            WriteKind::Put { columns: vec![(b("d"), b("y"))] },
            WriteOutcome::Acked { ts: 2 },
        );
        assert!(allowed_final_values(&h, "t", b"c").is_empty());
    }
}

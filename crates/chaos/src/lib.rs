//! # chaos
//!
//! A seeded, deterministic chaos harness for the Diff-Index stack.
//!
//! One **seed** fully determines one scenario: a randomized client workload
//! (puts, deletes, batched puts, index reads, session reads) against a
//! multi-region cluster — driven in-process or over the `net` loopback
//! stack — interleaved with a fault schedule derived from the same seed:
//! region-server crashes mid-put, WAL-fsync and WAL-append failures,
//! connection kills between request and ack, dropped responses, outright
//! server crashes, zombie resurrections, flush/compaction races, and AUQ
//! worker stalls.
//!
//! Nobody schedules a recovery: the runner ticks a master-side
//! [`diff_index_cluster::HealthMonitor`] once per step (probing over real
//! TCP in net mode), so crashed servers are declared dead and healed —
//! regions reassigned under bumped fencing epochs, WALs replayed, the
//! process restarted — exactly as a production master would do it, and the
//! client's partition map goes stale in net mode as a side effect. A
//! resurrected zombie still holding its crash-time region view must have
//! its writes fenced (`StaleEpoch`); with fencing sabotaged
//! ([`diff_index_cluster::set_disable_fencing`]) its lost acked write must
//! be caught by the checkers.
//!
//! Every client write is recorded into a
//! [`diff_index_core::History`]; after the scenario quiesces, per-scheme
//! checkers validate (see [`checker`]):
//!
//! * **no lost acked writes, ever** — the final base state of every cell
//!   must be a value the history allows;
//! * **index/base agreement after quiesce** — `verify_index` must report
//!   zero missing entries for every scheme, and zero stale entries for
//!   every scheme except `sync-insert` (which leaves stale entries by
//!   design and cleans them at read time);
//! * **read-your-writes within a session** (`async-session`), and inline
//!   exact-match reads on fault-free seeds (`sync-full`, `sync-insert`);
//! * **bounded-staleness convergence** — after the AUQ drains, exact-match
//!   index reads agree with the base for every value in the alphabet, and
//!   no AUQ task was dropped.
//!
//! A violation is reproducible by re-running its single failing seed:
//! `cargo run -p chaos -- --seed N --scheme S [--net]`.

pub mod checker;
pub mod rng;
pub mod runner;
pub mod schedule;

pub use checker::Violation;
pub use rng::SplitMix64;
pub use runner::{run_seed, RunOptions, RunOutcome};
pub use schedule::{generate, Fault, Mode, Schedule, Step, StepOp, HEAL_STEPS};

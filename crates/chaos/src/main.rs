//! Chaos harness CLI.
//!
//! ```text
//! cargo run -p chaos -- --seeds 500                 # 500 seeds × 4 schemes
//! cargo run -p chaos -- --seed 1234 --scheme full   # replay one scenario
//! cargo run -p chaos -- --seeds 200 --net           # force network mode
//! cargo run -p chaos -- --seeds 50 --violate-delta  # sabotage §4.3; must FAIL
//! cargo run -p chaos -- --seeds 50 --violate-fencing # disable epoch fence; must FAIL
//! ```
//!
//! Exit status 0 = every scenario passed; 1 = at least one violation (each
//! printed with the exact command that reproduces it).

use chaos::{run_seed, Mode, RunOptions, RunOutcome};
use diff_index_core::IndexScheme;
use std::io::Write;

struct Cli {
    seeds: u64,
    start: u64,
    schemes: Vec<IndexScheme>,
    force_mode: Option<Mode>,
    violate_delta: bool,
    violate_fencing: bool,
    verbose: bool,
    artifact_dir: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seeds N] [--seed S | --start S0] [--scheme full|insert|async|session|all]\n\
         \x20            [--net | --in-process] [--violate-delta] [--violate-fencing]\n\
         \x20            [--verbose] [--artifact-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        seeds: 100,
        start: 0,
        schemes: IndexScheme::all().to_vec(),
        force_mode: None,
        violate_delta: false,
        violate_fencing: false,
        verbose: false,
        artifact_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--seeds" => cli.seeds = value("--seeds").parse().unwrap_or_else(|_| usage()),
            "--seed" => {
                cli.start = value("--seed").parse().unwrap_or_else(|_| usage());
                cli.seeds = 1;
            }
            "--start" => cli.start = value("--start").parse().unwrap_or_else(|_| usage()),
            "--scheme" => {
                let v = value("--scheme");
                cli.schemes = match v.as_str() {
                    "all" => IndexScheme::all().to_vec(),
                    other => match IndexScheme::all().iter().find(|s| s.short_name() == other) {
                        Some(s) => vec![*s],
                        None => usage(),
                    },
                };
            }
            "--net" => cli.force_mode = Some(Mode::Net),
            "--in-process" => cli.force_mode = Some(Mode::InProcess),
            "--violate-delta" => cli.violate_delta = true,
            "--violate-fencing" => cli.violate_fencing = true,
            "--verbose" => cli.verbose = true,
            "--artifact-dir" => cli.artifact_dir = Some(value("--artifact-dir")),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cli
}

fn report_failure(outcome: &RunOutcome, artifact_dir: Option<&str>) {
    eprintln!(
        "\nFAIL seed={} scheme={} mode={:?} wal_sync={} ({} ops, {} faults)",
        outcome.seed,
        outcome.scheme.short_name(),
        outcome.mode,
        outcome.wal_sync,
        outcome.ops,
        outcome.faults
    );
    for v in &outcome.violations {
        eprintln!("  {v}");
    }
    eprintln!("  history tail ({} most recent writes):", outcome.history_tail.len());
    for rec in &outcome.history_tail {
        eprintln!("    {rec:?}");
    }
    eprintln!("  reproduce with: {}", outcome.repro_command());
    if let Some(dir) = artifact_dir {
        let _ = std::fs::create_dir_all(dir);
        let path =
            format!("{dir}/seed-{}-{}.txt", outcome.seed, outcome.scheme.short_name());
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(
                f,
                "seed: {}\nscheme: {}\nmode: {:?}\nwal_sync: {}\nrepro: {}\n",
                outcome.seed,
                outcome.scheme.short_name(),
                outcome.mode,
                outcome.wal_sync,
                outcome.repro_command()
            );
            for v in &outcome.violations {
                let _ = writeln!(f, "violation: {v}");
            }
            let _ = writeln!(f, "\nhistory tail:");
            for rec in &outcome.history_tail {
                let _ = writeln!(f, "  {rec:?}");
            }
            eprintln!("  artifact written to {path}");
        }
    }
}

fn main() {
    let cli = parse_args();
    if cli.violate_delta {
        eprintln!("sabotage: §4.3 old-entry timestamp rule DISABLED (expect violations)");
        diff_index_core::set_violate_delta(true);
    }
    if cli.violate_fencing {
        eprintln!("sabotage: epoch fencing DISABLED — zombies ack lost writes (expect violations)");
        diff_index_cluster::set_disable_fencing(true);
    }
    let opts = RunOptions { force_mode: cli.force_mode, verbose: cli.verbose };
    let mut passed = 0u64;
    let mut failed = 0u64;
    let t0 = std::time::Instant::now();
    for seed in cli.start..cli.start + cli.seeds {
        for &scheme in &cli.schemes {
            if cli.verbose {
                eprintln!("seed {seed} scheme {}", scheme.short_name());
            }
            let outcome = run_seed(seed, scheme, &opts);
            if outcome.passed() {
                passed += 1;
            } else {
                failed += 1;
                report_failure(&outcome, cli.artifact_dir.as_deref());
            }
        }
        let done = seed - cli.start + 1;
        if done.is_multiple_of(50) {
            eprintln!(
                "… {done}/{} seeds ({passed} pass, {failed} fail, {:.1}s)",
                cli.seeds,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "chaos: {} scenarios ({} seeds × {} schemes): {passed} passed, {failed} failed in {:.1}s",
        passed + failed,
        cli.seeds,
        cli.schemes.len(),
        t0.elapsed().as_secs_f64()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

//! Scenario execution: build the environment a schedule asks for, drive
//! its steps, then repair, quiesce, and check.
//!
//! ## Self-healing
//!
//! Nothing in a schedule recovers a crashed server explicitly. The runner
//! owns a master-side [`HealthMonitor`] and ticks it once after every step
//! (in net mode probing over real TCP via `Ping`), so a `CrashServer`
//! fault is detected (`Healthy → Suspect → Dead`), its regions recovered
//! with bumped fencing epochs, and the server process restarted — all
//! within [`schedule::HEAL_STEPS`] steps, exactly as a production master
//! would do it. A `ResurrectZombie` fault then replays the classic
//! split-brain hazard: the healed server still holds its crash-time region
//! view, and only the epoch fence keeps its ack from becoming a lost
//! write.
//!
//! ## End-of-run phases (order matters)
//!
//! 1. **Un-wedge**: resume stalled AUQ workers, disarm every injector,
//!    clear pending response-drops — no armed fault may leak into
//!    verification.
//! 2. **Repair** (faulty schedules only): crash + recover every server in
//!    turn. WAL replay re-applies staged writes and re-enqueues index
//!    maintenance for every replayed base op (§5.3) — this is the
//!    mechanism that closes the window a crash-mid-put or failed fsync
//!    opened (a `CrashNextPut` landing on the final step has not had a
//!    monitor tick to heal it yet). This is exactly why the schedule
//!    generator suppresses `Flush` while dirty: flushing would truncate
//!    the WAL evidence this phase replays.
//! 3. **Quiesce**: drain every AUQ.
//! 4. **Check**: no lost acked writes, index/base agreement, read
//!    agreement for the whole value alphabet, and zero dropped AUQ tasks.

use crate::checker::{self, Violation};
use crate::schedule::{
    self, Fault, Mode, Schedule, Step, StepOp, BASE_REGIONS, INDEX_REGIONS, NUM_SERVERS,
    NUM_VALUES,
};
use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions, HealthMonitor, HealthOptions};
use diff_index_core::{
    DiffIndex, IndexScheme, IndexSpec, RecordingStore, Session, Store, WriteKind, WriteOutcome,
    WriteRecord,
};
use diff_index_net::{RemoteClient, ServerGroup};
use std::collections::HashMap;
use std::sync::Arc;

/// Base table name used by every scenario.
pub const BASE_TABLE: &str = "base";
/// Index name used by every scenario.
pub const INDEX_NAME: &str = "ix";
/// The single indexed column.
pub const COLUMN: &[u8] = b"c";

/// Row key for row index `i` (`row00` … `row47`).
pub fn row_key(i: u8) -> Bytes {
    Bytes::from(format!("row{:02}", i))
}

/// Value bytes for value index `i` (`v0` … `v5`; lexicographic order
/// matches numeric order for a single digit).
pub fn value_bytes(i: u8) -> Bytes {
    Bytes::from(format!("v{i}"))
}

/// Knobs for a run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Pin the transport; `None` lets the seed decide.
    pub force_mode: Option<Mode>,
    /// Print each step as it executes.
    pub verbose: bool,
}

/// What one `(seed, scheme)` scenario produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The seed that was run.
    pub seed: u64,
    /// The scheme under test.
    pub scheme: IndexScheme,
    /// Transport the seed chose (or was forced to).
    pub mode: Mode,
    /// Whether the WAL fsynced per write.
    pub wal_sync: bool,
    /// Client operations executed.
    pub ops: usize,
    /// Faults injected.
    pub faults: usize,
    /// Every violation found (empty = pass).
    pub violations: Vec<Violation>,
    /// Tail of the operation history, for failure reports.
    pub history_tail: Vec<WriteRecord>,
}

impl RunOutcome {
    /// True if no checker fired.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The command that reproduces this scenario.
    pub fn repro_command(&self) -> String {
        let mode = match self.mode {
            Mode::Net => " --net",
            Mode::InProcess => " --in-process",
        };
        format!(
            "cargo run -p chaos -- --seed {} --scheme {}{}",
            self.seed,
            self.scheme.short_name(),
            mode
        )
    }
}

/// The environment one scenario runs in. Field order doubles as drop
/// order: the net stack (client, then servers) is torn down before the
/// cluster it fronts.
struct Env {
    di: DiffIndex,
    /// Index administration handle: `di` in-process; the *server-side*
    /// `DiffIndex` in net mode (that is where the AUQs live).
    admin_di: DiffIndex,
    recorder: Arc<RecordingStore>,
    /// Net-mode handle to the remote client, kept unwrapped so the health
    /// monitor can probe liveness over real TCP (`ping_server`).
    remote: Option<RemoteClient>,
    group: Option<ServerGroup>,
    cluster: Cluster,
    _dir: tempdir_lite::TempDir,
}

fn build_env(sched: &Schedule) -> Result<Env, String> {
    let dir = tempdir_lite::TempDir::new("chaos").map_err(|e| format!("tempdir: {e}"))?;
    // Big memtable: flushes happen only when the schedule says so, and a
    // huge retention keeps `RB(k, t−δ)` snapshot reads answerable.
    let copts = ClusterOptions {
        num_servers: NUM_SERVERS,
        lsm: diff_index_lsm::LsmOptions {
            wal_sync: sched.wal_sync,
            memtable_flush_bytes: 8 * 1024 * 1024,
            version_retention: u64::MAX,
            auto_compact: false,
            ..Default::default()
        },
    };
    let cluster = Cluster::new(dir.path(), copts).map_err(|e| format!("cluster: {e}"))?;
    cluster.create_table(BASE_TABLE, BASE_REGIONS).map_err(|e| format!("create base: {e}"))?;

    let spec = IndexSpec::single(
        INDEX_NAME,
        BASE_TABLE,
        std::str::from_utf8(COLUMN).unwrap(),
        sched.scheme,
    );
    match sched.mode {
        Mode::InProcess => {
            let recorder = Arc::new(RecordingStore::new(Arc::new(cluster.clone())));
            let store: Arc<dyn Store> = Arc::clone(&recorder) as Arc<dyn Store>;
            let di = DiffIndex::local_over_store(cluster.clone(), store);
            di.create_index(spec, INDEX_REGIONS).map_err(|e| format!("create index: {e}"))?;
            Ok(Env {
                admin_di: di.clone(),
                di,
                recorder,
                remote: None,
                group: None,
                cluster,
                _dir: dir,
            })
        }
        Mode::Net => {
            let server_di = DiffIndex::new(cluster.clone());
            let group = ServerGroup::start(&server_di).map_err(|e| format!("servers: {e}"))?;
            let remote = RemoteClient::connect_default(group.addrs())
                .map_err(|e| format!("connect: {e}"))?;
            let recorder = Arc::new(RecordingStore::new(Arc::new(remote.clone())));
            let store: Arc<dyn Store> = Arc::clone(&recorder) as Arc<dyn Store>;
            let di = DiffIndex::over_store(store);
            di.create_index(spec, INDEX_REGIONS).map_err(|e| format!("create index: {e}"))?;
            Ok(Env {
                di,
                admin_di: server_di,
                recorder,
                remote: Some(remote),
                group: Some(group),
                cluster,
                _dir: dir,
            })
        }
    }
}

/// Run one `(seed, scheme)` scenario to completion and return its verdict.
pub fn run_seed(seed: u64, scheme: IndexScheme, opts: &RunOptions) -> RunOutcome {
    let sched = schedule::generate(seed, scheme, opts.force_mode);
    let mut outcome = RunOutcome {
        seed,
        scheme,
        mode: sched.mode,
        wal_sync: sched.wal_sync,
        ops: sched.op_count(),
        faults: sched.steps.len() - sched.op_count(),
        violations: Vec::new(),
        history_tail: Vec::new(),
    };
    let env = match build_env(&sched) {
        Ok(env) => env,
        Err(e) => {
            outcome
                .violations
                .push(Violation { check: "harness", detail: format!("environment setup: {e}") });
            return outcome;
        }
    };
    let mut violations = drive(&sched, &env, opts);

    // ---- end-of-run: un-wedge, repair, quiesce, check -------------------
    set_auq_stalled(&env, false);
    env.cluster.faults().disarm_all();
    if let Some(group) = &env.group {
        for s in group.servers() {
            s.clear_drop_next_response();
        }
    }
    if sched.has_faults() {
        if let Err(e) = repair_all(&env.cluster) {
            violations.push(Violation { check: "harness", detail: format!("repair: {e}") });
        }
    }
    env.di.quiesce(BASE_TABLE);
    if env.cluster.faults().anything_armed() {
        violations.push(Violation {
            check: "harness",
            detail: "a fault survived disarm_all into verification".into(),
        });
    }

    let store: &dyn Store = env.recorder.as_ref();
    let history = env.recorder.history();
    violations.extend(checker::check_final_state(store, history, BASE_TABLE, COLUMN));
    if let Ok(handle) = env.admin_di.index(BASE_TABLE, INDEX_NAME) {
        violations.extend(checker::check_index_agreement(store, &handle.spec, scheme));
    } else {
        violations
            .push(Violation { check: "harness", detail: "index handle disappeared".into() });
    }
    let values: Vec<Bytes> = (0..NUM_VALUES).map(value_bytes).collect();
    violations.extend(checker::check_read_agreement(
        &env.di, store, BASE_TABLE, INDEX_NAME, COLUMN, &values,
    ));
    for handle in env.admin_di.indexes_of(BASE_TABLE) {
        if let Some(auq) = handle.try_auq() {
            let dropped = auq.metrics().dropped.load(std::sync::atomic::Ordering::Relaxed);
            if dropped > 0 {
                violations.push(Violation {
                    check: "auq-dropped",
                    detail: format!("{dropped} AUQ task(s) exhausted their retry budget"),
                });
            }
        }
    }

    outcome.history_tail = history.tail(25);
    outcome.violations = violations;
    if let Some(group) = &env.group {
        group.shutdown();
    }
    outcome
}

fn set_auq_stalled(env: &Env, stalled: bool) {
    for handle in env.admin_di.indexes_of(BASE_TABLE) {
        if let Some(auq) = handle.try_auq() {
            auq.set_stalled(stalled);
        }
    }
}

/// Crash + recover every server in turn: each region gets reopened from
/// its WAL at least once, re-applying staged writes and re-enqueuing the
/// index maintenance that a mid-put crash or failed fsync skipped.
fn repair_all(cluster: &Cluster) -> diff_index_cluster::Result<()> {
    for sid in 0..NUM_SERVERS as u32 {
        if cluster.servers().contains(&sid) {
            cluster.crash_server(sid);
        }
        cluster.recover()?;
        cluster.restart_server(sid);
    }
    Ok(())
}

/// Execute every step of the schedule, collecting inline violations.
fn drive(sched: &Schedule, env: &Env, opts: &RunOptions) -> Vec<Violation> {
    let mut violations = Vec::new();
    let fault_free = !sched.has_faults();
    let store: &dyn Store = env.recorder.as_ref();

    // The master's failure detector, ticked once per step so healing is a
    // deterministic function of the schedule (`dead_after` ticks after a
    // crash, regions are reassigned and the server process restarted). In
    // net mode the probe goes over real TCP: a dead server's listener still
    // accepts, but its `Ping` answers `ServerDown`.
    let monitor = HealthMonitor::new(&env.cluster, HealthOptions::default());
    if let Some(remote) = &env.remote {
        let probe = remote.clone();
        monitor.set_probe(Box::new(move |sid| probe.ping_server(sid).is_ok()));
    }
    let session: Option<Session> =
        (sched.scheme == IndexScheme::AsyncSession).then(|| env.di.session());
    // Rows whose latest write came from the session (value index): those
    // are the rows read-your-writes is still accountable for.
    let mut session_rows: HashMap<u8, u8> = HashMap::new();
    // On fault-free seeds every op must ack, so this mirrors the base
    // table exactly and backs the inline sync-scheme read checks.
    let mut truth: HashMap<u8, u8> = HashMap::new();

    for (i, step) in sched.steps.iter().enumerate() {
        if opts.verbose {
            eprintln!("  step {i}: {step:?}");
        }
        match step {
            Step::Fault(Fault::ResurrectZombie { server, row, value }) => {
                // The zombie's write (fenced-then-retried, or — sabotaged —
                // acked and lost) is the row's latest write and does not come
                // from the session.
                session_rows.remove(row);
                resurrect_zombie(*server, *row, *value, env, store, &mut violations);
            }
            Step::Fault(fault) => inject(fault, env),
            Step::Op(op) => {
                run_op(
                    op,
                    env,
                    store,
                    session.as_ref(),
                    &mut session_rows,
                    &mut truth,
                    fault_free,
                    &mut violations,
                );
            }
        }
        // One probe round per step; newly declared deaths were already
        // healed inside the tick (regions reassigned, WALs replayed), so
        // all that is left is to model the server process rebooting —
        // empty-handed, but still holding its crash-time region view.
        for sid in monitor.tick() {
            env.cluster.restart_server(sid);
        }
    }
    violations
}

fn inject(fault: &Fault, env: &Env) {
    match fault {
        Fault::CrashNextPut => env.cluster.faults().arm_crash_on_next_put(),
        Fault::FsyncFail { count } => env.cluster.faults().lsm().arm_fsync_failures(*count),
        Fault::AppendFail { count } => env.cluster.faults().lsm().arm_append_failures(*count),
        Fault::CrashServer { server } => env.cluster.crash_server(*server),
        // Handled in `drive` (needs session bookkeeping + the recorder).
        Fault::ResurrectZombie { .. } => unreachable!("handled in drive"),
        Fault::KillConnections => {
            if let Some(group) = &env.group {
                group.kill_connections();
            }
        }
        Fault::DropNextResponse { server } => {
            if let Some(group) = &env.group {
                group.servers()[*server as usize].drop_next_response();
            }
        }
        Fault::StallAuq => set_auq_stalled(env, true),
        Fault::ResumeAuq => set_auq_stalled(env, false),
    }
}

/// A healed server comes back from the dead still holding its crash-time
/// region view, and tries to serve a client write for a region that moved
/// away while it was down. Epoch fencing must reject it; the modeled client
/// then fails over and re-issues the write through the current map (a
/// normal, recorded write). If the zombie *acks* — only possible with
/// fencing sabotaged or broken — the ack is recorded exactly as the client
/// observed it, so the final-state checker sees the lost write.
fn resurrect_zombie(
    server: u32,
    row: u8,
    value: u8,
    env: &Env,
    store: &dyn Store,
    violations: &mut Vec<Violation>,
) {
    let cols = vec![(Bytes::copy_from_slice(COLUMN), value_bytes(value))];
    match env.cluster.zombie_put(server, BASE_TABLE, &row_key(row), &cols) {
        Err(_) => {
            // StaleEpoch (fenced), NotServing (the zombie never owned the
            // row's region) or ServerDown (region never reassigned): the
            // client retries through the current partition map.
            let _ = store.put(BASE_TABLE, &row_key(row), &cols);
        }
        Ok(ts) => {
            if !diff_index_cluster::fencing_disabled() {
                violations.push(Violation {
                    check: "zombie-fence",
                    detail: format!(
                        "zombie server {server} acked a write to row{row:02} \
                         with fencing enabled"
                    ),
                });
            }
            env.recorder.history().record(
                BASE_TABLE,
                &row_key(row),
                WriteKind::Put { columns: cols },
                WriteOutcome::Acked { ts },
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_op(
    op: &StepOp,
    env: &Env,
    store: &dyn Store,
    session: Option<&Session>,
    session_rows: &mut HashMap<u8, u8>,
    truth: &mut HashMap<u8, u8>,
    fault_free: bool,
    violations: &mut Vec<Violation>,
) {
    let col = Bytes::copy_from_slice(COLUMN);
    match op {
        StepOp::Put { row, value } => {
            let old = truth.get(row).copied();
            let res = store.put(BASE_TABLE, &row_key(*row), &[(col, value_bytes(*value))]);
            session_rows.remove(row);
            if fault_free {
                match res {
                    Ok(_) => {
                        truth.insert(*row, *value);
                        inline_read_check(env, truth, &[old, Some(*value)], violations);
                    }
                    Err(e) => violations.push(Violation {
                        check: "fault-free",
                        detail: format!("put(row{row:02}) failed with no fault injected: {e}"),
                    }),
                }
            }
        }
        StepOp::PutBatch { rows } => {
            let batch: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = rows
                .iter()
                .map(|(r, v)| (row_key(*r), vec![(col.clone(), value_bytes(*v))]))
                .collect();
            let res = store.put_batch(BASE_TABLE, &batch);
            let mut affected: Vec<Option<u8>> = Vec::new();
            for (r, v) in rows {
                session_rows.remove(r);
                if fault_free {
                    affected.push(truth.get(r).copied());
                    affected.push(Some(*v));
                }
                if fault_free && res.is_ok() {
                    truth.insert(*r, *v);
                }
            }
            if fault_free {
                match res {
                    Ok(_) => inline_read_check(env, truth, &affected, violations),
                    Err(e) => violations.push(Violation {
                        check: "fault-free",
                        detail: format!("put_batch failed with no fault injected: {e}"),
                    }),
                }
            }
        }
        StepOp::Delete { row } => {
            let old = truth.get(row).copied();
            let res = store.delete(BASE_TABLE, &row_key(*row), &[col]);
            session_rows.remove(row);
            if fault_free {
                match res {
                    Ok(_) => {
                        truth.remove(row);
                        inline_read_check(env, truth, &[old], violations);
                    }
                    Err(e) => violations.push(Violation {
                        check: "fault-free",
                        detail: format!("delete(row{row:02}) failed with no fault injected: {e}"),
                    }),
                }
            }
        }
        StepOp::SessionPut { row, value } => {
            let old = truth.get(row).copied();
            let res = match session {
                Some(s) => s
                    .put(BASE_TABLE, &row_key(*row), &[(col, value_bytes(*value))])
                    .map_err(|e| e.to_string()),
                None => store
                    .put(BASE_TABLE, &row_key(*row), &[(col, value_bytes(*value))])
                    .map_err(|e| e.to_string()),
            };
            match &res {
                Ok(_) if session.is_some() => {
                    session_rows.insert(*row, *value);
                }
                _ => {
                    session_rows.remove(row);
                }
            }
            if fault_free {
                match res {
                    Ok(_) => {
                        truth.insert(*row, *value);
                        inline_read_check(env, truth, &[old, Some(*value)], violations);
                    }
                    Err(e) => violations.push(Violation {
                        check: "fault-free",
                        detail: format!(
                            "session put(row{row:02}) failed with no fault injected: {e}"
                        ),
                    }),
                }
            }
        }
        StepOp::IndexRead { value } => {
            index_read(env, truth, *value, fault_free, violations);
        }
        StepOp::SessionRead { value } => match session {
            Some(s) => {
                match s.get_by_index(BASE_TABLE, INDEX_NAME, &value_bytes(*value), usize::MAX) {
                    Ok(hits) => {
                        // Read-your-writes: every row whose *latest* write
                        // was this session's put of `value` must be seen,
                        // no matter how far the AUQ lags.
                        for (row, v) in session_rows.iter() {
                            if v == value && !hits.iter().any(|h| h.row == row_key(*row)) {
                                violations.push(Violation {
                                    check: "session-ryw",
                                    detail: format!(
                                        "session read of {:?} missed its own write to row{row:02}",
                                        value_bytes(*value)
                                    ),
                                });
                            }
                        }
                    }
                    Err(e) => {
                        if fault_free {
                            violations.push(Violation {
                                check: "fault-free",
                                detail: format!("session read failed with no fault injected: {e}"),
                            });
                        }
                    }
                }
            }
            None => index_read(env, truth, *value, fault_free, violations),
        },
        StepOp::RangeRead { lo, hi } => {
            let res = env.di.range_by_index(
                BASE_TABLE,
                INDEX_NAME,
                &value_bytes(*lo),
                &value_bytes(*hi),
                true,
                usize::MAX,
            );
            if fault_free {
                if let Err(e) = res {
                    violations.push(Violation {
                        check: "fault-free",
                        detail: format!("range read failed with no fault injected: {e}"),
                    });
                }
            }
        }
        StepOp::Flush => {
            let index_table = match env.di.index(BASE_TABLE, INDEX_NAME) {
                Ok(h) => h.spec.index_table(),
                Err(_) => return,
            };
            let res = store.flush_table(BASE_TABLE).and_then(|_| store.flush_table(&index_table));
            if fault_free {
                if let Err(e) = res {
                    violations.push(Violation {
                        check: "fault-free",
                        detail: format!("flush failed with no fault injected: {e}"),
                    });
                }
            }
        }
        StepOp::Compact => {
            let index_table = match env.di.index(BASE_TABLE, INDEX_NAME) {
                Ok(h) => h.spec.index_table(),
                Err(_) => return,
            };
            let res = env
                .cluster
                .compact_table(BASE_TABLE)
                .and_then(|_| env.cluster.compact_table(&index_table));
            if fault_free {
                if let Err(e) = res {
                    violations.push(Violation {
                        check: "fault-free",
                        detail: format!("compact failed with no fault injected: {e}"),
                    });
                }
            }
        }
    }
}

/// On fault-free seeds, the synchronous schemes promise exact reads the
/// moment the put acks (§3.4): check every value the op touched.
fn inline_read_check(
    env: &Env,
    truth: &HashMap<u8, u8>,
    affected: &[Option<u8>],
    violations: &mut Vec<Violation>,
) {
    let scheme = match env.di.index(BASE_TABLE, INDEX_NAME) {
        Ok(h) => h.spec.scheme,
        Err(_) => return,
    };
    if !matches!(scheme, IndexScheme::SyncFull | IndexScheme::SyncInsert) {
        return;
    }
    let mut seen = Vec::new();
    for value in affected.iter().flatten() {
        if seen.contains(value) {
            continue;
        }
        seen.push(*value);
        check_value_exact(env, truth, *value, violations);
    }
}

fn check_value_exact(
    env: &Env,
    truth: &HashMap<u8, u8>,
    value: u8,
    violations: &mut Vec<Violation>,
) {
    let mut expected: Vec<Bytes> =
        truth.iter().filter(|(_, v)| **v == value).map(|(r, _)| row_key(*r)).collect();
    expected.sort();
    match env.di.get_by_index(BASE_TABLE, INDEX_NAME, &value_bytes(value), usize::MAX) {
        Ok(hits) => {
            let mut actual: Vec<Bytes> = hits.into_iter().map(|h| h.row).collect();
            actual.sort();
            actual.dedup();
            if actual != expected {
                violations.push(Violation {
                    check: "sync-inline",
                    detail: format!(
                        "after ack, {:?} reads {:?} but base holds {:?}",
                        value_bytes(value),
                        actual,
                        expected
                    ),
                });
            }
        }
        Err(e) => violations.push(Violation {
            check: "sync-inline",
            detail: format!("inline read of {:?} failed: {e}", value_bytes(value)),
        }),
    }
}

fn index_read(
    env: &Env,
    truth: &HashMap<u8, u8>,
    value: u8,
    fault_free: bool,
    violations: &mut Vec<Violation>,
) {
    if fault_free {
        let scheme = env.di.index(BASE_TABLE, INDEX_NAME).map(|h| h.spec.scheme);
        if matches!(scheme, Ok(IndexScheme::SyncFull) | Ok(IndexScheme::SyncInsert)) {
            check_value_exact(env, truth, value, violations);
            return;
        }
    }
    // Async schemes mid-run (or any scheme mid-fault): the read only has
    // to not wedge; its result is validated at convergence.
    let _ = env.di.get_by_index(BASE_TABLE, INDEX_NAME, &value_bytes(value), usize::MAX);
}

//! Seed → schedule: derive a complete, constraint-respecting scenario
//! (workload interleaved with faults) from a single `u64`.
//!
//! The generator tracks scenario state while emitting steps so that every
//! schedule is *runnable by construction*:
//!
//! * WAL-fsync faults are only scheduled on seeds that enable `wal_sync`
//!   (otherwise the armed fault would never fire and leak into checking);
//! * once the scenario is **dirty** — a fault may have applied a base write
//!   whose index maintenance was skipped (§5.3 window) — `Flush`/`Compact`
//!   are suppressed, because flushing would truncate the WAL evidence that
//!   end-of-run crash-recovery replay needs to repair the index;
//! * nobody schedules a recovery: the runner ticks the master's
//!   [`HealthMonitor`](diff_index_cluster::HealthMonitor) once per step, so
//!   a crashed server is declared dead and healed (regions reassigned with
//!   bumped fencing epochs, WALs replayed) within [`HEAL_STEPS`] steps of
//!   the crash — the generator models that deadline so AUQ retries cannot
//!   exhaust their budget;
//! * a server whose crash already healed is a **zombie candidate**: it may
//!   be resurrected mid-run, still holding its crash-time view of region
//!   ownership, and must have its writes fenced by the epoch check;
//! * at most one server is down at a time (of three), so a majority of
//!   regions stays reachable;
//! * connection-level faults only appear in [`Mode::Net`] scenarios, and a
//!   stalled AUQ is always resumed.

use crate::rng::SplitMix64;
use diff_index_core::IndexScheme;

/// Number of region servers in every scenario.
pub const NUM_SERVERS: usize = 3;
/// Base-table regions.
pub const BASE_REGIONS: usize = 6;
/// Index-table regions.
pub const INDEX_REGIONS: usize = 4;
/// Row alphabet size (`row00` … `row47`).
pub const NUM_ROWS: u8 = 48;
/// Value alphabet size (`v0` … `v5`).
pub const NUM_VALUES: u8 = 6;
/// Steps after a crash within which the runner's per-step health-monitor
/// tick has declared the server dead and healed the cluster: the crash
/// step's own tick is the first missed probe (Suspect), the next step's
/// tick the second (`dead_after = 2` → Dead, auto-recovery, restart). The
/// generator treats the server as down for exactly this many steps.
pub const HEAL_STEPS: u32 = 2;

/// How the client talks to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Client calls the `Cluster` directly (through the recorder).
    InProcess,
    /// Client goes through `net::RemoteClient` → loopback TCP →
    /// `net::ServerGroup`, with index admin forwarded over the wire.
    Net,
}

/// One client operation. Rows and values are small indices into fixed
/// alphabets so that overwrites (the interesting case for index
/// maintenance) are frequent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOp {
    /// `put(row, {c: value})`.
    Put {
        /// Row index.
        row: u8,
        /// Value index.
        value: u8,
    },
    /// `put_batch` of distinct rows.
    PutBatch {
        /// `(row, value)` pairs; rows are distinct within the batch.
        rows: Vec<(u8, u8)>,
    },
    /// `delete(row, {c})`.
    Delete {
        /// Row index.
        row: u8,
    },
    /// Session put (plain put for schemes without sessions).
    SessionPut {
        /// Row index.
        row: u8,
        /// Value index.
        value: u8,
    },
    /// `get_by_index(value)`.
    IndexRead {
        /// Value index.
        value: u8,
    },
    /// Session `get_by_index(value)` (plain read without a session).
    SessionRead {
        /// Value index.
        value: u8,
    },
    /// `range_by_index(v_lo ..= v_hi)`.
    RangeRead {
        /// Low value index (inclusive).
        lo: u8,
        /// High value index (inclusive).
        hi: u8,
    },
    /// Flush every region of base and index tables.
    Flush,
    /// Major-compact base and index tables.
    Compact,
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The next client `put` crashes its server after the durable base
    /// write, before index maintenance and before the ack (§5.3).
    CrashNextPut,
    /// The next `n` WAL fsyncs fail after the buffer reached the OS file:
    /// applied-but-unacked writes.
    FsyncFail {
        /// How many fsyncs to fail.
        count: u32,
    },
    /// The next `n` WAL appends fail before anything is applied.
    AppendFail {
        /// How many appends to fail.
        count: u32,
    },
    /// Crash a region server outright. Its regions go dark until the
    /// runner's per-step health-monitor tick declares it dead and heals the
    /// cluster (reassignment with bumped epochs, WAL replay, restart) — at
    /// most [`HEAL_STEPS`] steps later. In net mode the healing also leaves
    /// the client's partition map stale until its next refresh.
    CrashServer {
        /// Server id to crash.
        server: u32,
    },
    /// A previously crashed-and-healed server comes back from the dead
    /// still holding its crash-time view of region ownership, and tries to
    /// serve a write for a region that moved away while it was dead. Epoch
    /// fencing must reject the write (`StaleEpoch`); the modeled client
    /// then fails over and re-issues it through the current map. With
    /// fencing sabotaged the zombie acks a write nobody applied — a lost
    /// acked write the checkers must catch.
    ResurrectZombie {
        /// The healed server to resurrect.
        server: u32,
        /// Row index the zombie write targets.
        row: u8,
        /// Value index the zombie write carries.
        value: u8,
    },
    /// Sever every open client connection (net mode only); in-flight
    /// requests become ambiguous acks.
    KillConnections,
    /// Execute the next request that completes on server `server` but
    /// drop its response and destroy its connection (net mode only).
    DropNextResponse {
        /// Server id whose next response is dropped.
        server: u32,
    },
    /// Stall all AUQ workers: tasks queue but none complete.
    StallAuq,
    /// Resume stalled AUQ workers.
    ResumeAuq,
}

/// A schedule entry: do an operation, or inject a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Execute a client operation.
    Op(StepOp),
    /// Inject a fault.
    Fault(Fault),
}

/// A fully derived scenario.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The seed this schedule was derived from.
    pub seed: u64,
    /// Index maintenance scheme under test.
    pub scheme: IndexScheme,
    /// Client transport.
    pub mode: Mode,
    /// Whether the cluster fsyncs the WAL on every write.
    pub wal_sync: bool,
    /// The steps, in execution order.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// True if any fault is scheduled (fault-free seeds get stricter
    /// inline checks; faulty seeds get end-of-run repair before checking).
    pub fn has_faults(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::Fault(_)))
    }

    /// Number of client operations.
    pub fn op_count(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, Step::Op(_))).count()
    }
}

fn scheme_salt(scheme: IndexScheme) -> u64 {
    match scheme {
        IndexScheme::SyncFull => 0x5f01,
        IndexScheme::SyncInsert => 0x5f02,
        IndexScheme::AsyncSimple => 0x5f03,
        IndexScheme::AsyncSession => 0x5f04,
    }
}

/// Derive the full scenario for `(seed, scheme)`. `force_mode` pins the
/// transport; `None` lets the seed choose (≈1 in 5 scenarios run over the
/// network).
pub fn generate(seed: u64, scheme: IndexScheme, force_mode: Option<Mode>) -> Schedule {
    let mut rng = SplitMix64::new(seed ^ scheme_salt(scheme));
    let mode = force_mode.unwrap_or(if rng.one_in(5) { Mode::Net } else { Mode::InProcess });
    // Fault budget: ~1/4 of seeds are fault-free; the rest get 1–4 faults.
    let fault_budget = if rng.one_in(4) { 0 } else { rng.range(1, 4) as u32 };
    // WAL fsync-per-write on for 1/3 of seeds; fsync faults need it, so
    // seeds that *could* inject them skew toward it.
    let wal_sync = rng.one_in(3) || (fault_budget > 0 && rng.one_in(2));
    let n_ops = rng.range(30, 80);

    let mut steps = Vec::new();
    let mut faults_left = fault_budget;
    let mut dirty = false; // §5.3 window may be open: no flush/compact
    let mut crashed: Option<u32> = None;
    let mut steps_since_crash = 0u32;
    // A server whose crash already healed: the runner restarted it, but it
    // still holds its crash-time region view — a resurrection candidate.
    let mut zombie: Option<u32> = None;
    let mut stalled = false;
    let mut ops_emitted = 0u64;

    while ops_emitted < n_ops {
        // Self-healing model: the monitor tick after each step walks a
        // crashed server Suspect → Dead and heals it; no step schedules a
        // recovery explicitly.
        if let Some(server) = crashed {
            steps_since_crash += 1;
            if steps_since_crash >= HEAL_STEPS {
                crashed = None;
                zombie = Some(server);
            }
        }

        // Maybe inject a fault (faults ride between ops, ~1 per 8 steps).
        if faults_left > 0 && rng.one_in(8) {
            let mut candidates: Vec<Fault> = vec![Fault::CrashNextPut];
            if wal_sync {
                candidates.push(Fault::FsyncFail { count: rng.range(1, 2) as u32 });
            }
            candidates.push(Fault::AppendFail { count: 1 });
            if crashed.is_none() {
                candidates.push(Fault::CrashServer {
                    server: rng.below(NUM_SERVERS as u64) as u32,
                });
                if let Some(server) = zombie {
                    candidates.push(Fault::ResurrectZombie {
                        server,
                        row: rng.below(NUM_ROWS as u64) as u8,
                        value: rng.below(NUM_VALUES as u64) as u8,
                    });
                }
            }
            if mode == Mode::Net {
                candidates.push(Fault::KillConnections);
                candidates.push(Fault::DropNextResponse {
                    server: rng.below(NUM_SERVERS as u64) as u32,
                });
            }
            if stalled {
                candidates.push(Fault::ResumeAuq);
            } else {
                candidates.push(Fault::StallAuq);
            }
            let fault = rng.pick(&candidates).clone();
            match &fault {
                Fault::CrashNextPut | Fault::FsyncFail { .. } => dirty = true,
                Fault::CrashServer { server } => {
                    crashed = Some(*server);
                    steps_since_crash = 0;
                }
                Fault::ResurrectZombie { .. } => zombie = None,
                Fault::StallAuq => stalled = true,
                Fault::ResumeAuq => stalled = false,
                _ => {}
            }
            steps.push(Step::Fault(fault));
            faults_left -= 1;
            continue;
        }

        // Otherwise emit a client operation (weighted mix).
        let op = match rng.below(20) {
            0..=7 => StepOp::Put {
                row: rng.below(NUM_ROWS as u64) as u8,
                value: rng.below(NUM_VALUES as u64) as u8,
            },
            8..=9 => {
                // Distinct rows within a batch so per-row outcomes are
                // unambiguous.
                let n = rng.range(2, 5) as usize;
                let mut rows: Vec<(u8, u8)> = Vec::with_capacity(n);
                for _ in 0..n {
                    let row = rng.below(NUM_ROWS as u64) as u8;
                    if !rows.iter().any(|(r, _)| *r == row) {
                        rows.push((row, rng.below(NUM_VALUES as u64) as u8));
                    }
                }
                StepOp::PutBatch { rows }
            }
            10..=11 => StepOp::Delete { row: rng.below(NUM_ROWS as u64) as u8 },
            12..=13 => StepOp::SessionPut {
                row: rng.below(NUM_ROWS as u64) as u8,
                value: rng.below(NUM_VALUES as u64) as u8,
            },
            14..=15 => StepOp::IndexRead { value: rng.below(NUM_VALUES as u64) as u8 },
            16 => StepOp::SessionRead { value: rng.below(NUM_VALUES as u64) as u8 },
            17 => {
                let a = rng.below(NUM_VALUES as u64) as u8;
                let b = rng.below(NUM_VALUES as u64) as u8;
                StepOp::RangeRead { lo: a.min(b), hi: a.max(b) }
            }
            18 if !dirty && crashed.is_none() => StepOp::Flush,
            19 if !dirty && crashed.is_none() => StepOp::Compact,
            _ => StepOp::IndexRead { value: rng.below(NUM_VALUES as u64) as u8 },
        };
        steps.push(Step::Op(op));
        ops_emitted += 1;
    }

    // Close out dangling state: pad with reads until an in-flight crash has
    // healed (each padding step buys the runner one more monitor tick), and
    // resume a stalled AUQ so the schedule itself is well-formed (the
    // runner's end-phase repairs again defensively).
    while crashed.is_some() {
        steps.push(Step::Op(StepOp::IndexRead { value: rng.below(NUM_VALUES as u64) as u8 }));
        steps_since_crash += 1;
        if steps_since_crash >= HEAL_STEPS {
            crashed = None;
        }
    }
    if stalled {
        steps.push(Step::Fault(Fault::ResumeAuq));
    }

    Schedule { seed, scheme, mode, wal_sync, steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        for seed in 0..50 {
            let a = generate(seed, IndexScheme::SyncFull, None);
            let b = generate(seed, IndexScheme::SyncFull, None);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.mode, b.mode);
            assert_eq!(a.wal_sync, b.wal_sync);
        }
    }

    #[test]
    fn schemes_get_distinct_schedules() {
        let a = generate(1, IndexScheme::SyncFull, None);
        let b = generate(1, IndexScheme::AsyncSimple, None);
        assert_ne!(a.steps, b.steps);
    }

    #[test]
    fn constraints_hold_across_many_seeds() {
        let mut zombie_schedules = 0u32;
        for seed in 0..500 {
            for scheme in IndexScheme::all() {
                let s = generate(seed, scheme, None);
                let mut dirty = false;
                let mut crashed: Option<u32> = None;
                let mut down_steps = 0u32;
                let mut zombie: Option<u32> = None;
                let mut stalled = false;
                for step in &s.steps {
                    // Mirror the self-healing model: the monitor tick after
                    // each step heals a crash within HEAL_STEPS of it.
                    if let Some(server) = crashed {
                        down_steps += 1;
                        assert!(down_steps <= HEAL_STEPS, "seed {seed}: server down too long");
                        if down_steps >= HEAL_STEPS {
                            crashed = None;
                            zombie = Some(server);
                        }
                    }
                    match step {
                        Step::Fault(Fault::FsyncFail { .. }) => {
                            assert!(s.wal_sync, "seed {seed}: fsync fault without wal_sync");
                            dirty = true;
                        }
                        Step::Fault(Fault::CrashNextPut) => dirty = true,
                        Step::Fault(Fault::CrashServer { server }) => {
                            assert!(crashed.is_none(), "seed {seed}: double crash");
                            assert!((*server as usize) < NUM_SERVERS);
                            crashed = Some(*server);
                            down_steps = 0;
                        }
                        Step::Fault(Fault::ResurrectZombie { server, .. }) => {
                            assert_eq!(
                                zombie,
                                Some(*server),
                                "seed {seed}: zombie fault without a healed crash of {server}"
                            );
                            assert!(
                                crashed.is_none(),
                                "seed {seed}: zombie resurrected while another server is down"
                            );
                            zombie = None;
                            zombie_schedules += 1;
                        }
                        Step::Fault(Fault::KillConnections)
                        | Step::Fault(Fault::DropNextResponse { .. }) => {
                            assert_eq!(s.mode, Mode::Net, "seed {seed}: net fault in-process");
                        }
                        Step::Fault(Fault::StallAuq) => stalled = true,
                        Step::Fault(Fault::ResumeAuq) => stalled = false,
                        Step::Op(StepOp::Flush) | Step::Op(StepOp::Compact) => {
                            assert!(!dirty, "seed {seed}: flush/compact while dirty");
                            assert!(crashed.is_none(), "seed {seed}: flush while crashed");
                        }
                        Step::Op(StepOp::PutBatch { rows }) => {
                            let mut seen = std::collections::HashSet::new();
                            assert!(rows.iter().all(|(r, _)| seen.insert(*r)));
                        }
                        _ => {}
                    }
                }
                assert!(crashed.is_none(), "seed {seed}: schedule ends with a dead server");
                assert!(!stalled, "seed {seed}: schedule ends stalled");
                assert!(s.op_count() >= 30);
            }
        }
        // The zombie fault must actually occur across the corpus, or the
        // fencing path would go unexercised.
        assert!(zombie_schedules > 0, "no schedule ever resurrected a zombie");
    }
}

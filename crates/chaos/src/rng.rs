//! Self-contained deterministic RNG (SplitMix64), so a schedule depends on
//! nothing but the seed — no global state, no platform variance.

/// SplitMix64: tiny, fast, and good enough for schedule generation. The
/// same seed produces the same stream on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `1/n`.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let x = r.range(3, 5);
            assert!((3..=5).contains(&x));
        }
    }
}

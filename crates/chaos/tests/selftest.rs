//! The harness's own safety net: clean scenarios pass, and a deliberately
//! sabotaged §4.3 implementation is caught — deterministically, from the
//! same seed — by the per-scheme checkers.
//!
//! One test function on purpose: `set_violate_delta` flips process-global
//! state, so interleaving sabotaged and clean runs across parallel test
//! threads would poison the clean ones.

use chaos::{run_seed, Mode, RunOptions};
use diff_index_core::IndexScheme;

#[test]
fn clean_seeds_pass_and_sabotage_is_caught_deterministically() {
    let opts = RunOptions::default();

    // A handful of clean scenarios across every scheme must pass.
    for seed in 0..3u64 {
        for scheme in IndexScheme::all() {
            let outcome = run_seed(seed, scheme, &opts);
            assert!(
                outcome.passed(),
                "clean seed {seed} scheme {} failed: {:?}",
                scheme.short_name(),
                outcome.violations
            );
        }
    }

    // Sabotage §4.3: SU3/SU4 read the pre-image at ts instead of ts−δ, so
    // old == new and the old index entry is never deleted. Seed 1 under
    // sync-full is fault-free (no RepairAll to legitimately clean up), so
    // the stale entries survive to the end-of-run checks.
    diff_index_core::set_violate_delta(true);
    let sabotage = RunOptions { force_mode: Some(Mode::Net), ..RunOptions::default() };
    let first = run_seed(1, IndexScheme::SyncFull, &sabotage);
    let second = run_seed(1, IndexScheme::SyncFull, &sabotage);
    diff_index_core::set_violate_delta(false);

    assert!(
        !first.passed(),
        "sabotaged §4.3 not caught — the checkers are blind to stale entries"
    );
    // Deterministic replay: same seed → the same checkers fire on the same
    // scenario shape. (Timestamps inside violation details differ — the
    // region oracle is wall-clock — so compare the checker set, not text.)
    let checks = |v: &[chaos::Violation]| {
        let mut c: Vec<&'static str> = v.iter().map(|v| v.check).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    assert_eq!(
        checks(&first.violations),
        checks(&second.violations),
        "replay of seed 1 fired different checkers"
    );

    // The flag is off again: the identical scenario is clean.
    let clean = run_seed(1, IndexScheme::SyncFull, &sabotage);
    assert!(clean.passed(), "clean replay failed: {:?}", clean.violations);
}

//! Self-healing safety net: with fencing intact, zombie-resurrection seeds
//! pass; with fencing sabotaged, the zombie's acked-but-never-applied write
//! is caught by the checkers — deterministically, from the same seed.
//!
//! This lives in its own integration-test binary (one process) because
//! `set_disable_fencing` flips process-global state: sharing a process with
//! the other selftests would poison their clean runs.

use chaos::{generate, run_seed, Fault, Mode, RunOptions, Step};
use diff_index_core::IndexScheme;

fn zombie_seeds(scheme: IndexScheme, limit: usize) -> Vec<u64> {
    (0..500u64)
        .filter(|&seed| {
            generate(seed, scheme, Some(Mode::InProcess))
                .steps
                .iter()
                .any(|s| matches!(s, Step::Fault(Fault::ResurrectZombie { .. })))
        })
        .take(limit)
        .collect()
}

#[test]
fn unfenced_zombie_acks_are_caught() {
    let scheme = IndexScheme::SyncFull;
    let opts = RunOptions { force_mode: Some(Mode::InProcess), ..RunOptions::default() };
    let seeds = zombie_seeds(scheme, 8);
    assert!(!seeds.is_empty(), "no schedule in 0..500 resurrects a zombie");

    // Fence intact: every zombie write is rejected with StaleEpoch and the
    // modeled client retry keeps the run consistent.
    for &seed in &seeds {
        let outcome = run_seed(seed, scheme, &opts);
        assert!(
            outcome.passed(),
            "seed {seed} failed with fencing ENABLED: {:?}",
            outcome.violations
        );
    }

    // Fence sabotaged: zombies ack writes nobody applies. The loss is only
    // observable when no later write overwrites the row, so scan the seeds
    // and require the checkers to catch at least one — then prove the catch
    // replays deterministically.
    diff_index_cluster::set_disable_fencing(true);
    let caught: Vec<u64> =
        seeds.iter().copied().filter(|&s| !run_seed(s, scheme, &opts).passed()).collect();
    let replay = caught.first().map(|&s| run_seed(s, scheme, &opts));
    diff_index_cluster::set_disable_fencing(false);

    assert!(
        !caught.is_empty(),
        "fencing disabled but no checker caught a lost zombie ack across seeds {seeds:?}"
    );
    let replay = replay.unwrap();
    assert!(
        !replay.passed(),
        "seed {} caught once but clean on replay — detection is nondeterministic",
        caught[0]
    );
    assert!(
        replay.violations.iter().all(|v| v.check != "harness"),
        "sabotage must trip consistency checkers, not the harness: {:?}",
        replay.violations
    );

    // Flag off again: the identical scenario is clean.
    let clean = run_seed(caught[0], scheme, &opts);
    assert!(clean.passed(), "clean replay of seed {} failed: {:?}", caught[0], clean.violations);
}

//! Self-healing over the wire: TCP liveness probes driving the master's
//! health monitor, and epoch fencing of writes stamped from before a
//! failover — the network-layer half of the §5.3 recovery story.

use bytes::Bytes;
use diff_index_cluster::{
    Cluster, ClusterOptions, ClusterError, HealthMonitor, HealthOptions, HealthState,
};
use diff_index_core::{DiffIndex, Store};
use diff_index_net::{RemoteClient, ServerGroup};

fn title_cols(v: &str) -> Vec<(Bytes, Bytes)> {
    vec![(Bytes::from("title"), Bytes::copy_from_slice(v.as_bytes()))]
}

/// The health monitor probing over real TCP (`Ping` per server) walks a
/// crashed server Healthy -> Suspect -> Dead and heals the cluster without
/// anyone calling `recover()`; a listener whose server died answers its
/// probe with `ServerDown` even though its socket still accepts — the
/// zombie's open port must not read as health.
#[test]
fn tcp_probes_detect_death_and_auto_heal() {
    let dir = tempdir_lite::TempDir::new("net-heal").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("t", 6).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&di).unwrap();
    let client = RemoteClient::connect_default(group.addrs()).unwrap();

    client.put("t", b"k1", &title_cols("v1")).unwrap();
    let victim = cluster.server_for_row("t", b"k1").unwrap();

    let monitor = HealthMonitor::new(&cluster, HealthOptions::default());
    let probe_client = client.clone();
    monitor.set_probe(Box::new(move |sid| probe_client.ping_server(sid).is_ok()));
    assert!(monitor.tick().is_empty());
    assert_eq!(monitor.state_of(victim), HealthState::Healthy);

    cluster.crash_server(victim);
    // The dead server's listener still accepts TCP, but its Ping now answers
    // ServerDown — the probe must see through the open socket.
    assert!(client.ping_server(victim).is_err(), "probe of a dead server must fail");

    assert!(monitor.tick().is_empty(), "first miss: Suspect, not Dead");
    assert_eq!(monitor.state_of(victim), HealthState::Suspect);
    let dead = monitor.tick();
    assert_eq!(dead, vec![victim], "second miss declares death");
    assert_eq!(monitor.state_of(victim), HealthState::Dead);
    assert_eq!(monitor.metrics().auto_recoveries, 1, "death must trigger recovery");

    // Regions moved off the victim; the client fails over transparently.
    let new_owner = cluster.server_for_row("t", b"k1").unwrap();
    assert_ne!(new_owner, victim);
    client.put("t", b"k1", &title_cols("v2")).unwrap();
    let got = client.get("t", b"k1", b"title", u64::MAX).unwrap().unwrap();
    assert_eq!(got.value, Bytes::from("v2"));
    group.shutdown();
}

/// A write stamped with a pre-failover epoch is fenced with `StaleEpoch`
/// even when it reaches the region's *current* owner: after the region
/// bounces A -> B -> A, a client holding the original map routes to the
/// right server with the wrong epoch, and only the fence catches it. The
/// client then refreshes, re-stamps and succeeds without surfacing an
/// error.
#[test]
fn stale_epoch_stamp_is_fenced_then_client_recovers() {
    let dir = tempdir_lite::TempDir::new("net-fence").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 2, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("t", 4).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&di).unwrap();
    let client = RemoteClient::connect_default(group.addrs()).unwrap();

    // Prime the client's map (owners + epochs) before any failover.
    client.put("t", b"k1", &title_cols("v1")).unwrap();
    let a = cluster.server_for_row("t", b"k1").unwrap();

    // Bounce every region off A and back: A -> B (epoch +1) -> A (epoch +1).
    cluster.crash_server(a);
    cluster.recover().unwrap();
    let b = cluster.server_for_row("t", b"k1").unwrap();
    assert_ne!(b, a);
    cluster.restart_server(a);
    cluster.crash_server(b);
    cluster.recover().unwrap();
    assert_eq!(cluster.server_for_row("t", b"k1").unwrap(), a, "region must bounce back to A");
    cluster.restart_server(b);

    // The client's cached route (A, epoch e) points at the CURRENT owner but
    // with an epoch two bumps behind: ownership policing passes, only the
    // epoch fence stands between a lost update and correctness. The retry
    // path must absorb it.
    let fenced_before = cluster.recovery_stats().fenced_writes;
    client.put("t", b"k1", &title_cols("v2")).unwrap();
    let fenced_after = cluster.recovery_stats().fenced_writes;
    assert!(
        fenced_after > fenced_before,
        "the stale-stamped first attempt must have been fenced \
         (before={fenced_before}, after={fenced_after})"
    );
    let got = client.get("t", b"k1", b"title", u64::MAX).unwrap().unwrap();
    assert_eq!(got.value, Bytes::from("v2"));
    group.shutdown();
}

/// An unstamped write (epoch 0) skips the fence: bootstrap writers and
/// epoch-unaware callers keep working across failovers, policed by
/// ownership alone.
#[test]
fn unstamped_writes_skip_the_fence() {
    let dir = tempdir_lite::TempDir::new("net-unstamped").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 2, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("t", 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&di).unwrap();

    // Raw frame with epoch stamp 0 against the row's current owner.
    use diff_index_net::wire::{self, BodyWriter, OpCode, STATUS_OK};
    use std::io::{Read, Write};
    let owner = cluster.server_for_row("t", b"k1").unwrap();
    let addr = group.servers()[owner as usize].addr();
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    let mut w = BodyWriter::new();
    w.str("t").bytes(b"k1").u32(1).bytes(b"title").bytes(b"v").u64(0);
    conn.write_all(&wire::encode_frame(OpCode::Put as u8, 1, &w.finish())).unwrap();
    let mut len = [0u8; 4];
    conn.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    conn.read_exact(&mut payload).unwrap();
    let resp = wire::decode_frame(&payload).unwrap();
    assert_eq!(resp.tag, STATUS_OK, "unstamped write must pass the fence");
    assert_eq!(cluster.recovery_stats().fenced_writes, 0);

    // But a nonzero stale stamp against the same owner is rejected.
    let cur = cluster.epoch_for_row("t", b"k1").unwrap();
    let mut w = BodyWriter::new();
    w.str("t").bytes(b"k1").u32(1).bytes(b"title").bytes(b"v2").u64(cur + 7);
    conn.write_all(&wire::encode_frame(OpCode::Put as u8, 2, &w.finish())).unwrap();
    conn.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    conn.read_exact(&mut payload).unwrap();
    let resp = wire::decode_frame(&payload).unwrap();
    assert_eq!(resp.tag, wire::STATUS_ERR);
    let err = wire::decode_error(&resp.body);
    assert!(
        matches!(err, ClusterError::StaleEpoch { .. }),
        "mismatched stamp must be fenced, got {err}"
    );
    group.shutdown();
}

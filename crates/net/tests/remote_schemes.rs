//! End-to-end networked runs: all four index schemes driven through
//! `RemoteClient` against a multi-listener `ServerGroup`, plus the wire
//! counterpart of Table 1's RPC cost model measured off the real dispatch
//! path.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec, Store};
use diff_index_net::{RemoteClient, ServerGroup};
use std::sync::Arc;

struct Harness {
    _dir: tempdir_lite::TempDir,
    cluster: Cluster,
    local_di: DiffIndex,
    group: ServerGroup,
    client: RemoteClient,
    remote_di: DiffIndex,
}

fn setup(scheme: IndexScheme) -> Harness {
    let dir = tempdir_lite::TempDir::new("net-schemes").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("item", 6).unwrap();
    let local_di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&local_di).unwrap();
    let client = RemoteClient::connect_default(group.addrs()).unwrap();
    let remote_di = DiffIndex::over_store(Arc::new(client.clone()));
    remote_di
        .create_index(IndexSpec::single("title", "item", "title", scheme), 6)
        .unwrap();
    Harness { _dir: dir, cluster, local_di, group, client, remote_di }
}

fn put_title(store: &dyn Store, row: &str, title: &str) -> u64 {
    store
        .put("item", row.as_bytes(), &[(Bytes::from("title"), Bytes::copy_from_slice(title.as_bytes()))])
        .unwrap()
}

fn rows_of(hits: &[diff_index_core::IndexHit]) -> Vec<String> {
    hits.iter().map(|h| String::from_utf8(h.row.to_vec()).unwrap()).collect()
}

#[test]
fn sync_full_is_read_consistent_over_the_wire() {
    let h = setup(IndexScheme::SyncFull);
    put_title(&h.client, "item1", "alpha");
    put_title(&h.client, "item2", "alpha");
    put_title(&h.client, "item1", "beta");
    let hits = h.remote_di.get_by_index("item", "title", b"alpha", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item2"]);
    let hits = h.remote_di.get_by_index("item", "title", b"beta", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
    let report =
        diff_index_core::verify_index(&h.client, &h.local_di.index("item", "title").unwrap().spec)
            .unwrap();
    assert!(report.is_clean(), "sync-full must be clean over the wire: {report:?}");
    h.group.shutdown();
}

#[test]
fn sync_insert_read_repairs_over_the_wire() {
    let h = setup(IndexScheme::SyncInsert);
    put_title(&h.client, "item1", "old");
    put_title(&h.client, "item1", "new");
    // The stale entry for "old" exists until a read repairs it — over the
    // socket, the repair is a RawDelete issued by the client.
    let hits = h.remote_di.get_by_index("item", "title", b"old", 100).unwrap();
    assert!(hits.is_empty(), "stale hit must be filtered: {hits:?}");
    let spec = h.local_di.index("item", "title").unwrap().spec.clone();
    let report = diff_index_core::verify_index(&h.client, &spec).unwrap();
    assert!(report.is_clean(), "read repair must have cleansed the stale entry: {report:?}");
    assert_eq!(
        rows_of(&h.remote_di.get_by_index("item", "title", b"new", 100).unwrap()),
        vec!["item1"]
    );
    h.group.shutdown();
}

#[test]
fn async_simple_converges_after_remote_quiesce() {
    let h = setup(IndexScheme::AsyncSimple);
    put_title(&h.client, "item1", "eventual");
    // Quiesce travels as an admin RPC and blocks until the server-side AUQ
    // drains.
    h.remote_di.quiesce("item");
    assert_eq!(
        rows_of(&h.remote_di.get_by_index("item", "title", b"eventual", 100).unwrap()),
        vec!["item1"]
    );
    let spec = h.local_di.index("item", "title").unwrap().spec.clone();
    assert!(diff_index_core::verify_index(&h.client, &spec).unwrap().is_clean());
    h.group.shutdown();
}

#[test]
fn async_session_reads_your_writes_over_the_wire() {
    let h = setup(IndexScheme::AsyncSession);
    let session = h.remote_di.session();
    session
        .put(
            "item",
            b"item1",
            &[(Bytes::from("title"), Bytes::from("mine"))],
        )
        .unwrap();
    // No quiesce: the session must see its own write merged client-side
    // even though the server-side AUQ may not have applied it yet.
    let hits = session.get_by_index("item", "title", b"mine", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
    h.group.shutdown();
}

/// Table 1's RPC cost model, measured on the real dispatch path: an
/// update-put costs 3 extra region ops under sync-full (RB read + PI put +
/// DI delete), 1 under sync-insert (PI put), and 0 synchronously under
/// async (deferred to the AUQ).
#[test]
fn rpcs_per_update_put_match_table_1() {
    for (scheme, sync_index_ops) in [
        (IndexScheme::SyncFull, 3),
        (IndexScheme::SyncInsert, 1),
        (IndexScheme::AsyncSimple, 0),
    ] {
        let h = setup(scheme);
        let auq = std::sync::Arc::clone(h.local_di.index("item", "title").unwrap().auq());
        put_title(&h.client, "item1", "v1");
        // The AUQ drains in the background, so a measurement window can be
        // polluted by deferred ops landing inside it; detect that via the
        // server-side completed counter and re-measure with a fresh value.
        let mut measured = None;
        for ver in 2..20 {
            h.remote_di.quiesce("item"); // settle deferred work before measuring
            let completed_before =
                auq.metrics().completed.load(std::sync::atomic::Ordering::SeqCst);
            let before = h.cluster.dispatch_metrics();
            put_title(&h.client, "item1", &format!("v{ver}")); // value-changing update
            let after = h.cluster.dispatch_metrics();
            let completed_after =
                auq.metrics().completed.load(std::sync::atomic::Ordering::SeqCst);
            if completed_after != completed_before {
                continue; // AUQ ran inside the window; the delta is not purely synchronous
            }
            measured = Some(after - before);
            break;
        }
        let delta = measured.expect("no clean measurement window in 18 tries");
        assert_eq!(delta.puts, 1, "{scheme:?}: exactly one base put");
        assert_eq!(
            delta.index_ops(),
            sync_index_ops,
            "{scheme:?}: synchronous index ops per update put (Table 1); delta = {delta:?}"
        );
        if scheme == IndexScheme::AsyncSimple {
            // The deferred work exists — it shows up once the AUQ drains.
            let before = h.cluster.dispatch_metrics();
            h.remote_di.quiesce("item");
            let after = h.cluster.dispatch_metrics();
            assert!(
                (after - before).index_ops() >= 1,
                "async work must surface after quiesce"
            );
        }
        h.group.shutdown();
    }
}

/// The server counts every request per opcode with sizes and latencies.
#[test]
fn server_metrics_expose_per_opcode_traffic() {
    let h = setup(IndexScheme::SyncFull);
    put_title(&h.client, "item1", "metric");
    let _ = h.remote_di.get_by_index("item", "title", b"metric", 100).unwrap();
    let totals: u64 = h
        .group
        .servers()
        .iter()
        .map(|s| s.metrics().requests_for(diff_index_net::OpCode::Put))
        .sum();
    assert_eq!(totals, 1, "exactly one Put request hit the wire");
    let any_scan = h
        .group
        .servers()
        .iter()
        .flat_map(|s| s.metrics().per_op)
        .any(|o| o.op == diff_index_net::OpCode::ScanRowsPrefix && o.requests > 0);
    assert!(any_scan, "index read must have issued a prefix scan over the wire");
    for snap in h.group.metrics() {
        for op in &snap.per_op {
            assert!(op.bytes_in > 0 && op.bytes_out > 0, "{op:?} recorded no bytes");
        }
    }
    h.group.shutdown();
}

//! Failure-path tests for the network layer: ambiguous-ack retries after a
//! killed connection, stale partition-map recovery, pipelined out-of-order
//! responses, and drain-before-stop shutdown.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec, Store};
use diff_index_net::wire::{self, BodyWriter, OpCode, STATUS_OK};
use diff_index_net::{RemoteClient, ServerGroup};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn title_cols(v: &str) -> Vec<(Bytes, Bytes)> {
    vec![(Bytes::from("title"), Bytes::copy_from_slice(v.as_bytes()))]
}

/// A connection dies after the server applied a `put_batch` but before the
/// client heard back. The client's bounded retry re-sends the batch; that
/// must be harmless: every acked row present with its final value, and the
/// index free of duplicates or stragglers (§4.3 idempotency — the index
/// entry key is a function of value and row, and SU3 skips the delete when
/// old == new).
#[test]
fn retry_after_killed_connection_is_idempotent() {
    let dir = tempdir_lite::TempDir::new("net-fault").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("item", 6).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&di).unwrap();
    let client = RemoteClient::connect_default(group.addrs()).unwrap();
    let remote_di = DiffIndex::over_store(Arc::new(client.clone()));
    let spec = remote_di
        .create_index(IndexSpec::single("title", "item", "title", IndexScheme::SyncFull), 6)
        .unwrap()
        .spec
        .clone();

    let rows: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = (0..12)
        .map(|i| (Bytes::from(format!("row{i:02}")), title_cols(&format!("first{i}"))))
        .collect();
    let stamps = client.put_batch("item", &rows).unwrap();
    assert_eq!(stamps.len(), 12);

    // Arm the fault on every server: the next completed request per server
    // executes, then its connection is destroyed instead of responding.
    for s in group.servers() {
        s.drop_next_response();
    }
    let update: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = (0..12)
        .map(|i| (Bytes::from(format!("row{i:02}")), title_cols(&format!("second{i}"))))
        .collect();
    let stamps = client.put_batch("item", &update).unwrap();
    assert_eq!(stamps.len(), 12);
    assert!(stamps.iter().all(|&t| t > 0), "every row must be acked: {stamps:?}");

    // Every acked row visible with its final value, through a fresh read.
    for i in 0..12 {
        let got = client
            .get("item", format!("row{i:02}").as_bytes(), b"title", u64::MAX)
            .unwrap()
            .expect("acked row must be present");
        assert_eq!(got.value, Bytes::from(format!("second{i}")));
    }
    // No duplicate or stale index entries despite the replays.
    let report = diff_index_core::verify_index(&client, &spec).unwrap();
    assert!(report.is_clean(), "index must be clean after ambiguous-ack retries: {report:?}");
    let hits = remote_di.get_by_index("item", "title", b"first3", 100).unwrap();
    assert!(hits.is_empty(), "old entries must be gone: {hits:?}");
    group.shutdown();
}

/// A region moves between requests (server crash + master recovery). The
/// client's cached partition map still points at the old owner, which now
/// answers `NotServing`; the client must refetch the map and re-route
/// without surfacing an error.
#[test]
fn stale_partition_map_is_refreshed_on_not_serving() {
    let dir = tempdir_lite::TempDir::new("net-stale").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("t", 6).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&di).unwrap();
    let client = RemoteClient::connect_default(group.addrs()).unwrap();

    // Prime the client's partition-map cache.
    client.put("t", b"k1", &title_cols("v1")).unwrap();
    let old_owner = cluster.server_for_row("t", b"k1").unwrap();

    // Move the region: crash its host, let the master reassign.
    cluster.crash_server(old_owner);
    cluster.recover().unwrap();
    let new_owner = cluster.server_for_row("t", b"k1").unwrap();
    assert_ne!(new_owner, old_owner, "recovery must have moved the region");

    // The cached map is now stale; the put must still succeed transparently.
    client.put("t", b"k1", &title_cols("v2")).unwrap();
    let got = client.get("t", b"k1", b"title", u64::MAX).unwrap().unwrap();
    assert_eq!(got.value, Bytes::from("v2"));
    group.shutdown();
}

fn encode_put(table: &str, row: &[u8], val: &str) -> Bytes {
    let mut w = BodyWriter::new();
    w.str(table).bytes(row).u32(1).bytes(b"title").bytes(val.as_bytes());
    // Epoch stamp 0 = unstamped: these raw-frame tests exercise framing and
    // ownership, not fencing.
    w.u64(0);
    w.finish()
}

fn read_response(conn: &mut TcpStream) -> Option<wire::Frame> {
    let mut len_buf = [0u8; 4];
    let mut read = 0;
    while read < 4 {
        match conn.read(&mut len_buf[read..]) {
            Ok(0) => return None,
            Ok(n) => read += n,
            Err(_) => return None,
        }
    }
    let len = wire::check_frame_len(u32::from_le_bytes(len_buf)).ok()?;
    let mut payload = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match conn.read(&mut payload[read..]) {
            Ok(0) => return None,
            Ok(n) => read += n,
            Err(_) => return None,
        }
    }
    wire::decode_frame(&payload).ok()
}

/// A single connection carries many requests in flight: write every frame
/// before reading any response, then collect all responses (order free,
/// matched by request id).
#[test]
fn pipelined_requests_all_complete() {
    let dir = tempdir_lite::TempDir::new("net-pipe").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("t", 4).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&di).unwrap();
    let addr = group.addrs()[0].clone();

    let mut conn = TcpStream::connect(&addr).unwrap();
    const N: u64 = 24;
    for id in 1..=N {
        let body = encode_put("t", format!("p{id:02}").as_bytes(), &format!("v{id}"));
        conn.write_all(&wire::encode_frame(OpCode::Put as u8, id, &body)).unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    for _ in 0..N {
        let resp = read_response(&mut conn).expect("response for every pipelined request");
        assert_eq!(resp.tag, STATUS_OK, "pipelined put failed");
        assert!(seen.insert(resp.request_id), "duplicate response id {}", resp.request_id);
    }
    assert_eq!(seen.len() as u64, N);
    for id in 1..=N {
        let got = cluster.get("t", format!("p{id:02}").as_bytes(), b"title", u64::MAX).unwrap();
        assert_eq!(got.unwrap().value, Bytes::from(format!("v{id}")));
    }
    group.shutdown();
}

/// Graceful-shutdown ordering: `shutdown()` must drain dispatched requests
/// (their responses written) before returning, and only then does the test
/// stop AUQ workers — so an acknowledged write can never be lost, and an
/// unacknowledged one may simply have never happened. No third state.
#[test]
fn shutdown_drains_before_auq_teardown() {
    let dir = tempdir_lite::TempDir::new("net-drain").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("item", 4).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let handle = di
        .create_index(IndexSpec::single("title", "item", "title", IndexScheme::AsyncSimple), 4)
        .unwrap();
    let group = ServerGroup::start(&di).unwrap();
    let addr = group.addrs()[0].clone();

    // Flood one connection with pipelined puts and shut the server down
    // while they are in flight.
    let mut conn = TcpStream::connect(&addr).unwrap();
    const N: u64 = 48;
    for id in 1..=N {
        let body = encode_put("item", format!("d{id:02}").as_bytes(), &format!("v{id}"));
        conn.write_all(&wire::encode_frame(OpCode::Put as u8, id, &body)).unwrap();
    }
    let reader = std::thread::spawn(move || {
        let mut acked = Vec::new();
        while let Some(resp) = read_response(&mut conn) {
            if resp.tag == STATUS_OK {
                acked.push(resp.request_id);
            }
        }
        acked
    });
    // Shutdown races the pipelined burst: some frames may never be read,
    // but whatever was dispatched must be answered before this returns.
    group.shutdown();
    let acked = reader.join().unwrap();

    // ONLY now stop index maintenance, mirroring the required teardown
    // order (listener drain -> AUQ -> cluster).
    di.quiesce("item");

    for id in &acked {
        let got = cluster.get("item", format!("d{id:02}").as_bytes(), b"title", u64::MAX).unwrap();
        assert!(got.is_some(), "acked write d{id:02} lost after graceful shutdown");
        assert_eq!(got.unwrap().value, Bytes::from(format!("v{id}")));
    }
    // And the index reflects exactly the applied base rows.
    let report = diff_index_core::verify_index(di.store().as_ref(), &handle.spec).unwrap();
    assert!(report.is_clean(), "index diverged across shutdown: {report:?}");

    // The server really is down for new work.
    assert!(TcpStream::connect(&addr).map(|mut c| {
        let body = encode_put("item", b"late", "nope");
        let _ = c.write_all(&wire::encode_frame(OpCode::Put as u8, 1, &body));
        read_response(&mut c).is_none()
    }).unwrap_or(true));
}

/// Malformed bytes on the wire surface as a Protocol error response (when
/// the header is readable) and never take the server down.
#[test]
fn malformed_frames_get_protocol_errors() {
    let dir = tempdir_lite::TempDir::new("net-mal").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("t", 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let group = ServerGroup::start(&di).unwrap();
    let addr = group.addrs()[0].clone();

    // Unknown opcode: error response, connection stays usable.
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(&wire::encode_frame(0xEE, 7, b"")).unwrap();
    let resp = read_response(&mut conn).unwrap();
    assert_eq!(resp.tag, wire::STATUS_ERR);
    assert_eq!(resp.request_id, 7);
    // Same connection still serves a valid request afterwards.
    let body = encode_put("t", b"r", "ok");
    conn.write_all(&wire::encode_frame(OpCode::Put as u8, 8, &body)).unwrap();
    let resp = read_response(&mut conn).unwrap();
    assert_eq!(resp.tag, STATUS_OK);

    // Truncated body: the decoder rejects it without panicking.
    let mut conn2 = TcpStream::connect(&addr).unwrap();
    let mut w = BodyWriter::new();
    w.str("t");
    conn2.write_all(&wire::encode_frame(OpCode::Put as u8, 9, &w.finish())).unwrap();
    let resp = read_response(&mut conn2).unwrap();
    assert_eq!(resp.tag, wire::STATUS_ERR);
    let err = wire::decode_error(&resp.body);
    assert!(matches!(err, diff_index_cluster::ClusterError::Protocol(_)), "got {err}");

    // The server survived all of it.
    let client = RemoteClient::connect_default(group.addrs()).unwrap();
    client.ping().unwrap();
    group.shutdown();
}

//! Wire-protocol robustness: a server fed garbage, truncated, or corrupted
//! frames must reply with a protocol error or close the connection — never
//! panic, never wedge — and must keep serving well-formed clients on fresh
//! connections throughout.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, Store};
use diff_index_net::wire::{self, BodyWriter, OpCode, STATUS_OK};
use diff_index_net::{RemoteClient, ServerGroup};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Tiny deterministic generator (SplitMix64) so a failure reproduces.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn start_server() -> (tempdir_lite::TempDir, ServerGroup, String) {
    let dir = tempdir_lite::TempDir::new("wire-fuzz").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 1, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::new(cluster);
    let group = ServerGroup::start(&di).unwrap();
    let addr = group.addrs()[0].clone();
    (dir, group, addr)
}

fn connect(addr: &str) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    // If the server wedges, fail the test instead of hanging it.
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

/// Send raw bytes, then drain whatever comes back until the server responds
/// or closes. The only unacceptable outcome is a read timeout (wedged
/// connection that neither answers nor closes).
fn send_and_drain(addr: &str, payload: &[u8]) {
    let mut s = connect(addr);
    if s.write_all(payload).is_err() {
        return; // server already closed on us: fine
    }
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return, // clean close
            Ok(_) => continue, // error frame(s); keep draining
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("server wedged: no response and no close within timeout")
            }
            Err(_) => return, // reset: also a close
        }
    }
}

/// A fresh, well-formed connection must still get a Ping response.
fn assert_still_serving(addr: &str) {
    let mut s = connect(addr);
    let frame = wire::encode_frame(OpCode::Ping as u8, 7, b"");
    s.write_all(&frame).unwrap();
    let mut len = [0u8; 4];
    s.read_exact(&mut len).expect("server must answer a well-formed Ping");
    let n = wire::check_frame_len(u32::from_le_bytes(len)).unwrap();
    let mut payload = vec![0u8; n];
    s.read_exact(&mut payload).unwrap();
    let f = wire::decode_frame(&payload).unwrap();
    assert_eq!(f.tag, STATUS_OK);
    assert_eq!(f.request_id, 7);
}

/// A syntactically valid Put request frame, used as the corruption victim.
fn valid_put_frame() -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.str("item").bytes(b"row1");
    w.u32(1); // one column
    w.bytes(b"title").bytes(b"value");
    wire::encode_frame(OpCode::Put as u8, 99, &w.finish()).to_vec()
}

#[test]
fn garbage_frames_never_panic_or_wedge_the_server() {
    let (_d, group, addr) = start_server();
    let mut rng = Rng(0xD1FF_1DE5);

    // 1. Pure random garbage of varied sizes.
    for _ in 0..40 {
        let n = rng.below(200) as usize + 1;
        let garbage: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
        send_and_drain(&addr, &garbage);
    }
    assert_still_serving(&addr);

    // 2. Hostile length prefixes: zero, below-header, just-over-cap, max.
    for len in [0u32, 1, 9, wire::MAX_FRAME + 1, u32::MAX] {
        let mut payload = len.to_le_bytes().to_vec();
        payload.extend_from_slice(&[0u8; 16]);
        send_and_drain(&addr, &payload);
    }
    assert_still_serving(&addr);

    // 3. Truncations of a valid frame at every boundary that matters, plus
    //    random cut points.
    let frame = valid_put_frame();
    for cut in [1usize, 3, 4, 5, 6, 13, frame.len() - 1] {
        send_and_drain(&addr, &frame[..cut]);
    }
    for _ in 0..20 {
        let cut = rng.below(frame.len() as u64) as usize;
        send_and_drain(&addr, &frame[..cut]);
    }
    assert_still_serving(&addr);

    // 4. Single-byte corruptions of a valid frame. Flipping a byte in the
    //    length prefix may declare a longer frame than we send — the server
    //    must treat the short read as a close, not block forever.
    for _ in 0..60 {
        let mut f = frame.clone();
        let pos = rng.below(f.len() as u64) as usize;
        f[pos] ^= (rng.below(255) + 1) as u8;
        send_and_drain(&addr, &f);
    }
    assert_still_serving(&addr);

    // 5. Unknown opcodes and known opcodes with garbage bodies: the server
    //    answers with an error frame and keeps the connection alive, so one
    //    connection can take several in a row.
    {
        let mut s = connect(&addr);
        for (i, tag) in [0x00u8, 0x77, 0xFF, OpCode::Put as u8, OpCode::ScanRows as u8]
            .into_iter()
            .enumerate()
        {
            let body: Vec<u8> = (0..rng.below(40)).map(|_| rng.next() as u8).collect();
            let f = wire::encode_frame(tag, i as u64, &body);
            if s.write_all(&f).is_err() {
                s = connect(&addr); // server closed (decode error path): reconnect
                continue;
            }
            let mut len = [0u8; 4];
            match s.read_exact(&mut len) {
                Ok(()) => {
                    let n = wire::check_frame_len(u32::from_le_bytes(len)).unwrap();
                    let mut payload = vec![0u8; n];
                    s.read_exact(&mut payload).unwrap();
                    let rf = wire::decode_frame(&payload).unwrap();
                    assert_eq!(rf.request_id, i as u64);
                }
                Err(_) => s = connect(&addr),
            }
        }
    }
    assert_still_serving(&addr);

    // 6. After all the abuse, a real client session works end to end.
    let client = RemoteClient::connect_default(vec![addr.clone()]).unwrap();
    client.put("item", b"row1", &[(Bytes::from("title"), Bytes::from("v"))]).unwrap();
    let got = client.get("item", b"row1", b"title", u64::MAX).unwrap().unwrap();
    assert_eq!(&got.value[..], b"v");

    group.shutdown();
}

//! Failover under load: concurrent writers hammer the store while a region
//! server dies mid-run and the master's health monitor — running in its
//! background-thread mode, no explicit `recover()` anywhere — detects the
//! death and heals the cluster. Every scheme must come out clean: every
//! acked write readable with its final value, the index in agreement with
//! the base, and no async task dropped.
//!
//! Writers retry each value until it acks, so retries are idempotent
//! (§4.3: the index entry key is a function of row and value) and the
//! final value of every row is deterministic despite the outage window.
//! One scheme runs over the wire (`RemoteClient` → loopback TCP), where
//! detection uses the real `Ping` probe and client failover must absorb
//! `ServerDown`/`NotServing`/`StaleEpoch` transparently.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions, HealthMonitor, HealthOptions};
use diff_index_core::{verify_index, DiffIndex, IndexScheme, IndexSpec, Store};
use diff_index_net::{RemoteClient, ServerGroup};
use std::sync::Arc;
use std::time::Duration;

const WRITERS: usize = 4;
const ROWS_PER_WRITER: usize = 8;
const VALUES: usize = 6;

fn run_scheme(scheme: IndexScheme, net: bool) {
    let dir = tempdir_lite::TempDir::new("failover-load").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, ..ClusterOptions::default() })
            .unwrap();
    cluster.create_table("item", 6).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let handle = di.create_index(IndexSpec::single("by_c", "item", "c", scheme), 4).unwrap();
    let spec = handle.spec.clone();

    let mut group = None;
    let mut client = None;
    let store: Arc<dyn Store> = if net {
        let g = ServerGroup::start(&di).unwrap();
        let c = RemoteClient::connect_default(g.addrs()).unwrap();
        group = Some(g);
        client = Some(c.clone());
        Arc::new(c)
    } else {
        Arc::new(cluster.clone())
    };

    let monitor = HealthMonitor::new(
        &cluster,
        HealthOptions { suspect_after: 1, dead_after: 2, probe_interval: Duration::from_millis(2) },
    );
    if let Some(c) = &client {
        let probe = c.clone();
        monitor.set_probe(Box::new(move |sid| probe.ping_server(sid).is_ok()));
    }
    monitor.start();

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let store = Arc::clone(&store);
        writers.push(std::thread::spawn(move || {
            let mut acked: Vec<(String, String)> = Vec::new();
            for r in 0..ROWS_PER_WRITER {
                let row = format!("w{w}-row{r}");
                for v in 0..VALUES {
                    let val = format!("v{v}");
                    let mut attempts = 0u32;
                    loop {
                        let res = store.put(
                            "item",
                            row.as_bytes(),
                            &[(Bytes::from("c"), Bytes::from(val.clone()))],
                        );
                        match res {
                            Ok(_) => break,
                            Err(e) => {
                                attempts += 1;
                                assert!(
                                    attempts < 5000,
                                    "write {row}={val} never acked (healing stuck?): {e}"
                                );
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                    }
                }
                acked.push((row, format!("v{}", VALUES - 1)));
            }
            acked
        }));
    }

    // Kill a server while the writers are mid-flight. Nobody calls
    // recover(): the monitor's probe thread must notice and heal. Writers
    // whose rows lived on the victim spin on retries until it does.
    std::thread::sleep(Duration::from_millis(2));
    cluster.crash_server(1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while monitor.metrics().auto_recoveries == 0 {
        assert!(std::time::Instant::now() < deadline, "monitor never healed the crash");
        std::thread::sleep(Duration::from_millis(1));
    }

    let acked: Vec<(String, String)> =
        writers.into_iter().flat_map(|h| h.join().unwrap()).collect();
    monitor.shutdown();
    let metrics = monitor.metrics();
    assert!(metrics.deaths >= 1, "the crash was never detected: {metrics:?}");
    assert!(metrics.auto_recoveries >= 1, "detection never healed: {metrics:?}");

    di.quiesce("item");

    // Every acked write must be readable with its final value.
    assert_eq!(acked.len(), WRITERS * ROWS_PER_WRITER);
    for (row, val) in &acked {
        let got = store
            .get("item", row.as_bytes(), b"c", u64::MAX)
            .unwrap_or_else(|e| panic!("read of {row} failed post-heal: {e}"))
            .unwrap_or_else(|| panic!("acked row {row} lost across failover"));
        assert_eq!(got.value, Bytes::from(val.clone()), "row {row} lost its final write");
    }

    // Index/base agreement: nothing missing under any scheme; nothing stale
    // except under sync-insert, which cleans lazily by design.
    let report = verify_index(store.as_ref(), &spec).unwrap();
    assert_eq!(report.missing_count(), 0, "missing index entries: {report:?}");
    if scheme != IndexScheme::SyncInsert {
        assert_eq!(report.stale_count(), 0, "stale index entries: {report:?}");
    }
    if let Some(auq) = handle.try_auq() {
        let dropped = auq.metrics().dropped.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(dropped, 0, "AUQ dropped {dropped} task(s) across the failover");
    }
    if let Some(g) = group {
        g.shutdown();
    }
}

#[test]
fn sync_full_survives_failover_under_load() {
    run_scheme(IndexScheme::SyncFull, false);
}

#[test]
fn sync_insert_survives_failover_under_load() {
    run_scheme(IndexScheme::SyncInsert, false);
}

#[test]
fn async_simple_survives_failover_under_load_over_the_wire() {
    run_scheme(IndexScheme::AsyncSimple, true);
}

#[test]
fn async_session_survives_failover_under_load() {
    run_scheme(IndexScheme::AsyncSession, false);
}

//! Per-opcode network metrics for a [`crate::Server`]: request counts,
//! bytes in/out, and service-latency percentiles.
//!
//! These are the observable counterpart of the paper's RPC cost model
//! (Table 1): with a real dispatch path, "how many RPCs does a sync-full
//! put cost" is measured off the wire rather than hand-maintained.

use crate::wire::OpCode;
use diff_index_ycsb::Histogram;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live metrics, updated by connection handlers. Counters are atomics so
/// the hot path never serializes on the histogram lock for the cheap part.
pub struct NetMetrics {
    per_op: [OpSlot; OP_SLOTS],
}

impl Default for NetMetrics {
    fn default() -> Self {
        Self { per_op: std::array::from_fn(|_| OpSlot::default()) }
    }
}

const OP_SLOTS: usize = 0x43; // one past the highest opcode byte

#[derive(Default)]
struct OpSlot {
    requests: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency: Mutex<Option<Box<Histogram>>>,
}

/// Frozen per-opcode metrics.
#[derive(Debug, Clone)]
pub struct OpMetricsSnapshot {
    /// Opcode these numbers describe.
    pub op: OpCode,
    /// Requests served (including ones that returned an error response).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Request-frame bytes received (length prefix included).
    pub bytes_in: u64,
    /// Response-frame bytes sent (length prefix included).
    pub bytes_out: u64,
    /// Median service latency in microseconds (decode → response written).
    pub p50_us: u64,
    /// 99th-percentile service latency in microseconds.
    pub p99_us: u64,
}

/// Frozen view of a server's network metrics.
#[derive(Debug, Clone, Default)]
pub struct NetMetricsSnapshot {
    /// Per-opcode rows, only for opcodes that served at least one request.
    pub per_op: Vec<OpMetricsSnapshot>,
}

impl NetMetricsSnapshot {
    /// Total requests across all opcodes.
    pub fn total_requests(&self) -> u64 {
        self.per_op.iter().map(|o| o.requests).sum()
    }

    /// Total bytes received across all opcodes.
    pub fn total_bytes_in(&self) -> u64 {
        self.per_op.iter().map(|o| o.bytes_in).sum()
    }

    /// Total bytes sent across all opcodes.
    pub fn total_bytes_out(&self) -> u64 {
        self.per_op.iter().map(|o| o.bytes_out).sum()
    }

    /// Requests for one opcode (0 if it never ran).
    pub fn requests_for(&self, op: OpCode) -> u64 {
        self.per_op.iter().find(|o| o.op == op).map_or(0, |o| o.requests)
    }
}

impl NetMetrics {
    /// Record one served request.
    pub fn record(&self, op: OpCode, bytes_in: u64, bytes_out: u64, latency_us: u64, err: bool) {
        let slot = &self.per_op[op as u8 as usize];
        slot.requests.fetch_add(1, Ordering::Relaxed);
        if err {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        slot.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        let mut h = slot.latency.lock();
        h.get_or_insert_with(|| Box::new(Histogram::new())).record(latency_us);
    }

    /// Snapshot every opcode that served at least one request.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        let mut per_op = Vec::new();
        for &op in OpCode::all() {
            let slot = &self.per_op[op as u8 as usize];
            let requests = slot.requests.load(Ordering::Relaxed);
            if requests == 0 {
                continue;
            }
            let (p50_us, p99_us) = {
                let h = slot.latency.lock();
                match h.as_deref() {
                    Some(h) => (h.percentile(50.0), h.percentile(99.0)),
                    None => (0, 0),
                }
            };
            per_op.push(OpMetricsSnapshot {
                op,
                requests,
                errors: slot.errors.load(Ordering::Relaxed),
                bytes_in: slot.bytes_in.load(Ordering::Relaxed),
                bytes_out: slot.bytes_out.load(Ordering::Relaxed),
                p50_us,
                p99_us,
            });
        }
        NetMetricsSnapshot { per_op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_per_opcode() {
        let m = NetMetrics::default();
        m.record(OpCode::Put, 100, 20, 500, false);
        m.record(OpCode::Put, 100, 20, 700, true);
        m.record(OpCode::Get, 40, 60, 90, false);
        let s = m.snapshot();
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.requests_for(OpCode::Put), 2);
        assert_eq!(s.requests_for(OpCode::Quiesce), 0);
        let put = s.per_op.iter().find(|o| o.op == OpCode::Put).unwrap();
        assert_eq!(put.errors, 1);
        assert_eq!(put.bytes_in, 200);
        assert_eq!(put.bytes_out, 40);
        assert!(put.p50_us >= 400 && put.p99_us >= put.p50_us);
        assert_eq!(s.total_bytes_in(), 240);
        assert_eq!(s.total_bytes_out(), 100);
    }
}

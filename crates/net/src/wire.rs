//! The Diff-Index wire protocol: compact, length-prefixed binary frames.
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! request:  [u32 len][u8 version=1][u8 opcode][u64 request_id][body]
//! response: [u32 len][u8 version=1][u8 status][u64 request_id][body]
//! ```
//!
//! `len` counts everything after itself (version byte onward). The version
//! byte leads every frame so the format can evolve; a peer speaking an
//! unknown version is rejected with a `Protocol` error before any body
//! bytes are interpreted. `request_id` is chosen by the client and echoed
//! verbatim, which lets a connection carry pipelined requests whose
//! responses arrive out of order.
//!
//! `status` is `0` for success (body is the op-specific result) or `1` for
//! failure (body is an encoded [`ClusterError`]).
//!
//! ## Body primitives
//!
//! Variable-length byte strings are `[u32 len][bytes]`; optionals are a
//! `u8` tag (0 = none, 1 = some); lists are `[u32 count][items]`. Row keys
//! travel *raw* — the order-preserving escaping of `cluster::encoding` is a
//! storage-key concern and is applied server-side, so the wire stays free
//! of double-escaping bugs.

use bytes::{BufMut, Bytes, BytesMut};
use diff_index_cluster::{ClusterError, ColumnValue, PutOutcome, Result, RowGroup};
use diff_index_core::{IndexScheme, IndexSpec};
use diff_index_lsm::VersionedValue;

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Hard cap on a frame's `len` field (16 MiB): a corrupt or hostile length
/// prefix must not trigger an unbounded allocation.
pub const MAX_FRAME: u32 = 16 << 20;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: body carries an encoded error.
pub const STATUS_ERR: u8 = 1;

/// Request opcodes. Grouped by nibble: `0x0_` control, `0x1_` writes,
/// `0x2_` reads, `0x3_` tables, `0x4_` index administration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Liveness probe; empty body both ways.
    Ping = 0x01,
    /// Fetch the server roster: `(server_id, addr)` pairs.
    Roster = 0x02,
    /// Fetch a table's partition map:
    /// `(region_start, region_id, server_id, epoch)`.
    PartitionMap = 0x03,
    /// Client put (observers run).
    Put = 0x10,
    /// Batched client put.
    PutBatch = 0x11,
    /// Put returning replaced values (§5.2 session client).
    PutReturning = 0x12,
    /// Client delete.
    Delete = 0x13,
    /// Index-table put at an explicit timestamp (no observers).
    RawPut = 0x14,
    /// Index-table delete at an explicit timestamp (no observers).
    RawDelete = 0x15,
    /// Point read of one column.
    Get = 0x20,
    /// Newest cell incl. tombstones: `(ts, is_tombstone)`.
    GetCellVersioned = 0x21,
    /// All columns of one row.
    GetRow = 0x22,
    /// Row scan with row-boundary semantics.
    ScanRows = 0x23,
    /// Row scan by row-key prefix.
    ScanRowsPrefix = 0x24,
    /// Row scan under plain byte order (index range reads).
    ScanRowsRange = 0x25,
    /// Create a pre-split table.
    CreateTable = 0x30,
    /// Table existence check.
    HasTable = 0x31,
    /// Flush every region of a table.
    FlushTable = 0x32,
    /// `CREATE INDEX` executed server-side (observers + backfill).
    CreateIndex = 0x40,
    /// `DROP INDEX` executed server-side.
    DropIndex = 0x41,
    /// Block until the AUQs behind a base table's indexes are empty.
    Quiesce = 0x42,
}

impl OpCode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        use OpCode::*;
        Some(match b {
            0x01 => Ping,
            0x02 => Roster,
            0x03 => PartitionMap,
            0x10 => Put,
            0x11 => PutBatch,
            0x12 => PutReturning,
            0x13 => Delete,
            0x14 => RawPut,
            0x15 => RawDelete,
            0x20 => Get,
            0x21 => GetCellVersioned,
            0x22 => GetRow,
            0x23 => ScanRows,
            0x24 => ScanRowsPrefix,
            0x25 => ScanRowsRange,
            0x30 => CreateTable,
            0x31 => HasTable,
            0x32 => FlushTable,
            0x40 => CreateIndex,
            0x41 => DropIndex,
            0x42 => Quiesce,
            _ => return None,
        })
    }

    /// Stable human name (metrics labels, logs).
    pub fn name(self) -> &'static str {
        use OpCode::*;
        match self {
            Ping => "ping",
            Roster => "roster",
            PartitionMap => "partition_map",
            Put => "put",
            PutBatch => "put_batch",
            PutReturning => "put_returning",
            Delete => "delete",
            RawPut => "raw_put",
            RawDelete => "raw_delete",
            Get => "get",
            GetCellVersioned => "get_cell_versioned",
            GetRow => "get_row",
            ScanRows => "scan_rows",
            ScanRowsPrefix => "scan_rows_prefix",
            ScanRowsRange => "scan_rows_range",
            CreateTable => "create_table",
            HasTable => "has_table",
            FlushTable => "flush_table",
            CreateIndex => "create_index",
            DropIndex => "drop_index",
            Quiesce => "quiesce",
        }
    }

    /// Every defined opcode, for metrics iteration.
    pub fn all() -> &'static [OpCode] {
        use OpCode::*;
        &[
            Ping,
            Roster,
            PartitionMap,
            Put,
            PutBatch,
            PutReturning,
            Delete,
            RawPut,
            RawDelete,
            Get,
            GetCellVersioned,
            GetRow,
            ScanRows,
            ScanRowsPrefix,
            ScanRowsRange,
            CreateTable,
            HasTable,
            FlushTable,
            CreateIndex,
            DropIndex,
            Quiesce,
        ]
    }
}

/// One decoded frame header + body (shared shape for requests and
/// responses; `tag` is the opcode or the status byte respectively).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Opcode (request) or status (response).
    pub tag: u8,
    /// Client-chosen correlation id, echoed by the server.
    pub request_id: u64,
    /// Op-specific payload.
    pub body: Bytes,
}

/// Serialize a frame. `tag` is the opcode for requests, the status for
/// responses.
pub fn encode_frame(tag: u8, request_id: u64, body: &[u8]) -> Bytes {
    let len = 1 + 1 + 8 + body.len();
    let mut out = BytesMut::with_capacity(4 + len);
    out.put_slice(&(len as u32).to_le_bytes());
    out.put_u8(VERSION);
    out.put_u8(tag);
    out.put_slice(&request_id.to_le_bytes());
    out.put_slice(body);
    out.freeze()
}

/// Parse the payload of a frame whose 4-byte length prefix has already been
/// consumed and validated. Rejects unknown versions and short frames.
pub fn decode_frame(payload: &[u8]) -> Result<Frame> {
    if payload.len() < 10 {
        return Err(ClusterError::Protocol(format!("frame too short: {} bytes", payload.len())));
    }
    if payload[0] != VERSION {
        return Err(ClusterError::Protocol(format!(
            "unsupported protocol version {} (speaking {VERSION})",
            payload[0]
        )));
    }
    let tag = payload[1];
    let request_id = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    Ok(Frame { tag, request_id, body: Bytes::copy_from_slice(&payload[10..]) })
}

/// Validate a frame's length prefix before allocating its buffer.
pub fn check_frame_len(len: u32) -> Result<usize> {
    if len < 10 {
        return Err(ClusterError::Protocol(format!("frame length {len} below header size")));
    }
    if len > MAX_FRAME {
        return Err(ClusterError::Protocol(format!("frame length {len} exceeds {MAX_FRAME}")));
    }
    Ok(len as usize)
}

// ---------------------------------------------------------------------------
// Body writer/reader primitives
// ---------------------------------------------------------------------------

/// Growable body encoder.
#[derive(Default)]
pub struct BodyWriter {
    buf: BytesMut,
}

impl BodyWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(&(v.len() as u32).to_le_bytes());
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Append an optional byte string (`u8` tag + bytes when present).
    pub fn opt_bytes(&mut self, v: Option<&[u8]>) -> &mut Self {
        match v {
            None => self.u8(0),
            Some(b) => {
                self.u8(1);
                self.bytes(b)
            }
        }
    }

    /// Append the column list of a put.
    pub fn columns(&mut self, cols: &[ColumnValue]) -> &mut Self {
        self.u32(cols.len() as u32);
        for (c, v) in cols {
            self.bytes(c).bytes(v);
        }
        self
    }

    /// Append a list of column names.
    pub fn names(&mut self, cols: &[Bytes]) -> &mut Self {
        self.u32(cols.len() as u32);
        for c in cols {
            self.bytes(c);
        }
        self
    }

    /// Append a `VersionedValue`.
    pub fn versioned(&mut self, v: &VersionedValue) -> &mut Self {
        self.u64(v.ts).bytes(&v.value)
    }

    /// Append a full row group: `row`, then `(column, versioned)` pairs.
    pub fn row_group(&mut self, (row, cols): &RowGroup) -> &mut Self {
        self.bytes(row).u32(cols.len() as u32);
        for (c, v) in cols {
            self.bytes(c).versioned(v);
        }
        self
    }
}

/// Cursor-style body decoder; every read is bounds-checked and malformed
/// input surfaces as [`ClusterError::Protocol`].
pub struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ClusterError::Protocol("truncated body".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// The body must be fully consumed; trailing garbage is an error.
    pub fn expect_end(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(ClusterError::Protocol(format!(
                "{} trailing bytes after body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Bytes> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME as usize {
            return Err(ClusterError::Protocol(format!("byte string length {len} too large")));
        }
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| ClusterError::Protocol("invalid UTF-8 string".into()))
    }

    /// Read an optional byte string.
    pub fn opt_bytes(&mut self) -> Result<Option<Bytes>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            t => Err(ClusterError::Protocol(format!("bad option tag {t}"))),
        }
    }

    /// Read a bounded list count (guards allocation on corrupt counts).
    pub fn count(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        // Each item needs at least one byte of encoding; a count larger than
        // the remaining body is unconditionally malformed.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(ClusterError::Protocol(format!("list count {n} exceeds body")));
        }
        Ok(n)
    }

    /// Read a put column list.
    pub fn columns(&mut self) -> Result<Vec<ColumnValue>> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let c = self.bytes()?;
            let v = self.bytes()?;
            out.push((c, v));
        }
        Ok(out)
    }

    /// Read a list of column names.
    pub fn names(&mut self) -> Result<Vec<Bytes>> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.bytes()?);
        }
        Ok(out)
    }

    /// Read a `VersionedValue`.
    pub fn versioned(&mut self) -> Result<VersionedValue> {
        let ts = self.u64()?;
        let value = self.bytes()?;
        Ok(VersionedValue { value, ts })
    }

    /// Read a full row group.
    pub fn row_group(&mut self) -> Result<RowGroup> {
        let row = self.bytes()?;
        let n = self.count()?;
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let c = self.bytes()?;
            let v = self.versioned()?;
            cols.push((c, v));
        }
        Ok((row, cols))
    }
}

// ---------------------------------------------------------------------------
// Error body codec
// ---------------------------------------------------------------------------

/// Encode a [`ClusterError`] as an error-response body: `[u8 code]` +
/// code-specific payload. `Storage` flattens to `Unavailable` — the engine's
/// error detail is a server-side concern; the client only needs to know the
/// request failed non-retryably with a message.
pub fn encode_error(e: &ClusterError) -> Bytes {
    let mut w = BodyWriter::new();
    match e {
        ClusterError::NoSuchTable(t) => {
            w.u8(1).str(t);
        }
        ClusterError::ServerDown(s) => {
            w.u8(2).u32(*s);
        }
        ClusterError::NotServing { owner } => {
            w.u8(3).u32(*owner);
        }
        ClusterError::Timeout(m) => {
            w.u8(4).str(m);
        }
        ClusterError::Io(m) => {
            w.u8(5).str(m);
        }
        ClusterError::Protocol(m) => {
            w.u8(6).str(m);
        }
        ClusterError::Unavailable(m) => {
            w.u8(7).str(m);
        }
        ClusterError::Storage(e) => {
            w.u8(7).str(&format!("storage: {e}"));
        }
        ClusterError::StaleEpoch { owner, epoch } => {
            w.u8(8).u32(*owner).u64(*epoch);
        }
    }
    w.finish()
}

/// Decode an error-response body back into a [`ClusterError`].
pub fn decode_error(body: &[u8]) -> ClusterError {
    fn inner(body: &[u8]) -> Result<ClusterError> {
        let mut r = BodyReader::new(body);
        let e = match r.u8()? {
            1 => ClusterError::NoSuchTable(r.str()?),
            2 => ClusterError::ServerDown(r.u32()?),
            3 => ClusterError::NotServing { owner: r.u32()? },
            4 => ClusterError::Timeout(r.str()?),
            5 => ClusterError::Io(r.str()?),
            6 => ClusterError::Protocol(r.str()?),
            7 => ClusterError::Unavailable(r.str()?),
            8 => ClusterError::StaleEpoch { owner: r.u32()?, epoch: r.u64()? },
            c => return Err(ClusterError::Protocol(format!("unknown error code {c}"))),
        };
        r.expect_end()?;
        Ok(e)
    }
    inner(body).unwrap_or_else(|e| e)
}

// ---------------------------------------------------------------------------
// Composite codecs shared by client and server
// ---------------------------------------------------------------------------

/// Encode a [`PutOutcome`] response body.
pub fn encode_put_outcome(o: &PutOutcome) -> Bytes {
    let mut w = BodyWriter::new();
    w.u64(o.ts).u32(o.old_values.len() as u32);
    for (c, old) in &o.old_values {
        w.bytes(c);
        match old {
            None => {
                w.u8(0);
            }
            Some(v) => {
                w.u8(1).versioned(v);
            }
        }
    }
    w.finish()
}

/// Decode a [`PutOutcome`] response body.
pub fn decode_put_outcome(body: &[u8]) -> Result<PutOutcome> {
    let mut r = BodyReader::new(body);
    let ts = r.u64()?;
    let n = r.count()?;
    let mut old_values = Vec::with_capacity(n);
    for _ in 0..n {
        let c = r.bytes()?;
        let old = match r.u8()? {
            0 => None,
            1 => Some(r.versioned()?),
            t => return Err(ClusterError::Protocol(format!("bad option tag {t}"))),
        };
        old_values.push((c, old));
    }
    r.expect_end()?;
    Ok(PutOutcome { ts, old_values })
}

/// Encode an [`IndexSpec`] (for `CreateIndex`).
pub fn encode_index_spec(w: &mut BodyWriter, spec: &IndexSpec) {
    w.str(&spec.name).str(&spec.base_table).names(&spec.columns).u8(match spec.scheme {
        IndexScheme::SyncFull => 0,
        IndexScheme::SyncInsert => 1,
        IndexScheme::AsyncSimple => 2,
        IndexScheme::AsyncSession => 3,
    });
}

/// Decode an [`IndexSpec`].
pub fn decode_index_spec(r: &mut BodyReader<'_>) -> Result<IndexSpec> {
    let name = r.str()?;
    let base_table = r.str()?;
    let columns = r.names()?;
    let scheme = match r.u8()? {
        0 => IndexScheme::SyncFull,
        1 => IndexScheme::SyncInsert,
        2 => IndexScheme::AsyncSimple,
        3 => IndexScheme::AsyncSession,
        s => return Err(ClusterError::Protocol(format!("unknown index scheme {s}"))),
    };
    Ok(IndexSpec { name, base_table, columns, scheme })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = encode_frame(OpCode::Put as u8, 42, b"body");
        let len = u32::from_le_bytes(f[0..4].try_into().unwrap());
        assert_eq!(check_frame_len(len).unwrap(), f.len() - 4);
        let dec = decode_frame(&f[4..]).unwrap();
        assert_eq!(dec.tag, OpCode::Put as u8);
        assert_eq!(dec.request_id, 42);
        assert_eq!(&dec.body[..], b"body");
    }

    #[test]
    fn frame_rejects_bad_version_and_short_frames() {
        let mut f = encode_frame(0x10, 1, b"").to_vec();
        f[4] = 9; // version byte
        assert!(matches!(decode_frame(&f[4..]), Err(ClusterError::Protocol(_))));
        assert!(matches!(decode_frame(&[1, 2, 3]), Err(ClusterError::Protocol(_))));
        assert!(check_frame_len(3).is_err());
        assert!(check_frame_len(MAX_FRAME + 1).is_err());
    }

    #[test]
    fn body_primitives_roundtrip() {
        let mut w = BodyWriter::new();
        w.u8(7).u32(1234).u64(u64::MAX).bytes(b"abc").str("täble").opt_bytes(None).opt_bytes(
            Some(&b"x\x00y"[..]),
        );
        let b = w.finish();
        let mut r = BodyReader::new(&b);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(&r.bytes().unwrap()[..], b"abc");
        assert_eq!(r.str().unwrap(), "täble");
        assert_eq!(r.opt_bytes().unwrap(), None);
        assert_eq!(&r.opt_bytes().unwrap().unwrap()[..], b"x\x00y");
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut w = BodyWriter::new();
        w.bytes(b"hello");
        let b = w.finish();
        // Truncate mid-string:
        let mut r = BodyReader::new(&b[..6]);
        assert!(r.bytes().is_err());
        // Trailing garbage:
        let mut long = b.to_vec();
        long.push(0xAA);
        let mut r = BodyReader::new(&long);
        r.bytes().unwrap();
        assert!(r.expect_end().is_err());
        // Absurd list count must not allocate:
        let mut w = BodyWriter::new();
        w.u32(u32::MAX);
        let b = w.finish();
        assert!(BodyReader::new(&b).count().is_err());
    }

    #[test]
    fn error_codec_roundtrips_every_variant() {
        let errors = [
            ClusterError::NoSuchTable("t".into()),
            ClusterError::ServerDown(3),
            ClusterError::NotServing { owner: 7 },
            ClusterError::Timeout("slow".into()),
            ClusterError::Io("reset".into()),
            ClusterError::Protocol("bad".into()),
            ClusterError::Unavailable("u".into()),
            ClusterError::StaleEpoch { owner: 2, epoch: 9 },
        ];
        for e in errors {
            let decoded = decode_error(&encode_error(&e));
            assert_eq!(decoded.to_string(), e.to_string());
            assert_eq!(decoded.is_retryable(), e.is_retryable());
        }
        // Storage flattens to Unavailable (non-retryable), not a panic:
        let s = ClusterError::Storage(diff_index_lsm::LsmError::Corruption("c".into()));
        let d = decode_error(&encode_error(&s));
        assert!(matches!(d, ClusterError::Unavailable(_)));
        assert!(!d.is_retryable());
    }

    #[test]
    fn put_outcome_roundtrip() {
        let o = PutOutcome {
            ts: 99,
            old_values: vec![
                (Bytes::from("a"), None),
                (Bytes::from("b"), Some(VersionedValue { value: Bytes::from("old"), ts: 42 })),
            ],
        };
        let d = decode_put_outcome(&encode_put_outcome(&o)).unwrap();
        assert_eq!(d.ts, 99);
        assert_eq!(d.old_values.len(), 2);
        assert_eq!(d.old_values[0], (Bytes::from("a"), None));
        assert_eq!(d.old_values[1].1.as_ref().unwrap().ts, 42);
    }

    #[test]
    fn index_spec_roundtrip() {
        for scheme in [
            IndexScheme::SyncFull,
            IndexScheme::SyncInsert,
            IndexScheme::AsyncSimple,
            IndexScheme::AsyncSession,
        ] {
            let spec = IndexSpec {
                name: "by_x".into(),
                base_table: "t".into(),
                columns: vec![Bytes::from("x"), Bytes::from("y")],
                scheme,
            };
            let mut w = BodyWriter::new();
            encode_index_spec(&mut w, &spec);
            let b = w.finish();
            let mut r = BodyReader::new(&b);
            let d = decode_index_spec(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(d.name, spec.name);
            assert_eq!(d.base_table, spec.base_table);
            assert_eq!(d.columns, spec.columns);
            assert_eq!(d.scheme, spec.scheme);
        }
    }

    #[test]
    fn opcode_byte_roundtrip_and_names_unique() {
        let mut names = std::collections::HashSet::new();
        for &op in OpCode::all() {
            assert_eq!(OpCode::from_u8(op as u8), Some(op));
            assert!(names.insert(op.name()), "duplicate opcode name {}", op.name());
        }
        assert_eq!(OpCode::from_u8(0xEE), None);
    }
}

//! The remote store client: routes requests to region servers over TCP,
//! caches the partition map, and retries transparently — the paper's
//! "client library" (§2.2) as a [`Store`] implementation, so observers,
//! AUQ read-repair, sessions and the YCSB driver run unmodified against it.
//!
//! ## Routing
//!
//! The client bootstraps a **roster** (`server id -> address`) from any
//! reachable server, then lazily fetches and caches a **partition map** per
//! table. Row-addressed requests are routed by binary search over region
//! start keys — the same `partition_point` rule the servers use — so a
//! fresh map always routes exactly like the server-side data path.
//!
//! ## Failure handling
//!
//! A request is retried (bounded attempts, exponential backoff) only when
//! its error [`is retryable`](ClusterError::is_retryable):
//!
//! * [`ClusterError::NotServing`] — the cached map is stale (a region
//!   moved); invalidate it, refetch, re-route.
//! * [`ClusterError::ServerDown`] — the region's host crashed; invalidate
//!   and re-route (the master may have reassigned).
//! * [`ClusterError::StaleEpoch`] — the write carried an epoch from before
//!   a failover; the cached map (and its epochs) is stale. Invalidate,
//!   refetch, re-stamp, re-send — this is what makes failover transparent
//!   to callers while zombies stay fenced out.
//! * [`ClusterError::Timeout`] / [`ClusterError::Io`] — the outcome of the
//!   attempt is *unknown*: the connection is discarded (never reused, so a
//!   straggler response can't be mismatched) and the request re-sent. This
//!   is safe because every Diff-Index client operation is idempotent:
//!   re-executing a put converges to the same base and index state (§4.3 —
//!   the index entry key depends only on value and row, and SU3 skips the
//!   delete when old == new value).
//!
//! Semantic rejections (`NoSuchTable`, `Protocol`, …) are never retried.

use crate::wire::{
    self, BodyReader, BodyWriter, OpCode, STATUS_ERR, STATUS_OK,
};
use bytes::Bytes;
use diff_index_cluster::encoding::row_start;
use diff_index_cluster::{ClusterError, ColumnValue, PutOutcome, Result, RowGroup, ServerId};
use diff_index_core::{IndexSpec, Store};
use diff_index_lsm::VersionedValue;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasher;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct RemoteClientOptions {
    /// Per-request deadline (connect, send, receive).
    pub request_timeout: Duration,
    /// Deadline for index administration requests (`CREATE INDEX` backfills;
    /// `Quiesce` blocks until AUQs drain), which legitimately run long.
    pub admin_timeout: Duration,
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per retry, capped at 100 ms.
    /// The actual sleep is jittered (half fixed, half uniform-random) so a
    /// cohort of clients retrying after one failover event spreads out
    /// instead of stampeding the new owner in lockstep.
    pub backoff: Duration,
    /// Idle pooled connections kept per server address.
    pub pool_per_addr: usize,
}

impl Default for RemoteClientOptions {
    fn default() -> Self {
        Self {
            request_timeout: Duration::from_secs(5),
            admin_timeout: Duration::from_secs(60),
            max_attempts: 4,
            backoff: Duration::from_millis(2),
            pool_per_addr: 4,
        }
    }
}

/// A cached table partition map: `(region start key, owner, epoch)` sorted
/// by start key. The epoch stamps every write routed through the entry;
/// servers fence stamps from before a failover with
/// [`ClusterError::StaleEpoch`].
type TableMap = Arc<Vec<(Bytes, ServerId, u64)>>;

struct ClientInner {
    bootstrap: Vec<String>,
    opts: RemoteClientOptions,
    /// `server id -> address`, refreshed from the servers' shared roster.
    roster: Mutex<BTreeMap<ServerId, String>>,
    /// Cached per-table partition maps: `(region start key, owner)` sorted
    /// by start key. Invalidated wholesale on `NotServing`/`ServerDown`.
    maps: Mutex<HashMap<String, TableMap>>,
    /// Idle pooled connections per address. A connection is pooled only
    /// after a fully successful exchange.
    pool: Mutex<HashMap<String, Vec<TcpStream>>>,
    next_id: AtomicU64,
}

/// A [`Store`] backed by region servers reached over TCP. Cheap to clone;
/// clones share the connection pool and routing caches.
#[derive(Clone)]
pub struct RemoteClient {
    inner: Arc<ClientInner>,
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteClient").field("bootstrap", &self.inner.bootstrap).finish()
    }
}

impl RemoteClient {
    /// Connect to a cluster through one or more bootstrap addresses and
    /// fetch the initial roster.
    pub fn connect(bootstrap: Vec<String>, opts: RemoteClientOptions) -> Result<RemoteClient> {
        assert!(!bootstrap.is_empty(), "need at least one bootstrap address");
        assert!(opts.max_attempts >= 1, "max_attempts must be at least 1");
        let client = RemoteClient {
            inner: Arc::new(ClientInner {
                bootstrap,
                opts,
                roster: Mutex::new(BTreeMap::new()),
                maps: Mutex::new(HashMap::new()),
                pool: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(1),
            }),
        };
        client.refresh_roster()?;
        Ok(client)
    }

    /// [`RemoteClient::connect`] with default options.
    pub fn connect_default(bootstrap: Vec<String>) -> Result<RemoteClient> {
        Self::connect(bootstrap, RemoteClientOptions::default())
    }

    // -- transport -----------------------------------------------------------

    fn checkout(&self, addr: &str) -> Result<TcpStream> {
        if let Some(conn) = self.inner.pool.lock().get_mut(addr).and_then(Vec::pop) {
            return Ok(conn);
        }
        let sa = addr
            .parse::<std::net::SocketAddr>()
            .map_err(|e| ClusterError::Io(format!("bad address {addr}: {e}")))?;
        let conn = TcpStream::connect_timeout(&sa, self.inner.opts.request_timeout)
            .map_err(|e| ClusterError::Io(format!("connect {addr}: {e}")))?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    fn checkin(&self, addr: &str, conn: TcpStream) {
        let mut pool = self.inner.pool.lock();
        let conns = pool.entry(addr.to_string()).or_default();
        if conns.len() < self.inner.opts.pool_per_addr {
            conns.push(conn);
        }
    }

    /// One request/response exchange on one connection, no retries. Any
    /// failure discards the connection (its stream state is unknown).
    fn exchange(&self, addr: &str, op: OpCode, body: &[u8], timeout: Duration) -> Result<Bytes> {
        let mut conn = self.checkout(addr)?;
        conn.set_read_timeout(Some(timeout))
            .map_err(|e| ClusterError::Io(format!("set timeout: {e}")))?;
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = wire::encode_frame(op as u8, id, body);
        conn.write_all(&frame).map_err(|e| ClusterError::Io(format!("send {addr}: {e}")))?;

        let mut len_buf = [0u8; 4];
        read_full(&mut conn, &mut len_buf, addr)?;
        let len = wire::check_frame_len(u32::from_le_bytes(len_buf))?;
        let mut payload = vec![0u8; len];
        read_full(&mut conn, &mut payload, addr)?;
        let resp = wire::decode_frame(&payload)?;
        if resp.request_id != id {
            return Err(ClusterError::Protocol(format!(
                "response id {} for request {id}",
                resp.request_id
            )));
        }
        let out = match resp.tag {
            STATUS_OK => Ok(resp.body),
            STATUS_ERR => Err(wire::decode_error(&resp.body)),
            t => Err(ClusterError::Protocol(format!("bad status byte {t}"))),
        };
        // Pool the connection again only after a clean exchange — an error
        // response still left the stream frame-aligned.
        if !matches!(out, Err(ClusterError::Protocol(_))) {
            self.checkin(addr, conn);
        }
        out
    }

    // -- routing state -------------------------------------------------------

    /// Addresses worth talking to: known roster entries, then bootstrap.
    fn candidate_addrs(&self) -> Vec<String> {
        let mut addrs: Vec<String> = self.inner.roster.lock().values().cloned().collect();
        for b in &self.inner.bootstrap {
            if !addrs.contains(b) {
                addrs.push(b.clone());
            }
        }
        addrs
    }

    fn refresh_roster(&self) -> Result<()> {
        let mut last = ClusterError::Io("no servers reachable".into());
        for addr in self.candidate_addrs() {
            match self.exchange(&addr, OpCode::Roster, &[], self.inner.opts.request_timeout) {
                Ok(body) => {
                    let mut r = BodyReader::new(&body);
                    let n = r.count()?;
                    let mut roster = BTreeMap::new();
                    for _ in 0..n {
                        let id = r.u32()?;
                        let a = r.str()?;
                        roster.insert(id, a);
                    }
                    r.expect_end()?;
                    *self.inner.roster.lock() = roster;
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn fetch_map(&self, table: &str) -> Result<TableMap> {
        let mut w = BodyWriter::new();
        w.str(table);
        let body = self.request_any(OpCode::PartitionMap, &w.finish())?;
        let mut r = BodyReader::new(&body);
        let n = r.count()?;
        let mut map = Vec::with_capacity(n);
        for _ in 0..n {
            let start = r.bytes()?;
            let _region = r.u32()?;
            let server = r.u32()?;
            let epoch = r.u64()?;
            map.push((start, server, epoch));
        }
        r.expect_end()?;
        if map.is_empty() {
            return Err(ClusterError::Protocol(format!("empty partition map for {table}")));
        }
        let map = Arc::new(map);
        self.inner.maps.lock().insert(table.to_string(), Arc::clone(&map));
        Ok(map)
    }

    fn map_of(&self, table: &str) -> Result<TableMap> {
        if let Some(m) = self.inner.maps.lock().get(table) {
            return Ok(Arc::clone(m));
        }
        self.fetch_map(table)
    }

    /// Drop the cached map (and, cheaply, refresh the roster) after a
    /// routing error told us it is stale.
    fn invalidate(&self, table: &str) {
        self.inner.maps.lock().remove(table);
        let _ = self.refresh_roster();
    }

    /// Owner and epoch of `row`'s region under the cached map — the
    /// client-side mirror of `PartitionMap::server_for`: regions are sorted
    /// by start key and a key belongs to the last region starting at or
    /// before it.
    fn route_of(&self, table: &str, row: &[u8]) -> Result<(ServerId, u64)> {
        let map = self.map_of(table)?;
        let key = row_start(row);
        let idx = map.partition_point(|(start, _, _)| start.as_ref() <= key.as_ref());
        let (_, server, epoch) = &map[idx.saturating_sub(1)];
        Ok((*server, *epoch))
    }

    /// Owner of `row` under the cached map (reads don't stamp epochs).
    fn owner_of(&self, table: &str, row: &[u8]) -> Result<ServerId> {
        Ok(self.route_of(table, row)?.0)
    }

    fn addr_of(&self, server: ServerId) -> Result<String> {
        if let Some(a) = self.inner.roster.lock().get(&server) {
            return Ok(a.clone());
        }
        self.refresh_roster()?;
        self.inner
            .roster
            .lock()
            .get(&server)
            .cloned()
            .ok_or_else(|| ClusterError::Io(format!("no address for server {server}")))
    }

    fn backoff(&self, attempt: u32) {
        let base = self.inner.opts.backoff.max(Duration::from_micros(100));
        let ceiling = base.saturating_mul(1 << attempt.min(6)).min(Duration::from_millis(100));
        // Equal jitter: sleep half the exponential ceiling plus a uniform
        // random slice of the other half. One failover event wakes every
        // blocked client at once; without jitter they would all retry the
        // new owner at the same instants. `RandomState`'s per-instance seed
        // is the stdlib's entropy source — no external rand dependency.
        let nanos = (ceiling.as_nanos() as u64).max(2);
        let jitter = std::collections::hash_map::RandomState::new().hash_one(attempt)
            % (nanos / 2).max(1);
        std::thread::sleep(Duration::from_nanos(nanos / 2 + jitter));
    }

    // -- retry wrappers ------------------------------------------------------

    /// Row-addressed request: route by cached map, retry with invalidation
    /// on routing staleness and with plain re-send on ambiguous transport
    /// failures (see module docs for why that is safe).
    fn request_routed(&self, table: &str, row: &[u8], op: OpCode, body: &[u8]) -> Result<Bytes> {
        let mut last = None;
        for attempt in 0..self.inner.opts.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            let target = self.owner_of(table, row).and_then(|owner| self.addr_of(owner));
            let addr = match target {
                Ok(a) => a,
                Err(e) if e.is_retryable() => {
                    self.invalidate(table);
                    last = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match self.exchange(&addr, op, body, self.inner.opts.request_timeout) {
                Ok(b) => return Ok(b),
                Err(e) if e.is_retryable() => {
                    if matches!(
                        e,
                        ClusterError::NotServing { .. }
                            | ClusterError::ServerDown(_)
                            | ClusterError::StaleEpoch { .. }
                    ) {
                        self.invalidate(table);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ClusterError::Io("request retries exhausted".into())))
    }

    /// Row-addressed *write*: like [`RemoteClient::request_routed`], but the
    /// body is rebuilt per attempt with the current epoch of the row's
    /// region, so a retry after `StaleEpoch`/`ServerDown` invalidation is
    /// automatically re-stamped from the refreshed map — client-transparent
    /// failover.
    fn request_routed_write(
        &self,
        table: &str,
        row: &[u8],
        op: OpCode,
        build: impl Fn(u64) -> Bytes,
    ) -> Result<Bytes> {
        let mut last = None;
        for attempt in 0..self.inner.opts.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            let target = self
                .route_of(table, row)
                .and_then(|(owner, epoch)| Ok((self.addr_of(owner)?, epoch)));
            let (addr, epoch) = match target {
                Ok(t) => t,
                Err(e) if e.is_retryable() => {
                    self.invalidate(table);
                    last = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match self.exchange(&addr, op, &build(epoch), self.inner.opts.request_timeout) {
                Ok(b) => return Ok(b),
                Err(e) if e.is_retryable() => {
                    if matches!(
                        e,
                        ClusterError::NotServing { .. }
                            | ClusterError::ServerDown(_)
                            | ClusterError::StaleEpoch { .. }
                    ) {
                        self.invalidate(table);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ClusterError::Io("request retries exhausted".into())))
    }

    /// Location-independent request (scans, table/index admin, metadata):
    /// any server acts as gateway; rotate through servers on failure.
    fn request_any_with_timeout(
        &self,
        op: OpCode,
        body: &[u8],
        timeout: Duration,
    ) -> Result<Bytes> {
        let mut last = None;
        for attempt in 0..self.inner.opts.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            let addrs = self.candidate_addrs();
            if addrs.is_empty() {
                return Err(ClusterError::Io("no known servers".into()));
            }
            let addr = &addrs[attempt as usize % addrs.len()];
            match self.exchange(addr, op, body, timeout) {
                Ok(b) => return Ok(b),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ClusterError::Io("request retries exhausted".into())))
    }

    fn request_any(&self, op: OpCode, body: &[u8]) -> Result<Bytes> {
        self.request_any_with_timeout(op, body, self.inner.opts.request_timeout)
    }

    /// Liveness probe against any server.
    pub fn ping(&self) -> Result<()> {
        self.request_any(OpCode::Ping, &[]).map(|_| ())
    }

    /// Liveness probe against one specific server — the prober a
    /// [`HealthMonitor`](diff_index_cluster::HealthMonitor) uses in net
    /// mode. Single attempt, no retries: a probe must report the failure,
    /// not mask it.
    pub fn ping_server(&self, server: ServerId) -> Result<()> {
        let addr = self.addr_of(server)?;
        self.exchange(&addr, OpCode::Ping, &[], self.inner.opts.request_timeout).map(|_| ())
    }
}

fn read_full(conn: &mut TcpStream, buf: &mut [u8], addr: &str) -> Result<()> {
    let mut read = 0usize;
    while read < buf.len() {
        match conn.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(ClusterError::Io(format!("{addr}: connection closed mid-response")))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(ClusterError::Timeout(format!("{addr}: no response within deadline")))
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ClusterError::Io(format!("{addr}: {e}"))),
        }
    }
    Ok(())
}

fn decode_scan(body: &[u8]) -> Result<Vec<RowGroup>> {
    let mut r = BodyReader::new(body);
    let n = r.count()?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(r.row_group()?);
    }
    r.expect_end()?;
    Ok(rows)
}

fn decode_u64(body: &[u8]) -> Result<u64> {
    let mut r = BodyReader::new(body);
    let v = r.u64()?;
    r.expect_end()?;
    Ok(v)
}

fn expect_empty(body: &[u8]) -> Result<()> {
    BodyReader::new(body).expect_end()
}

impl Store for RemoteClient {
    fn put(&self, table: &str, row: &[u8], columns: &[ColumnValue]) -> Result<u64> {
        let body = self.request_routed_write(table, row, OpCode::Put, |epoch| {
            let mut w = BodyWriter::new();
            w.str(table).bytes(row).columns(columns).u64(epoch);
            w.finish()
        })?;
        decode_u64(&body)
    }

    fn put_batch(&self, table: &str, rows: &[(Bytes, Vec<ColumnValue>)]) -> Result<Vec<u64>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        // Group rows by owning server and send one PutBatch per server; rows
        // of a group that fails retryably stay pending and are re-grouped
        // (the map may have changed) on the next attempt. Timestamps are
        // stitched back together in input order.
        let mut stamps = vec![0u64; rows.len()];
        let mut pending: Vec<usize> = (0..rows.len()).collect();
        let mut last = None;
        for attempt in 0..self.inner.opts.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            let mut groups: HashMap<ServerId, Vec<(usize, u64)>> = HashMap::new();
            let mut routing_failed = Vec::new();
            for &i in &pending {
                match self.route_of(table, &rows[i].0) {
                    Ok((owner, epoch)) => groups.entry(owner).or_default().push((i, epoch)),
                    Err(e) if e.is_retryable() => {
                        self.invalidate(table);
                        last = Some(e);
                        routing_failed.push(i);
                    }
                    Err(e) => return Err(e),
                }
            }
            let mut still_pending = routing_failed;
            for (owner, idxs) in groups {
                let mut w = BodyWriter::new();
                w.str(table).u32(idxs.len() as u32);
                for &(i, epoch) in &idxs {
                    w.bytes(&rows[i].0).columns(&rows[i].1).u64(epoch);
                }
                let outcome = self
                    .addr_of(owner)
                    .and_then(|addr| {
                        self.exchange(
                            &addr,
                            OpCode::PutBatch,
                            &w.finish(),
                            self.inner.opts.request_timeout,
                        )
                    })
                    .and_then(|body| {
                        let mut r = BodyReader::new(&body);
                        let n = r.count()?;
                        if n != idxs.len() {
                            return Err(ClusterError::Protocol(format!(
                                "batch returned {n} stamps for {} rows",
                                idxs.len()
                            )));
                        }
                        let mut ts = Vec::with_capacity(n);
                        for _ in 0..n {
                            ts.push(r.u64()?);
                        }
                        r.expect_end()?;
                        Ok(ts)
                    });
                match outcome {
                    Ok(ts) => {
                        for (&(i, _), t) in idxs.iter().zip(ts) {
                            stamps[i] = t;
                        }
                    }
                    Err(e) if e.is_retryable() => {
                        if matches!(
                            e,
                            ClusterError::NotServing { .. }
                                | ClusterError::ServerDown(_)
                                | ClusterError::StaleEpoch { .. }
                        ) {
                            self.invalidate(table);
                        }
                        last = Some(e);
                        still_pending.extend(idxs.iter().map(|&(i, _)| i));
                    }
                    Err(e) => return Err(e),
                }
            }
            pending = still_pending;
            if pending.is_empty() {
                return Ok(stamps);
            }
        }
        Err(last.unwrap_or_else(|| ClusterError::Io("batch retries exhausted".into())))
    }

    fn put_returning(&self, table: &str, row: &[u8], columns: &[ColumnValue]) -> Result<PutOutcome> {
        let body = self.request_routed_write(table, row, OpCode::PutReturning, |epoch| {
            let mut w = BodyWriter::new();
            w.str(table).bytes(row).columns(columns).u64(epoch);
            w.finish()
        })?;
        wire::decode_put_outcome(&body)
    }

    fn delete(&self, table: &str, row: &[u8], columns: &[Bytes]) -> Result<u64> {
        let body = self.request_routed_write(table, row, OpCode::Delete, |epoch| {
            let mut w = BodyWriter::new();
            w.str(table).bytes(row).names(columns).u64(epoch);
            w.finish()
        })?;
        decode_u64(&body)
    }

    fn raw_put(&self, table: &str, row: &[u8], columns: &[ColumnValue], ts: u64) -> Result<()> {
        let body = self.request_routed_write(table, row, OpCode::RawPut, |epoch| {
            let mut w = BodyWriter::new();
            w.str(table).bytes(row).columns(columns).u64(ts).u64(epoch);
            w.finish()
        })?;
        expect_empty(&body)
    }

    fn raw_delete(&self, table: &str, row: &[u8], columns: &[Bytes], ts: u64) -> Result<()> {
        let body = self.request_routed_write(table, row, OpCode::RawDelete, |epoch| {
            let mut w = BodyWriter::new();
            w.str(table).bytes(row).names(columns).u64(ts).u64(epoch);
            w.finish()
        })?;
        expect_empty(&body)
    }

    fn get(&self, table: &str, row: &[u8], column: &[u8], ts: u64) -> Result<Option<VersionedValue>> {
        let mut w = BodyWriter::new();
        w.str(table).bytes(row).bytes(column).u64(ts);
        let body = self.request_routed(table, row, OpCode::Get, &w.finish())?;
        let mut r = BodyReader::new(&body);
        let out = match r.u8()? {
            0 => None,
            1 => Some(r.versioned()?),
            t => return Err(ClusterError::Protocol(format!("bad option tag {t}"))),
        };
        r.expect_end()?;
        Ok(out)
    }

    fn get_cell_versioned(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> Result<Option<(u64, bool)>> {
        let mut w = BodyWriter::new();
        w.str(table).bytes(row).bytes(column).u64(ts);
        let body = self.request_routed(table, row, OpCode::GetCellVersioned, &w.finish())?;
        let mut r = BodyReader::new(&body);
        let out = match r.u8()? {
            0 => None,
            1 => {
                let cts = r.u64()?;
                let tomb = r.u8()? != 0;
                Some((cts, tomb))
            }
            t => return Err(ClusterError::Protocol(format!("bad option tag {t}"))),
        };
        r.expect_end()?;
        Ok(out)
    }

    fn get_row(&self, table: &str, row: &[u8], ts: u64) -> Result<Vec<(Bytes, VersionedValue)>> {
        let mut w = BodyWriter::new();
        w.str(table).bytes(row).u64(ts);
        let body = self.request_routed(table, row, OpCode::GetRow, &w.finish())?;
        let mut r = BodyReader::new(&body);
        let n = r.count()?;
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.bytes()?;
            let v = r.versioned()?;
            cols.push((c, v));
        }
        r.expect_end()?;
        Ok(cols)
    }

    fn scan_rows(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> Result<Vec<RowGroup>> {
        let mut w = BodyWriter::new();
        w.str(table).bytes(start_row).opt_bytes(end_row).u64(ts).u64(limit as u64);
        decode_scan(&self.request_any(OpCode::ScanRows, &w.finish())?)
    }

    fn scan_rows_prefix(
        &self,
        table: &str,
        row_prefix: &[u8],
        ts: u64,
        limit: usize,
    ) -> Result<Vec<RowGroup>> {
        let mut w = BodyWriter::new();
        w.str(table).bytes(row_prefix).u64(ts).u64(limit as u64);
        decode_scan(&self.request_any(OpCode::ScanRowsPrefix, &w.finish())?)
    }

    fn scan_rows_range(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> Result<Vec<RowGroup>> {
        let mut w = BodyWriter::new();
        w.str(table).bytes(start_row).opt_bytes(end_row).u64(ts).u64(limit as u64);
        decode_scan(&self.request_any(OpCode::ScanRowsRange, &w.finish())?)
    }

    fn create_table(&self, name: &str, num_regions: usize) -> Result<()> {
        let mut w = BodyWriter::new();
        w.str(name).u32(num_regions as u32);
        expect_empty(&self.request_any(OpCode::CreateTable, &w.finish())?)
    }

    fn has_table(&self, table: &str) -> Result<bool> {
        let mut w = BodyWriter::new();
        w.str(table);
        let body = self.request_any(OpCode::HasTable, &w.finish())?;
        let mut r = BodyReader::new(&body);
        let v = r.u8()? != 0;
        r.expect_end()?;
        Ok(v)
    }

    fn flush_table(&self, table: &str) -> Result<()> {
        let mut w = BodyWriter::new();
        w.str(table);
        expect_empty(&self.request_any(OpCode::FlushTable, &w.finish())?)
    }

    fn admin_create_index(&self, spec: &IndexSpec, num_regions: usize) -> Result<()> {
        let mut w = BodyWriter::new();
        wire::encode_index_spec(&mut w, spec);
        w.u32(num_regions as u32);
        expect_empty(&self.request_any_with_timeout(
            OpCode::CreateIndex,
            &w.finish(),
            self.inner.opts.admin_timeout,
        )?)
    }

    fn admin_drop_index(&self, base_table: &str, name: &str) -> Result<()> {
        let mut w = BodyWriter::new();
        w.str(base_table).str(name);
        expect_empty(&self.request_any_with_timeout(
            OpCode::DropIndex,
            &w.finish(),
            self.inner.opts.admin_timeout,
        )?)
    }

    fn admin_quiesce(&self, base_table: &str) -> Result<()> {
        let mut w = BodyWriter::new();
        w.str(base_table);
        expect_empty(&self.request_any_with_timeout(
            OpCode::Quiesce,
            &w.finish(),
            self.inner.opts.admin_timeout,
        )?)
    }
}

//! # diff-index-net
//!
//! The TCP network layer for the Diff-Index reproduction: a compact binary
//! wire protocol ([`wire`]), a region-server frontend ([`Server`] /
//! [`ServerGroup`]) with pipelined dispatch, per-opcode metrics and
//! graceful drain-before-stop shutdown, and a routing, retrying
//! [`RemoteClient`] that implements the index layer's
//! [`Store`](diff_index_core::Store) trait — so schemes, sessions,
//! verification and the YCSB driver run unchanged over a real socket.
//!
//! Everything is built on `std::net` + threads; there is no async runtime
//! and no external dependency.
//!
//! ```no_run
//! use diff_index_cluster::{Cluster, ClusterOptions};
//! use diff_index_core::DiffIndex;
//! use diff_index_net::{RemoteClient, ServerGroup};
//! use std::sync::Arc;
//!
//! let cluster = Cluster::new("/tmp/data", ClusterOptions::default()).unwrap();
//! let di = DiffIndex::new(cluster);
//! let group = ServerGroup::start(&di).unwrap();           // one listener per region server
//! let client = RemoteClient::connect_default(group.addrs()).unwrap();
//! let remote_di = DiffIndex::over_store(Arc::new(client)); // same API, over TCP
//! # drop(remote_di);
//! group.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{RemoteClient, RemoteClientOptions};
pub use metrics::{NetMetricsSnapshot, OpMetricsSnapshot};
pub use server::{Roster, Server, ServerGroup};
pub use wire::OpCode;

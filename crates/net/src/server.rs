//! The region-server network frontend: one TCP listener per region server,
//! serving the wire protocol of [`crate::wire`] against an in-process
//! [`Cluster`].
//!
//! ## Topology
//!
//! The repo's `Cluster` simulates N region servers inside one process; the
//! network layer gives each of them a real listener. A [`ServerGroup`]
//! binds one [`Server`] per cluster `ServerId` on loopback, all sharing the
//! cluster and one [`DiffIndex`] (for server-side index administration —
//! observers and AUQs live next to the data, as coprocessors do in HBase).
//! Each server *polices ownership*: a row-addressed request for a region
//! it does not host is rejected with [`ClusterError::NotServing`] carrying
//! the current owner, exactly like HBase's `NotServingRegionException` —
//! that is what drives client partition-map invalidation.
//!
//! ## Threading
//!
//! One accept thread per server; one reader thread per connection. A reader
//! decodes frames and hands each request to the cluster's existing
//! [`FanoutPool`](diff_index_cluster::FanoutPool) without waiting for the
//! result, so a connection can carry many requests in flight (pipelining);
//! responses carry the request id and may complete out of order. Writes to
//! a connection are serialized by a per-connection mutex.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] is graceful and ordered: stop accepting, stop
//! reading new frames, then **drain** — every request already dispatched
//! writes its response before `shutdown` returns. Only after that may the
//! caller stop AUQ workers and drop the cluster, so a client can never
//! observe an acknowledged write that the store subsequently forgot.

use crate::metrics::{NetMetrics, NetMetricsSnapshot};
use crate::wire::{
    self, BodyReader, BodyWriter, OpCode, STATUS_ERR, STATUS_OK,
};
use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterError, Result, ServerId};
use diff_index_core::{DiffIndex, IndexError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a connection reader blocks on the socket before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Shared `server id -> address` registry. Every [`Server`] of a group
/// registers itself here at bind time; clients bootstrap their routing
/// state from it via the `Roster` opcode (the stand-in for HBase's META).
#[derive(Clone, Default)]
pub struct Roster {
    inner: Arc<Mutex<BTreeMap<ServerId, String>>>,
}

impl Roster {
    /// Empty roster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a server's address.
    pub fn insert(&self, id: ServerId, addr: String) {
        self.inner.lock().insert(id, addr);
    }

    /// All `(server id, address)` pairs.
    pub fn entries(&self) -> Vec<(ServerId, String)> {
        self.inner.lock().iter().map(|(k, v)| (*k, v.clone())).collect()
    }
}

struct Inner {
    di: DiffIndex,
    /// The cluster server id this listener fronts; `None` serves every
    /// region (single-listener gateway mode, no ownership policing).
    served_id: Option<ServerId>,
    roster: Roster,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Requests dispatched but not yet responded to.
    inflight: AtomicUsize,
    metrics: NetMetrics,
    /// Fault injection: when set, the next completed request's response is
    /// discarded and its connection destroyed — the request *was* applied,
    /// the client just never learns. Exercises ambiguous-ack retries.
    drop_next_response: AtomicBool,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Clones of every *live* connection's socket, keyed by connection id,
    /// so fault injection can sever them from outside the reader threads.
    /// Entries are removed when a connection ends — a lingering clone would
    /// hold the duplicated fd open and suppress the FIN the client expects.
    socks: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A TCP frontend for one region server of an in-process cluster.
pub struct Server {
    inner: Arc<Inner>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.inner.addr)
            .field("served_id", &self.inner.served_id)
            .finish()
    }
}

impl Server {
    /// Bind a listener on `addr` (use `127.0.0.1:0` for an ephemeral port)
    /// fronting `di`'s cluster, and register it in `roster`. `served_id`
    /// scopes ownership policing; `None` makes this a serve-anything
    /// gateway.
    pub fn start(
        di: DiffIndex,
        addr: &str,
        served_id: Option<ServerId>,
        roster: Roster,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        roster.insert(served_id.unwrap_or(0), local.to_string());
        let inner = Arc::new(Inner {
            di,
            served_id,
            roster,
            addr: local,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            metrics: NetMetrics::default(),
            drop_next_response: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            socks: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name(format!("net-accept-{}", served_id.unwrap_or(0)))
            .spawn(move || accept_loop(&accept_inner, listener))?;
        Ok(Server { inner, accept: Mutex::new(Some(accept)) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Per-opcode request/byte/latency metrics.
    pub fn metrics(&self) -> NetMetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Fault injection: make the next completed request drop its response
    /// and kill its connection (the request itself still executes). See
    /// [`Inner::drop_next_response`]'s semantics in the module docs.
    pub fn drop_next_response(&self) {
        self.inner.drop_next_response.store(true, Ordering::SeqCst);
    }

    /// Disarm a pending [`Server::drop_next_response`] that never fired, so
    /// a leftover trigger cannot swallow the response of a later,
    /// unrelated request (e.g. a verification read).
    pub fn clear_drop_next_response(&self) {
        self.inner.drop_next_response.store(false, Ordering::SeqCst);
    }

    /// Fault injection: abruptly sever every currently open client
    /// connection (a network partition between client and this server).
    /// Requests already dispatched still execute — only their responses are
    /// lost — so every in-flight write becomes an ambiguous ack at the
    /// client. Returns how many sockets were severed (dead ones included).
    pub fn kill_connections(&self) -> usize {
        let socks: Vec<TcpStream> =
            self.inner.socks.lock().drain().map(|(_, s)| s).collect();
        for s in &socks {
            let _ = s.shutdown(Shutdown::Both);
        }
        socks.len()
    }

    /// Graceful, ordered shutdown: stop accepting, stop reading frames,
    /// drain every dispatched request (responses written) and only then
    /// return. Idempotent. Call this *before* tearing down AUQ workers or
    /// the cluster.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            // Another caller already shut down (or is doing so); just wait
            // for the drain below.
        }
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the flag.
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
        // Connection readers observe the flag within READ_POLL and exit;
        // responses for frames they already dispatched are still written
        // because each dispatched job owns a clone of its socket.
        let handles: Vec<_> = self.inner.conns.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        while self.inner.inflight.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One listener per region server of `di`'s cluster, all on loopback
/// ephemeral ports, sharing one roster — the standard multi-server
/// topology for tests and loopback benchmarks.
pub struct ServerGroup {
    servers: Vec<Server>,
    roster: Roster,
}

impl ServerGroup {
    /// Start a listener for every live server of the cluster.
    pub fn start(di: &DiffIndex) -> std::io::Result<ServerGroup> {
        let roster = Roster::new();
        let mut servers = Vec::new();
        for sid in di.cluster().servers() {
            servers.push(Server::start(di.clone(), "127.0.0.1:0", Some(sid), roster.clone())?);
        }
        Ok(ServerGroup { servers, roster })
    }

    /// Addresses of every listener (bootstrap list for a client).
    pub fn addrs(&self) -> Vec<String> {
        self.servers.iter().map(|s| s.addr().to_string()).collect()
    }

    /// The shared roster.
    pub fn roster(&self) -> &Roster {
        &self.roster
    }

    /// The servers, in cluster `ServerId` order.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Merged metrics across all listeners.
    pub fn metrics(&self) -> Vec<NetMetricsSnapshot> {
        self.servers.iter().map(|s| s.metrics()).collect()
    }

    /// Sever every open client connection on every listener (see
    /// [`Server::kill_connections`]). Returns the total severed.
    pub fn kill_connections(&self) -> usize {
        self.servers.iter().map(Server::kill_connections).sum()
    }

    /// Shut every listener down gracefully (drains in-flight requests).
    pub fn shutdown(&self) {
        for s in &self.servers {
            s.shutdown();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_inner = Arc::clone(inner);
        let h = std::thread::Builder::new()
            .name("net-conn".into())
            .spawn(move || conn_loop(&conn_inner, stream))
            .expect("spawn connection thread");
        inner.conns.lock().push(h);
    }
}

/// Outcome of trying to read one full frame.
enum ReadFrame {
    Frame(Vec<u8>),
    /// Peer closed, or shutdown requested while idle / mid-frame.
    Done,
}

fn read_frame(stream: &mut TcpStream, inner: &Inner) -> std::io::Result<ReadFrame> {
    let mut len_buf = [0u8; 4];
    if !read_full(stream, &mut len_buf, inner)? {
        return Ok(ReadFrame::Done);
    }
    let len = match wire::check_frame_len(u32::from_le_bytes(len_buf)) {
        Ok(l) => l,
        Err(_) => {
            // Unframeable garbage: nothing else on this connection can be
            // trusted either.
            return Err(std::io::Error::new(ErrorKind::InvalidData, "bad frame length"));
        }
    };
    let mut payload = vec![0u8; len];
    if !read_full(stream, &mut payload, inner)? {
        return Ok(ReadFrame::Done);
    }
    Ok(ReadFrame::Frame(payload))
}

/// Read exactly `buf.len()` bytes, tolerating read timeouts (used to poll
/// the shutdown flag). Returns `false` on clean EOF before the first byte
/// or when shutdown is requested.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], inner: &Inner) -> std::io::Result<bool> {
    let mut read = 0usize;
    while read < buf.len() {
        match stream.read(&mut buf[read..]) {
            Ok(0) => return Ok(false),
            Ok(n) => read += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn conn_loop(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Register a clone for fault injection, and make sure it is dropped when
    // this connection ends: a lingering clone would hold the duplicated fd
    // open, suppressing the FIN/RST the client is waiting for.
    struct SockGuard<'a>(&'a Inner, u64);
    impl Drop for SockGuard<'_> {
        fn drop(&mut self) {
            self.0.socks.lock().remove(&self.1);
        }
    }
    let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
    let _sock_guard = match stream.try_clone() {
        Ok(s) => {
            inner.socks.lock().insert(conn_id, s);
            Some(SockGuard(inner, conn_id))
        }
        Err(_) => None,
    };
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut stream, inner) {
            Ok(ReadFrame::Frame(p)) => p,
            Ok(ReadFrame::Done) => return,
            Err(_) => return,
        };
        let bytes_in = (4 + payload.len()) as u64;
        let frame = match wire::decode_frame(&payload) {
            Ok(f) => f,
            Err(e) => {
                // Header unreadable: answer with request id 0 and give up on
                // the stream (framing may be corrupt).
                let resp = wire::encode_frame(STATUS_ERR, 0, &wire::encode_error(&e));
                let _ = writer.lock().write_all(&resp);
                return;
            }
        };
        let Some(op) = OpCode::from_u8(frame.tag) else {
            let e = ClusterError::Protocol(format!("unknown opcode 0x{:02x}", frame.tag));
            let resp = wire::encode_frame(STATUS_ERR, frame.request_id, &wire::encode_error(&e));
            let _ = writer.lock().write_all(&resp);
            continue;
        };
        // Pipelined dispatch: hand the request to the cluster's fan-out
        // pool and go straight back to reading the next frame. The response
        // is written (out of order if need be) under the writer mutex.
        inner.inflight.fetch_add(1, Ordering::AcqRel);
        let job_inner = Arc::clone(inner);
        let job_writer = Arc::clone(&writer);
        inner.di.cluster().fanout().spawn(move || {
            let guard = InflightGuard(&job_inner.inflight);
            let t0 = Instant::now();
            let result = handle(&job_inner, op, &frame.body);
            let (status, body) = match &result {
                Ok(b) => (STATUS_OK, b.clone()),
                Err(e) => (STATUS_ERR, wire::encode_error(e)),
            };
            let resp = wire::encode_frame(status, frame.request_id, &body);
            if job_inner.drop_next_response.swap(false, Ordering::SeqCst) {
                // Fault injection: the request executed, but the client
                // never hears back — its retry must be harmless.
                let w = job_writer.lock();
                let _ = w.shutdown(Shutdown::Both);
            } else {
                let mut w = job_writer.lock();
                let _ = w.write_all(&resp);
            }
            job_inner.metrics.record(
                op,
                bytes_in,
                resp.len() as u64,
                t0.elapsed().as_micros() as u64,
                status == STATUS_ERR,
            );
            drop(guard);
        });
    }
}

/// Decrements the in-flight counter when the dispatch job finishes, even if
/// request handling panics — otherwise `shutdown()` would hang forever.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Reject row-addressed requests for regions this listener does not host.
fn check_owner(inner: &Inner, cluster: &Cluster, table: &str, row: &[u8]) -> Result<()> {
    if let Some(me) = inner.served_id {
        let owner = cluster.server_for_row(table, row)?;
        if owner != me {
            return Err(ClusterError::NotServing { owner });
        }
    }
    Ok(())
}

/// Police a write's epoch stamp (after ownership). A stamp of `0` means
/// "unstamped" — bootstrap writes and epoch-unaware callers skip fencing;
/// region epochs start at 1, so 0 can never collide with a real epoch. Any
/// other value must equal the region's current epoch or the write is fenced
/// with [`ClusterError::StaleEpoch`] — the guard that makes a zombie's
/// post-failover writes impossible to apply.
fn check_epoch(cluster: &Cluster, table: &str, row: &[u8], stamped: u64) -> Result<()> {
    if stamped == 0 {
        return Ok(());
    }
    cluster.check_write_epoch(table, row, stamped)
}

fn index_err(e: IndexError) -> ClusterError {
    match e {
        IndexError::Cluster(c) => c,
        other => ClusterError::Unavailable(other.to_string()),
    }
}

/// Execute one decoded request against the cluster and encode its response
/// body. Scans and table/index administration are *not* ownership-policed:
/// any server acts as a gateway for multi-region operations, mirroring how
/// the repo's in-process client fans scans out itself.
fn handle(inner: &Inner, op: OpCode, body: &[u8]) -> Result<Bytes> {
    let cluster = inner.di.cluster();
    let mut r = BodyReader::new(body);
    let mut w = BodyWriter::new();
    match op {
        OpCode::Ping => {
            r.expect_end()?;
            // A listener whose region server has been declared dead must
            // fail its liveness probe: the TCP socket outliving the crash is
            // exactly the zombie scenario, and answering "healthy" here
            // would blind the master's failure detector.
            if let Some(me) = inner.served_id {
                if !cluster.is_alive(me) {
                    return Err(ClusterError::ServerDown(me));
                }
            }
        }
        OpCode::Roster => {
            r.expect_end()?;
            let entries = inner.roster.entries();
            w.u32(entries.len() as u32);
            for (id, addr) in entries {
                w.u32(id).str(&addr);
            }
        }
        OpCode::PartitionMap => {
            let table = r.str()?;
            r.expect_end()?;
            let snap = cluster.partition_snapshot(&table)?;
            w.u32(snap.len() as u32);
            for (start, region, server, epoch) in snap {
                w.bytes(&start).u32(region).u32(server).u64(epoch);
            }
        }
        OpCode::Put => {
            let table = r.str()?;
            let row = r.bytes()?;
            let cols = r.columns()?;
            let epoch = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            check_epoch(cluster, &table, &row, epoch)?;
            w.u64(cluster.put(&table, &row, &cols)?);
        }
        OpCode::PutBatch => {
            let table = r.str()?;
            let n = r.count()?;
            let mut rows = Vec::with_capacity(n);
            let mut epochs = Vec::with_capacity(n);
            for _ in 0..n {
                let row = r.bytes()?;
                let cols = r.columns()?;
                let epoch = r.u64()?;
                rows.push((row, cols));
                epochs.push(epoch);
            }
            r.expect_end()?;
            // Police the whole batch (ownership, then epochs) before
            // applying any of it, so a misrouted or fenced batch is rejected
            // atomically.
            for (row, _) in &rows {
                check_owner(inner, cluster, &table, row)?;
            }
            for ((row, _), epoch) in rows.iter().zip(&epochs) {
                check_epoch(cluster, &table, row, *epoch)?;
            }
            let stamps = cluster.put_batch(&table, &rows)?;
            w.u32(stamps.len() as u32);
            for ts in stamps {
                w.u64(ts);
            }
        }
        OpCode::PutReturning => {
            let table = r.str()?;
            let row = r.bytes()?;
            let cols = r.columns()?;
            let epoch = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            check_epoch(cluster, &table, &row, epoch)?;
            let outcome = cluster.put_returning(&table, &row, &cols)?;
            return Ok(wire::encode_put_outcome(&outcome));
        }
        OpCode::Delete => {
            let table = r.str()?;
            let row = r.bytes()?;
            let cols = r.names()?;
            let epoch = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            check_epoch(cluster, &table, &row, epoch)?;
            w.u64(cluster.delete(&table, &row, &cols)?);
        }
        OpCode::RawPut => {
            let table = r.str()?;
            let row = r.bytes()?;
            let cols = r.columns()?;
            let ts = r.u64()?;
            let epoch = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            check_epoch(cluster, &table, &row, epoch)?;
            cluster.raw_put(&table, &row, &cols, ts)?;
        }
        OpCode::RawDelete => {
            let table = r.str()?;
            let row = r.bytes()?;
            let cols = r.names()?;
            let ts = r.u64()?;
            let epoch = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            check_epoch(cluster, &table, &row, epoch)?;
            cluster.raw_delete(&table, &row, &cols, ts)?;
        }
        OpCode::Get => {
            let table = r.str()?;
            let row = r.bytes()?;
            let col = r.bytes()?;
            let ts = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            match cluster.get(&table, &row, &col, ts)? {
                None => {
                    w.u8(0);
                }
                Some(v) => {
                    w.u8(1).versioned(&v);
                }
            }
        }
        OpCode::GetCellVersioned => {
            let table = r.str()?;
            let row = r.bytes()?;
            let col = r.bytes()?;
            let ts = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            match cluster.get_cell_versioned(&table, &row, &col, ts)? {
                None => {
                    w.u8(0);
                }
                Some((cts, tomb)) => {
                    w.u8(1).u64(cts).u8(tomb as u8);
                }
            }
        }
        OpCode::GetRow => {
            let table = r.str()?;
            let row = r.bytes()?;
            let ts = r.u64()?;
            r.expect_end()?;
            check_owner(inner, cluster, &table, &row)?;
            let cols = cluster.get_row(&table, &row, ts)?;
            w.u32(cols.len() as u32);
            for (c, v) in cols {
                w.bytes(&c).versioned(&v);
            }
        }
        OpCode::ScanRows | OpCode::ScanRowsRange => {
            let table = r.str()?;
            let start = r.bytes()?;
            let end = r.opt_bytes()?;
            let ts = r.u64()?;
            let limit = r.u64()? as usize;
            r.expect_end()?;
            let rows = if op == OpCode::ScanRows {
                cluster.scan_rows(&table, &start, end.as_deref(), ts, limit)?
            } else {
                cluster.scan_rows_range(&table, &start, end.as_deref(), ts, limit)?
            };
            w.u32(rows.len() as u32);
            for rg in &rows {
                w.row_group(rg);
            }
        }
        OpCode::ScanRowsPrefix => {
            let table = r.str()?;
            let prefix = r.bytes()?;
            let ts = r.u64()?;
            let limit = r.u64()? as usize;
            r.expect_end()?;
            let rows = cluster.scan_rows_prefix(&table, &prefix, ts, limit)?;
            w.u32(rows.len() as u32);
            for rg in &rows {
                w.row_group(rg);
            }
        }
        OpCode::CreateTable => {
            let name = r.str()?;
            let regions = r.u32()? as usize;
            r.expect_end()?;
            cluster.create_table(&name, regions)?;
        }
        OpCode::HasTable => {
            let name = r.str()?;
            r.expect_end()?;
            w.u8(cluster.has_table(&name) as u8);
        }
        OpCode::FlushTable => {
            let name = r.str()?;
            r.expect_end()?;
            cluster.flush_table(&name)?;
        }
        OpCode::CreateIndex => {
            let spec = wire::decode_index_spec(&mut r)?;
            let regions = r.u32()? as usize;
            r.expect_end()?;
            inner.di.create_index(spec, regions).map_err(index_err)?;
        }
        OpCode::DropIndex => {
            let base = r.str()?;
            let name = r.str()?;
            r.expect_end()?;
            inner.di.drop_index(&base, &name).map_err(index_err)?;
        }
        OpCode::Quiesce => {
            let base = r.str()?;
            r.expect_end()?;
            inner.di.quiesce(&base);
        }
    }
    Ok(w.finish())
}

//! In-memory sorted, multi-version component of the LSM tree (the paper's
//! *mem-store*, HBase's *Memtable*).
//!
//! All versions of a key coexist: a `put` appends a new `(key, ts)` cell and
//! never modifies earlier cells — the "no in-place update" property the paper
//! builds on.

use crate::types::{Cell, CellKind, InternalKey, Timestamp, VersionedValue};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Sorted multi-version in-memory store.
///
/// Backed by a `BTreeMap<InternalKey, Bytes>`; the internal-key ordering puts
/// newer versions of a user key first, so point lookups are a single
/// range-seek.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<InternalKey, Bytes>,
    approximate_bytes: usize,
    max_ts: Timestamp,
}

impl MemTable {
    /// Empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a cell (put or tombstone). Re-inserting an identical
    /// `(key, ts, kind)` cell is idempotent, which the Diff-Index failure
    /// recovery protocol relies on (§5.3: replayed AUQ deliveries).
    pub fn insert(&mut self, cell: Cell) {
        self.approximate_bytes += cell.approximate_size();
        self.max_ts = self.max_ts.max(cell.key.ts);
        if let Some(prev) = self.map.insert(cell.key, cell.value) {
            // Overwritten duplicate: give back its value bytes.
            self.approximate_bytes = self.approximate_bytes.saturating_sub(prev.len());
        }
    }

    /// Latest version of `user_key` visible at `ts` (i.e. with version
    /// timestamp `<= ts`). Returns the cell so callers can distinguish
    /// tombstones from absence.
    pub fn get_versioned(&self, user_key: &[u8], ts: Timestamp) -> Option<Cell> {
        let seek = InternalKey::seek_to(Bytes::copy_from_slice(user_key), ts);
        let (k, v) = self
            .map
            .range((Bound::Included(seek), Bound::Unbounded))
            .next()?;
        if k.user_key.as_ref() != user_key {
            return None;
        }
        Some(Cell { key: k.clone(), value: v.clone() })
    }

    /// Latest visible value at `ts`, hiding tombstones.
    pub fn get(&self, user_key: &[u8], ts: Timestamp) -> Option<VersionedValue> {
        match self.get_versioned(user_key, ts) {
            Some(c) if c.key.kind == CellKind::Put => {
                Some(VersionedValue { value: c.value, ts: c.key.ts })
            }
            _ => None,
        }
    }

    /// Iterate all cells in internal-key order (all versions, tombstones
    /// included). Used by flush and merging reads.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        self.map
            .iter()
            .map(|(k, v)| Cell { key: k.clone(), value: v.clone() })
    }

    /// Iterate cells whose user key lies in `[start, end)` (all versions).
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> impl Iterator<Item = Cell> + 'a {
        let lo = InternalKey::seek_to(Bytes::copy_from_slice(start), Timestamp::MAX);
        let hi: Option<Bytes> = end.map(Bytes::copy_from_slice);
        self.map
            .range((Bound::Included(lo), Bound::Unbounded))
            .take_while(move |(k, _)| match &hi {
                Some(h) => k.user_key < *h,
                None => true,
            })
            .map(|(k, v)| Cell { key: k.clone(), value: v.clone() })
    }

    /// Number of stored cells (versions, not distinct user keys).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no cells are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate heap footprint in bytes, for flush-threshold accounting.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes
    }

    /// Largest timestamp of any inserted cell (0 if empty).
    pub fn max_ts(&self) -> Timestamp {
        self.max_ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mt(cells: &[Cell]) -> MemTable {
        let mut m = MemTable::new();
        for c in cells {
            m.insert(c.clone());
        }
        m
    }

    #[test]
    fn get_returns_latest_visible_version() {
        let m = mt(&[Cell::put("k", 1, "v1"), Cell::put("k", 5, "v5"), Cell::put("k", 3, "v3")]);
        assert_eq!(m.get(b"k", u64::MAX).unwrap().value, Bytes::from("v5"));
        assert_eq!(m.get(b"k", 4).unwrap().value, Bytes::from("v3"));
        assert_eq!(m.get(b"k", 3).unwrap().value, Bytes::from("v3"));
        assert_eq!(m.get(b"k", 2).unwrap().value, Bytes::from("v1"));
        assert!(m.get(b"k", 0).is_none());
    }

    #[test]
    fn snapshot_read_at_ts_minus_delta_sees_old_value() {
        // The paper's RB(k, tnew − δ) idiom: read the version right before a
        // new put, even though the new put is already in the memtable.
        let m = mt(&[Cell::put("k", 10, "old"), Cell::put("k", 20, "new")]);
        let got = m.get(b"k", 20 - crate::types::DELTA).unwrap();
        assert_eq!(got.value, Bytes::from("old"));
        assert_eq!(got.ts, 10);
    }

    #[test]
    fn tombstone_hides_older_versions() {
        let m = mt(&[Cell::put("k", 1, "v1"), Cell::delete("k", 2)]);
        assert!(m.get(b"k", 5).is_none());
        // ...but a snapshot before the delete still sees the value:
        assert_eq!(m.get(b"k", 1).unwrap().value, Bytes::from("v1"));
        // get_versioned exposes the tombstone itself:
        let c = m.get_versioned(b"k", 5).unwrap();
        assert!(c.is_tombstone());
    }

    #[test]
    fn same_timestamp_delete_shadows_put() {
        let m = mt(&[Cell::put("k", 7, "v"), Cell::delete("k", 7)]);
        assert!(m.get(b"k", 7).is_none());
    }

    #[test]
    fn get_does_not_bleed_into_neighbor_key() {
        let m = mt(&[Cell::put("a", 1, "va"), Cell::put("c", 1, "vc")]);
        assert!(m.get(b"b", 10).is_none());
        assert_eq!(m.get(b"a", 10).unwrap().value, Bytes::from("va"));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut m = MemTable::new();
        m.insert(Cell::put("k", 1, "v"));
        m.insert(Cell::put("k", 1, "v"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"k", 1).unwrap().value, Bytes::from("v"));
    }

    #[test]
    fn iter_is_sorted_newest_version_first() {
        let m = mt(&[
            Cell::put("b", 1, "b1"),
            Cell::put("a", 2, "a2"),
            Cell::put("a", 9, "a9"),
        ]);
        let keys: Vec<(Bytes, u64)> =
            m.iter().map(|c| (c.key.user_key.clone(), c.key.ts)).collect();
        assert_eq!(
            keys,
            vec![
                (Bytes::from("a"), 9),
                (Bytes::from("a"), 2),
                (Bytes::from("b"), 1)
            ]
        );
    }

    #[test]
    fn range_respects_bounds() {
        let m = mt(&[
            Cell::put("a", 1, "1"),
            Cell::put("b", 1, "1"),
            Cell::put("c", 1, "1"),
            Cell::put("d", 1, "1"),
        ]);
        let got: Vec<Bytes> =
            m.range(b"b", Some(b"d")).map(|c| c.key.user_key).collect();
        assert_eq!(got, vec![Bytes::from("b"), Bytes::from("c")]);
        let open: Vec<Bytes> = m.range(b"c", None).map(|c| c.key.user_key).collect();
        assert_eq!(open, vec![Bytes::from("c"), Bytes::from("d")]);
    }

    #[test]
    fn approximate_bytes_grows_and_accounts_duplicates() {
        let mut m = MemTable::new();
        m.insert(Cell::put("key", 1, "value"));
        let one = m.approximate_bytes();
        assert!(one > 0);
        m.insert(Cell::put("key", 2, "value"));
        assert!(m.approximate_bytes() > one);
    }

    #[test]
    fn empty_checks() {
        let mut m = MemTable::new();
        assert!(m.is_empty());
        m.insert(Cell::put("k", 1, "v"));
        assert!(!m.is_empty());
        assert_eq!(m.len(), 1);
    }
}

//! In-memory sorted, multi-version component of the LSM tree (the paper's
//! *mem-store*, HBase's *Memtable*).
//!
//! All versions of a key coexist: a `put` appends a new `(key, ts)` cell and
//! never modifies earlier cells — the "no in-place update" property the paper
//! builds on.
//!
//! Layout: version lists live in a flat slot arena, reached through **two**
//! key maps — a hash map for point lookups and a `BTreeMap` for ordered
//! iteration. A point `get` is one O(1) hash probe plus a binary search of
//! the version list; a `BTreeMap<Bytes, _>` walk would instead chase an
//! out-of-line key buffer per comparison (a cache miss each), which
//! dominated warm point-read latency. Both maps share the same `Bytes`
//! (refcounted), so the duplication costs two pointers per key, not two
//! copies of the key.

use crate::types::{Cell, CellKind, InternalKey, Timestamp, VersionedValue};
use crate::util::FxBuildHasher;
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// One version of a user key: `(ts, kind)` plus the value payload (empty for
/// tombstones). Within a key's version list, order is ts **descending** with
/// `Delete` before `Put` at equal ts — the same precedence `InternalKey`
/// gives, so flush output stays byte-identical to the seed's.
#[derive(Debug, Clone)]
struct Version {
    ts: Timestamp,
    kind: CellKind,
    value: Bytes,
}

/// Sort key for a version list: newest first, tombstone first within a tie.
fn version_rank(ts: Timestamp, kind: CellKind) -> (std::cmp::Reverse<Timestamp>, std::cmp::Reverse<u8>) {
    (std::cmp::Reverse(ts), std::cmp::Reverse(kind.to_u8()))
}

/// Sorted multi-version in-memory store with O(1) point lookups.
#[derive(Debug, Default)]
pub struct MemTable {
    /// Version lists, newest first; indexed by the two key maps.
    slots: Vec<Vec<Version>>,
    /// Point-lookup index: user key → slot.
    by_key: HashMap<Bytes, u32, FxBuildHasher>,
    /// Ordered index for iteration and range scans: user key → slot.
    ordered: BTreeMap<Bytes, u32>,
    cells: usize,
    approximate_bytes: usize,
    max_ts: Timestamp,
}

impl MemTable {
    /// Empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a cell (put or tombstone). Re-inserting an identical
    /// `(key, ts, kind)` cell is idempotent, which the Diff-Index failure
    /// recovery protocol relies on (§5.3: replayed AUQ deliveries).
    pub fn insert(&mut self, cell: Cell) {
        let Cell { key, value } = cell;
        self.max_ts = self.max_ts.max(key.ts);
        let slot = match self.by_key.get(key.user_key.as_ref()) {
            Some(&i) => i as usize,
            None => {
                let i = self.slots.len();
                self.slots.push(Vec::new());
                self.by_key.insert(key.user_key.clone(), i as u32);
                self.ordered.insert(key.user_key.clone(), i as u32);
                i
            }
        };
        let versions = &mut self.slots[slot];
        let rank = version_rank(key.ts, key.kind);
        match versions.binary_search_by_key(&rank, |v| version_rank(v.ts, v.kind)) {
            Ok(i) => {
                // Duplicate (key, ts, kind): replace the value in place.
                self.approximate_bytes = self
                    .approximate_bytes
                    .saturating_sub(versions[i].value.len())
                    + value.len();
                versions[i].value = value;
            }
            Err(i) => {
                self.approximate_bytes += key.user_key.len() + value.len() + 24;
                self.cells += 1;
                versions.insert(i, Version { ts: key.ts, kind: key.kind, value });
            }
        }
    }

    /// Latest version of `user_key` visible at `ts` (i.e. with version
    /// timestamp `<= ts`). Returns the cell so callers can distinguish
    /// tombstones from absence. Allocation-free until the hit is
    /// materialized (and `Bytes` clones are refcount bumps).
    pub fn get_versioned(&self, user_key: &[u8], ts: Timestamp) -> Option<Cell> {
        let (key, &slot) = self.by_key.get_key_value(user_key)?;
        let versions = &self.slots[slot as usize];
        let i = versions.partition_point(|v| v.ts > ts);
        let v = versions.get(i)?;
        Some(Cell {
            key: InternalKey { user_key: key.clone(), ts: v.ts, kind: v.kind },
            value: v.value.clone(),
        })
    }

    /// Latest visible value at `ts`, hiding tombstones. Unlike
    /// [`MemTable::get_versioned`] this never touches the stored key, so the
    /// hot point-read path does zero allocations.
    pub fn get(&self, user_key: &[u8], ts: Timestamp) -> Option<VersionedValue> {
        let &slot = self.by_key.get(user_key)?;
        let versions = &self.slots[slot as usize];
        let i = versions.partition_point(|v| v.ts > ts);
        match versions.get(i) {
            Some(v) if v.kind == CellKind::Put => {
                Some(VersionedValue { value: v.value.clone(), ts: v.ts })
            }
            _ => None,
        }
    }

    /// Iterate all cells in internal-key order (all versions, tombstones
    /// included). Used by flush and merging reads.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        self.ordered.iter().flat_map(|(k, &slot)| {
            self.slots[slot as usize].iter().map(move |v| Cell {
                key: InternalKey { user_key: k.clone(), ts: v.ts, kind: v.kind },
                value: v.value.clone(),
            })
        })
    }

    /// Iterate cells whose user key lies in `[start, end)` (all versions).
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> impl Iterator<Item = Cell> + 'a {
        let hi: Option<Bytes> = end.map(Bytes::copy_from_slice);
        self.ordered
            .range::<[u8], _>((Bound::Included(start), Bound::Unbounded))
            .take_while(move |(k, _)| match &hi {
                Some(h) => k.as_ref() < h.as_ref(),
                None => true,
            })
            .flat_map(|(k, &slot)| {
                self.slots[slot as usize].iter().map(move |v| Cell {
                    key: InternalKey { user_key: k.clone(), ts: v.ts, kind: v.kind },
                    value: v.value.clone(),
                })
            })
    }

    /// Number of stored cells (versions, not distinct user keys).
    pub fn len(&self) -> usize {
        self.cells
    }

    /// True if no cells are stored.
    pub fn is_empty(&self) -> bool {
        self.cells == 0
    }

    /// Approximate heap footprint in bytes, for flush-threshold accounting.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes
    }

    /// Largest timestamp of any inserted cell (0 if empty).
    pub fn max_ts(&self) -> Timestamp {
        self.max_ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mt(cells: &[Cell]) -> MemTable {
        let mut m = MemTable::new();
        for c in cells {
            m.insert(c.clone());
        }
        m
    }

    #[test]
    fn get_returns_latest_visible_version() {
        let m = mt(&[Cell::put("k", 1, "v1"), Cell::put("k", 5, "v5"), Cell::put("k", 3, "v3")]);
        assert_eq!(m.get(b"k", u64::MAX).unwrap().value, Bytes::from("v5"));
        assert_eq!(m.get(b"k", 4).unwrap().value, Bytes::from("v3"));
        assert_eq!(m.get(b"k", 3).unwrap().value, Bytes::from("v3"));
        assert_eq!(m.get(b"k", 2).unwrap().value, Bytes::from("v1"));
        assert!(m.get(b"k", 0).is_none());
    }

    #[test]
    fn snapshot_read_at_ts_minus_delta_sees_old_value() {
        // The paper's RB(k, tnew − δ) idiom: read the version right before a
        // new put, even though the new put is already in the memtable.
        let m = mt(&[Cell::put("k", 10, "old"), Cell::put("k", 20, "new")]);
        let got = m.get(b"k", 20 - crate::types::DELTA).unwrap();
        assert_eq!(got.value, Bytes::from("old"));
        assert_eq!(got.ts, 10);
    }

    #[test]
    fn tombstone_hides_older_versions() {
        let m = mt(&[Cell::put("k", 1, "v1"), Cell::delete("k", 2)]);
        assert!(m.get(b"k", 5).is_none());
        // ...but a snapshot before the delete still sees the value:
        assert_eq!(m.get(b"k", 1).unwrap().value, Bytes::from("v1"));
        // get_versioned exposes the tombstone itself:
        let c = m.get_versioned(b"k", 5).unwrap();
        assert!(c.is_tombstone());
    }

    #[test]
    fn same_timestamp_delete_shadows_put() {
        let m = mt(&[Cell::put("k", 7, "v"), Cell::delete("k", 7)]);
        assert!(m.get(b"k", 7).is_none());
    }

    #[test]
    fn get_does_not_bleed_into_neighbor_key() {
        let m = mt(&[Cell::put("a", 1, "va"), Cell::put("c", 1, "vc")]);
        assert!(m.get(b"b", 10).is_none());
        assert_eq!(m.get(b"a", 10).unwrap().value, Bytes::from("va"));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut m = MemTable::new();
        m.insert(Cell::put("k", 1, "v"));
        m.insert(Cell::put("k", 1, "v"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"k", 1).unwrap().value, Bytes::from("v"));
    }

    #[test]
    fn duplicate_insert_replaces_value() {
        let mut m = MemTable::new();
        m.insert(Cell::put("k", 1, "old"));
        m.insert(Cell::put("k", 1, "newer"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"k", 1).unwrap().value, Bytes::from("newer"));
    }

    #[test]
    fn iter_is_sorted_newest_version_first() {
        let m = mt(&[
            Cell::put("b", 1, "b1"),
            Cell::put("a", 2, "a2"),
            Cell::put("a", 9, "a9"),
        ]);
        let keys: Vec<(Bytes, u64)> =
            m.iter().map(|c| (c.key.user_key.clone(), c.key.ts)).collect();
        assert_eq!(
            keys,
            vec![
                (Bytes::from("a"), 9),
                (Bytes::from("a"), 2),
                (Bytes::from("b"), 1)
            ]
        );
    }

    #[test]
    fn iter_orders_tombstone_before_put_at_equal_ts() {
        let m = mt(&[Cell::put("k", 4, "v"), Cell::delete("k", 4)]);
        let kinds: Vec<CellKind> = m.iter().map(|c| c.key.kind).collect();
        assert_eq!(kinds, vec![CellKind::Delete, CellKind::Put]);
    }

    #[test]
    fn range_respects_bounds() {
        let m = mt(&[
            Cell::put("a", 1, "1"),
            Cell::put("b", 1, "1"),
            Cell::put("c", 1, "1"),
            Cell::put("d", 1, "1"),
        ]);
        let got: Vec<Bytes> =
            m.range(b"b", Some(b"d")).map(|c| c.key.user_key).collect();
        assert_eq!(got, vec![Bytes::from("b"), Bytes::from("c")]);
        let open: Vec<Bytes> = m.range(b"c", None).map(|c| c.key.user_key).collect();
        assert_eq!(open, vec![Bytes::from("c"), Bytes::from("d")]);
    }

    #[test]
    fn approximate_bytes_grows_and_accounts_duplicates() {
        let mut m = MemTable::new();
        m.insert(Cell::put("key", 1, "value"));
        let one = m.approximate_bytes();
        assert!(one > 0);
        m.insert(Cell::put("key", 2, "value"));
        assert!(m.approximate_bytes() > one);
    }

    #[test]
    fn empty_checks() {
        let mut m = MemTable::new();
        assert!(m.is_empty());
        m.insert(Cell::put("k", 1, "v"));
        assert!(!m.is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn point_and_ordered_indexes_stay_consistent() {
        let mut m = MemTable::new();
        for i in (0..500).rev() {
            m.insert(Cell::put(format!("key{i:04}"), i + 1, format!("v{i}")));
        }
        // Every key reachable via the hash index...
        for i in 0..500u64 {
            assert_eq!(
                m.get(format!("key{i:04}").as_bytes(), u64::MAX).unwrap().value,
                Bytes::from(format!("v{i}"))
            );
        }
        // ...and the ordered iteration is sorted despite reverse inserts.
        let keys: Vec<Bytes> = m.iter().map(|c| c.key.user_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}

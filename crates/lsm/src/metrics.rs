//! Operation counters for the engine.
//!
//! These are the evidence behind Table 2 of the paper: the experiment harness
//! snapshots counters around an index update / index read and compares the
//! observed `(Base Put, Base Read, Index Put, Index Read)` counts against the
//! analytic table in `diff-index-core`.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$sm:meta])+ $name:ident),+ $(,)?) => {
        /// Cumulative engine counters. All methods are lock-free.
        #[derive(Debug, Default)]
        pub struct Metrics {
            $($(#[$sm])+ pub $name: AtomicU64,)+
        }

        impl Metrics {
            /// Fresh zeroed counters.
            pub fn new() -> Self { Self::default() }

            /// Snapshot all counters at once.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot { $($name: self.$name.load(Ordering::Relaxed),)+ }
            }
        }

        /// Point-in-time copy of [`Metrics`]; subtract two snapshots to get
        /// per-interval deltas.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $($(#[$sm])+ pub $name: u64,)+
        }

        impl std::ops::Sub for MetricsSnapshot {
            type Output = MetricsSnapshot;
            fn sub(self, rhs: MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot { $($name: self.$name.wrapping_sub(rhs.$name),)+ }
            }
        }

        impl std::ops::Add for MetricsSnapshot {
            type Output = MetricsSnapshot;
            fn add(self, rhs: MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot { $($name: self.$name.wrapping_add(rhs.$name),)+ }
            }
        }
    };
}

counters! {
    /// Cells written via `put` (tombstones excluded).
    puts,
    /// Tombstones written via `delete`.
    deletes,
    /// Point reads (`get` / `get_versioned`).
    gets,
    /// Range scans started.
    scans,
    /// WAL record appends.
    wal_appends,
    /// WAL fsyncs (group commits + segment rolls). With group commit many
    /// appends share one fsync, so `wal_appends / wal_fsyncs` is the
    /// effective commit batch size.
    wal_fsyncs,
    /// WAL records made durable by group-commit fsyncs; divided by
    /// `wal_fsyncs` this is the mean group-commit batch size.
    group_commit_records,
    /// Memtable flushes completed.
    flushes,
    /// Compactions completed.
    compactions,
    /// Bytes written to SSTables by flushes.
    bytes_flushed,
    /// Bytes written to SSTables by compactions.
    bytes_compacted,
    /// SSTables consulted by point reads (read amplification numerator).
    tables_probed,
    /// SSTable probes skipped thanks to bloom filters / key ranges.
    tables_skipped,
    /// Cells dropped by compaction garbage collection.
    gc_dropped_cells,
    /// Data-block reads served from the block cache.
    block_cache_hits,
    /// Data-block reads that had to hit disk and decode.
    block_cache_misses,
    /// Blocks evicted from the cache to stay within its byte budget.
    block_cache_evictions,
}

impl Metrics {
    /// Increment a counter by 1.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Mean number of WAL records made durable per group-commit fsync —
    /// the write path's batching factor (1.0 means no batching happened).
    pub fn mean_group_commit(&self) -> f64 {
        if self.wal_fsyncs == 0 {
            0.0
        } else {
            self.group_commit_records as f64 / self.wal_fsyncs as f64
        }
    }

    /// Cells (puts + tombstones) made durable per WAL fsync.
    pub fn puts_per_fsync(&self) -> f64 {
        if self.wal_fsyncs == 0 {
            0.0
        } else {
            (self.puts + self.deletes) as f64 / self.wal_fsyncs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let m = Metrics::new();
        Metrics::bump(&m.puts);
        Metrics::bump(&m.puts);
        Metrics::add(&m.bytes_flushed, 100);
        let s1 = m.snapshot();
        assert_eq!(s1.puts, 2);
        assert_eq!(s1.bytes_flushed, 100);
        Metrics::bump(&m.puts);
        let s2 = m.snapshot();
        let d = s2 - s1;
        assert_eq!(d.puts, 1);
        assert_eq!(d.bytes_flushed, 0);
    }

    #[test]
    fn default_is_zero() {
        let s = Metrics::new().snapshot();
        assert_eq!(s, MetricsSnapshot::default());
    }
}

//! Sharded LRU block cache shared by all tables of an engine (HBase's
//! *block cache*; the paper warms it before read experiments, §8.1).
//!
//! Values are [`Block`]s: one shared byte buffer plus a cell-offset array,
//! so a cache hit hands back the block for zero-copy slicing rather than a
//! pre-materialized `Vec<Cell>`.

use crate::sstable::Block;
use crate::util::FxBuildHasher;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 16;

/// Cache key: (table id, block offset).
type BlockId = (u64, u64);

struct Shard {
    /// Map from block id to (decoded block, LRU tick of last touch, size).
    /// Fx-hashed: a cache hit is on the warm read path, and SipHash-ing the
    /// 16-byte id costs more than the bucket probe it guards.
    map: HashMap<BlockId, (Arc<Block>, u64, usize), FxBuildHasher>,
    bytes: usize,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, id: BlockId) -> Option<Arc<Block>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(&id)?;
        entry.1 = tick;
        Some(Arc::clone(&entry.0))
    }

    /// Insert and return how many resident blocks were evicted to make room.
    fn insert(&mut self, id: BlockId, block: Arc<Block>) -> u64 {
        let size = block.size_bytes();
        if size > self.capacity {
            return 0; // Oversized block: never cache.
        }
        self.tick += 1;
        if let Some((_, _, old)) = self.map.insert(id, (block, self.tick, size)) {
            self.bytes = self.bytes.saturating_sub(old);
        }
        self.bytes += size;
        let mut evicted = 0;
        while self.bytes > self.capacity {
            // Evict the least-recently-touched entry. Linear scan is fine:
            // shards stay small and eviction is off the hot path.
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, (_, t, _))| *t) else {
                break;
            };
            if let Some((_, _, size)) = self.map.remove(&victim) {
                self.bytes = self.bytes.saturating_sub(size);
                evicted += 1;
            }
        }
        evicted
    }
}

/// Thread-safe sharded LRU cache of decoded data blocks.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl BlockCache {
    /// Cache with a total byte budget split evenly across shards.
    pub fn new(capacity_bytes: usize) -> Self {
        let per_shard = (capacity_bytes / SHARDS).max(1024);
        Self {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::default(),
                        bytes: 0,
                        capacity: per_shard,
                        tick: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: BlockId) -> &Mutex<Shard> {
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(id.1);
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Fetch a block if cached.
    pub fn get(&self, table_id: u64, offset: u64) -> Option<Arc<Block>> {
        let got = self.shard((table_id, offset)).lock().touch((table_id, offset));
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert a freshly decoded block. Returns the number of blocks evicted
    /// to stay within the byte budget, so callers can surface eviction
    /// pressure in their own metrics.
    pub fn insert(&self, table_id: u64, offset: u64, block: Arc<Block>) -> u64 {
        let evicted = self
            .shard((table_id, offset))
            .lock()
            .insert((table_id, offset), block);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Cumulative cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total resident bytes across shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Cell;

    fn block(n: usize) -> Arc<Block> {
        let cells: Vec<Cell> =
            (0..n).map(|i| Cell::put(format!("k{i:04}"), 1, vec![0u8; 50])).collect();
        Arc::new(Block::from_cells(&cells))
    }

    #[test]
    fn get_after_insert_hits() {
        let c = BlockCache::new(1 << 20);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, block(4));
        assert!(c.get(1, 0).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_tables_do_not_collide() {
        let c = BlockCache::new(1 << 20);
        c.insert(1, 0, block(1));
        assert!(c.get(2, 0).is_none());
        assert!(c.get(1, 4096).is_none());
    }

    #[test]
    fn eviction_respects_capacity_and_counts() {
        let c = BlockCache::new(16 * 1024);
        for i in 0..200 {
            c.insert(i, 0, block(8));
        }
        assert!(c.resident_bytes() <= 16 * 1024 + 4096, "resident {} too big", c.resident_bytes());
        assert!(c.evictions() > 0, "filling 200 blocks into 16KB must evict");
    }

    #[test]
    fn lru_keeps_recently_touched() {
        let c = BlockCache::new(SHARDS * 2048);
        // All to one table so hashing spreads across shards; then hammer one id.
        c.insert(9, 42, block(2));
        for i in 0..500 {
            c.insert(9, 1000 + i, block(2));
            c.get(9, 42); // keep hot
        }
        assert!(c.get(9, 42).is_some(), "hot block should survive eviction");
    }

    #[test]
    fn oversized_block_is_not_cached() {
        let c = BlockCache::new(SHARDS * 1024);
        c.insert(1, 0, block(1000)); // ~60KB > 1KB shard capacity
        assert!(c.get(1, 0).is_none());
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn reinsert_replaces_and_keeps_accounting_sane() {
        let c = BlockCache::new(1 << 20);
        c.insert(1, 0, block(4));
        let b1 = c.resident_bytes();
        c.insert(1, 0, block(4));
        assert_eq!(c.resident_bytes(), b1);
    }
}

//! Bloom filter over user keys, one per SSTable.
//!
//! A read in an LSM tree must consult every on-disk component; bloom filters
//! keep most of those lookups from touching the file at all. We use the
//! standard double-hashing scheme (Kirsch–Mitzenmacher) over two independent
//! 64-bit FNV-1a variants.

use crate::util::{get_u32, put_u32};

/// Immutable bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    num_hashes: u32,
}

/// Builder that sizes the filter from an expected key count and a target
/// bits-per-key budget.
#[derive(Debug)]
pub struct BloomBuilder {
    hashes: Vec<(u64, u64)>,
    bits_per_key: usize,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn hash_pair(key: &[u8]) -> (u64, u64) {
    let h1 = fnv1a(key, 0);
    // Derive the second hash by finalizing the first (splitmix64 mixer)
    // instead of a second pass over the key: the probe loop is on the warm
    // read path and double-hashing only needs the pair to be decorrelated,
    // not independently computed.
    let mut h2 = h1 ^ 0x9E37_79B9_7F4A_7C15;
    h2 = (h2 ^ (h2 >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h2 = (h2 ^ (h2 >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h2 ^= h2 >> 31;
    // Avoid a degenerate second hash that would collapse all probes.
    (h1, h2 | 1)
}

impl BloomBuilder {
    /// Builder with the given bits-per-key budget (10 ≈ 1% FPR).
    pub fn new(bits_per_key: usize) -> Self {
        Self { hashes: Vec::new(), bits_per_key: bits_per_key.max(1) }
    }

    /// Add a key.
    pub fn add(&mut self, key: &[u8]) {
        self.hashes.push(hash_pair(key));
    }

    /// Number of keys added so far.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True if no keys were added.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Finish into an immutable filter.
    pub fn build(self) -> Bloom {
        let n = self.hashes.len().max(1);
        // Round the bit count up to a power of two so probe positions come
        // from a mask rather than a 64-bit modulo: the probes are serially
        // dependent (double hashing), so k divisions in a row would dominate
        // the filter check. Costs at most 2x space over the exact size.
        let nbits = (n * self.bits_per_key).max(64).next_power_of_two();
        let nbytes = nbits / 8;
        let nbits = nbytes * 8;
        // k = ln2 * bits/key, clamped to a sane range.
        let k = ((self.bits_per_key as f64) * 0.69) as u32;
        let num_hashes = k.clamp(1, 30);
        let mask = nbits as u64 - 1;
        let mut bits = vec![0u8; nbytes];
        for (h1, h2) in &self.hashes {
            let mut h = *h1;
            for _ in 0..num_hashes {
                let bit = (h & mask) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(*h2);
            }
        }
        Bloom { bits, num_hashes }
    }
}

impl Bloom {
    /// True if `key` *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return false;
        }
        let nbits = (self.bits.len() * 8) as u64;
        let (h1, h2) = hash_pair(key);
        let mut h = h1;
        if nbits.is_power_of_two() {
            // Fast path for filters we build ourselves: mask, no division.
            let mask = nbits - 1;
            for _ in 0..self.num_hashes {
                let bit = (h & mask) as usize;
                if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                    return false;
                }
                h = h.wrapping_add(h2);
            }
        } else {
            // `decode` accepts arbitrary byte lengths; stay correct for them.
            for _ in 0..self.num_hashes {
                let bit = (h % nbits) as usize;
                if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                    return false;
                }
                h = h.wrapping_add(h2);
            }
        }
        true
    }

    /// Serialize as `num_hashes: u32, bit bytes`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len());
        put_u32(&mut out, self.num_hashes);
        out.extend_from_slice(&self.bits);
        out
    }

    /// Decode from `encode` output.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let num_hashes = get_u32(buf, 0)?;
        if num_hashes == 0 || num_hashes > 64 {
            return None;
        }
        Some(Self { bits: buf[4..].to_vec(), num_hashes })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomBuilder::new(10);
        let keys: Vec<Vec<u8>> = (0..2000).map(|i| format!("user{i:06}").into_bytes()).collect();
        for k in &keys {
            b.add(k);
        }
        let f = b.build();
        for k in &keys {
            assert!(f.may_contain(k), "bloom must never miss an inserted key");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = BloomBuilder::new(10);
        for i in 0..10_000 {
            b.add(format!("present{i}").as_bytes());
        }
        let f = b.build();
        let fp = (0..10_000)
            .filter(|i| f.may_contain(format!("absent{i}").as_bytes()))
            .count();
        // 10 bits/key targets ~1%; allow generous slack for hash quality.
        assert!(fp < 300, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut b = BloomBuilder::new(12);
        for i in 0..100 {
            b.add(format!("k{i}").as_bytes());
        }
        let f = b.build();
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        let g = Bloom::decode(&enc).unwrap();
        assert_eq!(f, g);
        for i in 0..100 {
            assert!(g.may_contain(format!("k{i}").as_bytes()));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Bloom::decode(&[]).is_none());
        assert!(Bloom::decode(&[0, 0, 0, 0]).is_none(), "zero hashes invalid");
        assert!(Bloom::decode(&[200, 0, 0, 0, 1]).is_none(), "too many hashes");
    }

    #[test]
    fn empty_filter_reports_absent() {
        let f = BloomBuilder::new(10).build();
        // Even an empty builder produces a valid (all-zero) filter.
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn builder_len() {
        let mut b = BloomBuilder::new(10);
        assert!(b.is_empty());
        b.add(b"x");
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}

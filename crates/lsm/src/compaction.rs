//! Compaction policy and the merge-with-garbage-collection transform.
//!
//! The paper (§2.1, Figure 2c) describes periodic compaction consolidating
//! multi-version records: `C1, C2, C3 → C1'`. We implement a size-tiered
//! policy: when the number of on-disk tables reaches a trigger, all tables
//! are merged into one (a *major* compaction), garbage-collecting shadowed
//! versions and tombstones subject to a retention window.

use crate::types::{Cell, CellKind, Timestamp};
use std::collections::VecDeque;

/// Garbage-collection policy applied while merging.
#[derive(Debug, Clone, Copy)]
pub struct GcPolicy {
    /// Versions with `ts >= retain_after` are always kept, even when
    /// shadowed, so that recent snapshot reads (the paper's
    /// `RB(k, tnew − δ)`) keep working after a compaction.
    pub retain_after: Timestamp,
    /// When true (major compaction over *all* tables), a tombstone that is
    /// the newest version of its key and older than the retention window is
    /// dropped together with everything it shadows. Minor compactions must
    /// keep tombstones because older tables may still hold shadowed values.
    pub drop_tombstones: bool,
}

impl GcPolicy {
    /// Keep every version and every tombstone.
    pub fn retain_everything() -> Self {
        Self { retain_after: 0, drop_tombstones: false }
    }
}

/// Statistics from one merge pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Cells written out.
    pub kept: u64,
    /// Shadowed old versions dropped.
    pub dropped_versions: u64,
    /// Tombstones dropped.
    pub dropped_tombstones: u64,
}

/// Merge an internal-key-ordered, deduplicated all-versions stream (see
/// [`crate::merge::MergeIter`]), applying `policy`. Output preserves
/// internal-key order, so it can stream straight into a
/// [`crate::sstable::TableBuilder`].
pub fn gc_merge<I>(input: I, policy: GcPolicy) -> GcMergeIter<I>
where
    I: Iterator<Item = Cell>,
{
    GcMergeIter {
        input: input.peekable(),
        policy,
        stats: GcStats::default(),
        pending: VecDeque::new(),
    }
}

/// Iterator adapter produced by [`gc_merge`].
pub struct GcMergeIter<I: Iterator<Item = Cell>> {
    input: std::iter::Peekable<I>,
    policy: GcPolicy,
    stats: GcStats,
    pending: VecDeque<Cell>,
}

impl<I: Iterator<Item = Cell>> GcMergeIter<I> {
    /// Statistics accumulated so far (complete once the iterator is drained).
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Pull the next *run* — all versions of one user key — and keep the
    /// survivors: the newest version (unless it is a GC-able tombstone) plus
    /// any shadowed version still inside the retention window.
    fn refill(&mut self) -> bool {
        loop {
            let Some(first) = self.input.next() else { return false };
            let mut run = vec![first];
            while let Some(peek) = self.input.peek() {
                if peek.key.user_key == run[0].key.user_key {
                    run.push(self.input.next().unwrap());
                } else {
                    break;
                }
            }
            for (i, c) in run.into_iter().enumerate() {
                let newest = i == 0;
                let recent = c.key.ts >= self.policy.retain_after;
                let keep = if newest {
                    c.key.kind == CellKind::Put || recent || !self.policy.drop_tombstones
                } else {
                    recent
                };
                if keep {
                    self.stats.kept += 1;
                    self.pending.push_back(c);
                } else if c.key.kind == CellKind::Delete {
                    self.stats.dropped_tombstones += 1;
                } else {
                    self.stats.dropped_versions += 1;
                }
            }
            if !self.pending.is_empty() {
                return true;
            }
            // Whole run was garbage-collected; move to the next key.
        }
    }
}

impl<I: Iterator<Item = Cell>> Iterator for GcMergeIter<I> {
    type Item = Cell;

    fn next(&mut self) -> Option<Cell> {
        if self.pending.is_empty() && !self.refill() {
            return None;
        }
        self.pending.pop_front()
    }
}

/// Size-tiered trigger: compact when at least `trigger` tables exist.
pub fn should_compact(table_count: usize, trigger: usize) -> bool {
    trigger > 0 && table_count >= trigger
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn collect(cells: Vec<Cell>, policy: GcPolicy) -> (Vec<Cell>, GcStats) {
        let mut it = gc_merge(cells.into_iter(), policy);
        let out: Vec<Cell> = it.by_ref().collect();
        (out, it.stats())
    }

    #[test]
    fn retain_everything_is_identity() {
        let cells = vec![
            Cell::put("a", 9, "a9"),
            Cell::put("a", 4, "a4"),
            Cell::delete("b", 7),
            Cell::put("b", 3, "b3"),
        ];
        let (out, stats) = collect(cells.clone(), GcPolicy::retain_everything());
        assert_eq!(out, cells);
        assert_eq!(stats.kept, 4);
        assert_eq!(stats.dropped_versions + stats.dropped_tombstones, 0);
    }

    #[test]
    fn shadowed_old_versions_are_dropped() {
        let cells = vec![
            Cell::put("a", 9, "a9"),
            Cell::put("a", 4, "a4"),
            Cell::put("a", 2, "a2"),
        ];
        let (out, stats) =
            collect(cells, GcPolicy { retain_after: 5, drop_tombstones: false });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Bytes::from("a9"));
        assert_eq!(stats.dropped_versions, 2);
    }

    #[test]
    fn recent_shadowed_versions_survive_retention_window() {
        let cells = vec![Cell::put("a", 9, "a9"), Cell::put("a", 8, "a8")];
        let (out, _) = collect(cells, GcPolicy { retain_after: 7, drop_tombstones: true });
        assert_eq!(out.len(), 2, "both versions within retention window");
    }

    #[test]
    fn old_tombstone_dropped_in_major_compaction() {
        let cells = vec![Cell::delete("a", 4), Cell::put("a", 2, "a2"), Cell::put("b", 9, "b")];
        let (out, stats) =
            collect(cells, GcPolicy { retain_after: 5, drop_tombstones: true });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key.user_key, Bytes::from("b"));
        assert_eq!(stats.dropped_tombstones, 1);
        assert_eq!(stats.dropped_versions, 1);
    }

    #[test]
    fn tombstone_kept_in_minor_compaction() {
        let cells = vec![Cell::delete("a", 4), Cell::put("a", 2, "a2")];
        let (out, _) = collect(cells, GcPolicy { retain_after: 10, drop_tombstones: false });
        // Tombstone survives (newest); the old shadowed put is dropped only
        // if outside retention — retain_after=10 drops it? No: ts 2 < 10 so
        // it is dropped; tombstone newest kept because drop_tombstones=false.
        assert_eq!(out.len(), 1);
        assert!(out[0].is_tombstone());
    }

    #[test]
    fn recent_tombstone_survives_major_compaction() {
        let cells = vec![Cell::delete("a", 9)];
        let (out, _) = collect(cells, GcPolicy { retain_after: 5, drop_tombstones: true });
        assert_eq!(out.len(), 1, "tombstone inside retention window must stay");
    }

    #[test]
    fn order_is_preserved_across_runs() {
        let cells = vec![
            Cell::put("a", 9, "1"),
            Cell::put("a", 8, "2"),
            Cell::put("b", 7, "3"),
            Cell::put("c", 6, "4"),
        ];
        let (out, _) = collect(cells.clone(), GcPolicy { retain_after: 1, drop_tombstones: true });
        assert_eq!(out, cells);
    }

    #[test]
    fn should_compact_trigger() {
        assert!(!should_compact(3, 4));
        assert!(should_compact(4, 4));
        assert!(should_compact(5, 4));
        assert!(!should_compact(100, 0), "trigger 0 disables compaction");
    }
}

//! # diff-index-lsm
//!
//! A from-scratch Log-Structured-Merge (LSM) tree storage engine, built as
//! the storage substrate for the Diff-Index reproduction (EDBT 2014,
//! Tan et al.). It mirrors the abstract LSM model of the paper's §2:
//!
//! * an in-memory, append-only, multi-version **memtable**;
//! * a **write-ahead log** giving durability to unflushed data;
//! * immutable on-disk **SSTables** produced by memtable flushes;
//! * periodic **compaction** consolidating versions and purging tombstones;
//! * `put` is a blind upsert (insert and update are indistinguishable), a
//!   delete is a tombstone write, and reads are *much* slower than writes —
//!   the three properties Diff-Index is designed around.
//!
//! ## Quick example
//!
//! ```
//! use diff_index_lsm::{LsmTree, LsmOptions};
//! let dir = tempdir_lite::TempDir::new("doc").unwrap();
//! let db = LsmTree::open(dir.path(), LsmOptions::default()).unwrap();
//! db.put("user#42", 100, "alice").unwrap();
//! db.put("user#42", 200, "alice v2").unwrap();
//! assert_eq!(db.get_latest(b"user#42").unwrap().unwrap().value.as_ref(), b"alice v2");
//! // Multi-version snapshot read (the paper's RB(k, t - delta)):
//! assert_eq!(db.get(b"user#42", 199).unwrap().unwrap().value.as_ref(), b"alice");
//! ```

#![warn(missing_docs)]

pub mod bloom;
pub mod cache;
pub mod compaction;
pub mod engine;
pub mod faults;
pub mod memtable;
pub mod merge;
pub mod metrics;
pub mod sstable;
pub mod types;
pub mod util;
pub mod wal;

pub use cache::BlockCache;
pub use engine::{FlushHook, LsmOptions, LsmTree, WriteHandle};
pub use faults::FaultInjector;
pub use metrics::{Metrics, MetricsSnapshot};
pub use sstable::{Block, TableOptions};
pub use types::{Cell, CellKind, InternalKey, LsmError, Result, Timestamp, VersionedValue, DELTA};

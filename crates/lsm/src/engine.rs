//! The LSM tree engine: durable `put`/`get`/`delete`/`scan` over one
//! memtable, one write-ahead log segment, and a stack of SSTables, with
//! flush and compaction (Figure 2 of the paper).
//!
//! One `LsmTree` corresponds to one column-family store inside one region —
//! a region server in `diff-index-cluster` hosts many of them.
//!
//! ## Read-path concurrency
//!
//! Reads are served from an immutable [`Snapshot`] — the active memtable,
//! a list of frozen (flushing) memtables, and the SSTable stack — published
//! behind an atomically swapped `Arc`. A reader clones the `Arc` once and
//! then works entirely from its private view: memtable probes take a brief
//! in-memory lock each, and table probes hold **no lock at all**, so disk
//! I/O never blocks writers, flushes, or compactions (and vice versa).
//!
//! Flush freezes the active memtable by publishing a new snapshot (fresh
//! active in front, old active appended to the frozen list) under the write
//! lock, then builds the SSTable from the frozen memtable with no locks
//! held. Compaction likewise merges a private clone of the table stack.
//! This mirrors RocksDB's "superversion" scheme.
//!
//! ## Write-path concurrency (group commit)
//!
//! A write is split into *staging* and *durability*. [`LsmTree::stage_batch`]
//! holds the `write_state` lock only for in-memory work: it appends the
//! record to the WAL's user-space buffer and inserts into the active
//! memtable, assigning the record a monotonically increasing sequence
//! number. [`LsmTree::complete`] then waits for that sequence to become
//! durable. In `wal_sync` mode one waiter at a time elects itself the
//! **group-commit leader**: it flushes the WAL buffer, fsyncs an
//! independent clone of the segment file with **no lock held**, and
//! advances `durable_seq` past every record staged before the fsync — so N
//! concurrent writers share one fsync instead of paying one each.
//!
//! Lock order: `maintenance` → `write_state` → `durability`. The leader
//! never holds `durability` while acquiring `write_state` (it drops the
//! guard first), so there is no hold-and-wait cycle with flushes, which
//! take `write_state` then `durability` when rolling the WAL.

use crate::cache::BlockCache;
use crate::compaction::{gc_merge, should_compact, GcPolicy};
use crate::faults::FaultInjector;
use crate::memtable::MemTable;
use crate::merge::{MergeIter, VisibleIter};
use crate::metrics::Metrics;
use crate::sstable::{Table, TableBuilder, TableOptions};
use crate::types::{Cell, CellKind, InternalKey, LsmError, Result, Timestamp, VersionedValue};
use crate::wal::{replay, WalWriter};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Engine tuning options.
#[derive(Clone)]
pub struct LsmOptions {
    /// Flush the memtable once its approximate size exceeds this.
    pub memtable_flush_bytes: usize,
    /// SSTable construction knobs.
    pub table: TableOptions,
    /// `fsync` the WAL on every append (true = fully durable, slower).
    pub wal_sync: bool,
    /// Shared block cache; `None` disables caching.
    pub block_cache: Option<Arc<BlockCache>>,
    /// Trigger a major compaction when this many tables exist (0 = never).
    pub compaction_trigger: usize,
    /// Shadowed versions younger than this many timestamp units survive
    /// compaction, so recent `RB(k, t−δ)` snapshot reads stay answerable.
    pub version_retention: Timestamp,
    /// Automatically flush when the memtable crosses the threshold.
    pub auto_flush: bool,
    /// Automatically compact when the trigger is reached after a flush.
    pub auto_compact: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        Self {
            memtable_flush_bytes: 4 * 1024 * 1024,
            table: TableOptions::default(),
            wal_sync: false,
            block_cache: Some(Arc::new(BlockCache::new(32 * 1024 * 1024))),
            compaction_trigger: 4,
            version_retention: 60_000,
            auto_flush: true,
            auto_compact: true,
        }
    }
}

impl std::fmt::Debug for LsmOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmOptions")
            .field("memtable_flush_bytes", &self.memtable_flush_bytes)
            .field("wal_sync", &self.wal_sync)
            .field("compaction_trigger", &self.compaction_trigger)
            .field("version_retention", &self.version_retention)
            .finish()
    }
}

/// Hook invoked around memtable flushes. Diff-Index registers a `pre_flush`
/// hook that pauses and drains the AUQ (the paper's Figure 5: "1. pause &
/// drain" happens before "2. flush" and "3. roll forward").
pub type FlushHook = Box<dyn Fn() + Send + Sync>;

/// Which engine crash point is asking the fault injector.
#[derive(Clone, Copy)]
enum FaultKind {
    Fsync,
    Append,
}

/// A memtable handle shared between the write path and snapshots. Only the
/// snapshot's *active* handle is ever written to; frozen handles are
/// immutable, so their lock is uncontended.
type MemHandle = Arc<RwLock<MemTable>>;

/// One immutable view of the tree. Readers clone the current `Arc<Snapshot>`
/// and keep every component alive for the duration of their operation, even
/// if a concurrent flush or compaction publishes a newer snapshot and
/// unlinks the files they are reading (POSIX keeps open files readable).
struct Snapshot {
    /// The memtable accepting writes (in the *current* snapshot only).
    active: MemHandle,
    /// Memtables frozen by an in-flight flush, newest first.
    frozen: Vec<MemHandle>,
    /// On-disk tables, newest first.
    tables: Vec<Arc<Table>>,
}

/// State owned by the write path, serializing WAL appends, memtable inserts
/// and file-number allocation. Held only for in-memory work plus the WAL
/// append — never across SSTable builds.
struct WriteState {
    wal: Option<WalWriter>,
    wal_no: u64,
    next_file_no: u64,
    /// WAL segments superseded by a freeze but not yet safe to delete
    /// (their data is still only in a frozen memtable).
    pending_wals: Vec<u64>,
    /// Sequence number of the newest record staged into the WAL buffer.
    /// Monotonic across segment rolls.
    staged_seq: u64,
}

/// Group-commit bookkeeping, guarded by its own mutex so waiters never
/// contend with the staging fast path.
struct DurabilityState {
    /// Every record with `seq <= durable_seq` is on stable storage.
    durable_seq: u64,
    /// True while some thread (the group-commit leader) is fsyncing.
    syncing: bool,
}

/// A staged, not-yet-completed write: the sequence number to wait on for
/// durability plus whether the memtable crossed the flush threshold.
#[derive(Debug, Clone, Copy)]
#[must_use = "a staged write is not durable (nor flushed) until passed to LsmTree::complete"]
pub struct WriteHandle {
    seq: u64,
    needs_flush: bool,
}

/// A single LSM tree, durable under a directory.
pub struct LsmTree {
    dir: PathBuf,
    opts: LsmOptions,
    /// The current snapshot; swapped atomically (brief lock, no I/O).
    current: RwLock<Arc<Snapshot>>,
    write_state: Mutex<WriteState>,
    durability: Mutex<DurabilityState>,
    durable_cv: Condvar,
    /// Serializes flush/compaction against each other.
    maintenance: Mutex<()>,
    metrics: Arc<Metrics>,
    pre_flush_hooks: RwLock<Vec<FlushHook>>,
    post_flush_hooks: RwLock<Vec<FlushHook>>,
    /// Optional chaos-testing hook: armed failures consumed at the WAL
    /// append and fsync crash points. `None` in production.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

impl std::fmt::Debug for LsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmTree").field("dir", &self.dir).finish()
    }
}

fn wal_path(dir: &Path, no: u64) -> PathBuf {
    dir.join(format!("wal-{no:010}.log"))
}

fn table_path(dir: &Path, no: u64) -> PathBuf {
    dir.join(format!("{no:010}.sst"))
}

impl LsmTree {
    /// Open (or create) an engine under `dir`, replaying any WAL segments
    /// left behind by a crash.
    pub fn open(dir: impl Into<PathBuf>, opts: LsmOptions) -> Result<Self> {
        Ok(Self::open_with_replay(dir, opts)?.0)
    }

    /// Like [`LsmTree::open`], but also returns the cells recovered from WAL
    /// replay. Diff-Index's failure-recovery protocol (§5.3 of the paper)
    /// re-enqueues every replayed base put into the AUQ, so the caller needs
    /// to see them.
    pub fn open_with_replay(dir: impl Into<PathBuf>, opts: LsmOptions) -> Result<(Self, Vec<Cell>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let metrics = Arc::new(Metrics::new());

        // 1. Manifest → live tables.
        let (table_nos, mut next_file_no) = read_manifest(&dir)?;
        let mut tables = Vec::with_capacity(table_nos.len());
        for &no in table_nos.iter().rev() {
            // Manifest lists oldest first; we keep newest first.
            tables.push(Arc::new(
                Table::open(table_path(&dir, no), no, opts.block_cache.clone())?
                    .with_metrics(Arc::clone(&metrics)),
            ));
        }

        // 2. Replay leftover WAL segments (oldest first) into the memtable.
        let mut wal_nos: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let num = name.strip_prefix("wal-")?.strip_suffix(".log")?;
                num.parse::<u64>().ok()
            })
            .collect();
        wal_nos.sort_unstable();
        let mut memtable = MemTable::new();
        let mut replayed = Vec::new();
        for &no in &wal_nos {
            let r = replay(wal_path(&dir, no))?;
            for c in r.cells {
                replayed.push(c);
            }
            next_file_no = next_file_no.max(no + 1);
        }
        for c in &replayed {
            memtable.insert(c.clone());
        }

        // 3. Fresh WAL segment; re-log replayed cells so a second crash
        //    before the next flush still recovers them, then drop the old
        //    segments.
        let wal_no = next_file_no;
        next_file_no += 1;
        let mut wal = WalWriter::create(wal_path(&dir, wal_no), opts.wal_sync)?;
        if !replayed.is_empty() {
            wal.append(&replayed)?;
            wal.sync()?;
        }
        for &no in &wal_nos {
            std::fs::remove_file(wal_path(&dir, no))?;
        }

        let tree = Self {
            dir,
            opts,
            current: RwLock::new(Arc::new(Snapshot {
                active: Arc::new(RwLock::new(memtable)),
                frozen: Vec::new(),
                tables,
            })),
            write_state: Mutex::new(WriteState {
                wal: Some(wal),
                wal_no,
                next_file_no,
                pending_wals: Vec::new(),
                staged_seq: 0,
            }),
            durability: Mutex::new(DurabilityState { durable_seq: 0, syncing: false }),
            durable_cv: Condvar::new(),
            maintenance: Mutex::new(()),
            metrics,
            pre_flush_hooks: RwLock::new(Vec::new()),
            post_flush_hooks: RwLock::new(Vec::new()),
            faults: RwLock::new(None),
        };
        Ok((tree, replayed))
    }

    /// Directory this engine persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Engine counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Register a hook that runs immediately before each memtable flush.
    pub fn add_pre_flush_hook(&self, hook: FlushHook) {
        self.pre_flush_hooks.write().push(hook);
    }

    /// Register a hook that runs immediately after each memtable flush.
    pub fn add_post_flush_hook(&self, hook: FlushHook) {
        self.post_flush_hooks.write().push(hook);
    }

    /// Attach a [`FaultInjector`] whose armed failures fire at this
    /// engine's WAL crash points (chaos testing only). One injector may be
    /// shared by many engines; whichever engine performs the next matching
    /// operation consumes the armed failure.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.faults.write() = Some(injector);
    }

    /// True if an armed `kind` failure was consumed and the caller must
    /// fail the current operation.
    fn injected(&self, kind: FaultKind) -> bool {
        let guard = self.faults.read();
        match (guard.as_ref(), kind) {
            (Some(f), FaultKind::Fsync) => f.take_fsync_failure(),
            (Some(f), FaultKind::Append) => f.take_append_failure(),
            (None, _) => false,
        }
    }

    /// Clone the current snapshot `Arc`. The lock protects only the pointer
    /// swap; it is never held across any I/O.
    fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read())
    }

    /// Atomically install a new snapshot. Callers (flush/compaction) are
    /// serialized by the maintenance lock, so swaps never race each other.
    fn publish(&self, snap: Arc<Snapshot>) {
        *self.current.write() = snap;
    }

    // -- writes ------------------------------------------------------------

    /// Append a batch of cells atomically (one WAL record): stage, then
    /// wait for group-commit durability. Callers that hold a coarser lock
    /// around timestamp assignment should instead call
    /// [`LsmTree::stage_batch`] inside it and [`LsmTree::complete`] outside,
    /// so unrelated writers share the durability wait.
    pub fn write_batch(&self, cells: &[Cell]) -> Result<()> {
        match self.stage_batch(cells)? {
            Some(handle) => self.complete(handle),
            None => Ok(()),
        }
    }

    /// Write N `(key, ts, value)` cells as **one** WAL record and **one**
    /// memtable apply under a single `write_state` acquisition.
    pub fn put_batch(&self, entries: &[(Bytes, Timestamp, Bytes)]) -> Result<()> {
        let cells: Vec<Cell> = entries
            .iter()
            .map(|(k, ts, v)| Cell::put(k.clone(), *ts, v.clone()))
            .collect();
        self.write_batch(&cells)
    }

    /// Stage a batch: one buffered WAL append plus the memtable apply,
    /// under one `write_state` acquisition — **no fsync, no flush**. The
    /// write is visible to readers immediately but is not durable until
    /// [`LsmTree::complete`] (or a later group commit) covers its sequence
    /// number. Returns `None` for empty batches, which cost nothing.
    pub fn stage_batch(&self, cells: &[Cell]) -> Result<Option<WriteHandle>> {
        if cells.is_empty() {
            return Ok(None);
        }
        if self.injected(FaultKind::Append) {
            // Injected *before* anything is staged: the write fails
            // wholesale, exactly like a disk-full on the WAL append.
            return Err(FaultInjector::injected_error("wal append"));
        }
        let mut ws = self.write_state.lock();
        let wal = ws
            .wal
            .as_mut()
            .ok_or_else(|| LsmError::InvalidOperation("engine closed".into()))?;
        wal.append_buffered(cells)?;
        if !self.opts.wal_sync {
            // Keep non-durable mode's old contract: bytes reach the OS on
            // every append, so a clean process exit loses nothing.
            wal.flush_os_buffer()?;
        }
        ws.staged_seq += 1;
        let seq = ws.staged_seq;
        Metrics::bump(&self.metrics.wal_appends);
        // The write-state lock also blocks freezes, so this snapshot's
        // `active` handle is guaranteed to be the live one.
        let snap = self.snapshot();
        let mut active = snap.active.write();
        for c in cells {
            match c.key.kind {
                CellKind::Put => Metrics::bump(&self.metrics.puts),
                CellKind::Delete => Metrics::bump(&self.metrics.deletes),
            }
            active.insert(c.clone());
        }
        let needs_flush =
            self.opts.auto_flush && active.approximate_bytes() >= self.opts.memtable_flush_bytes;
        Ok(Some(WriteHandle { seq, needs_flush }))
    }

    /// Second half of a staged write: wait until the record is durable
    /// (in `wal_sync` mode), then run the auto-flush the staging detected.
    pub fn complete(&self, handle: WriteHandle) -> Result<()> {
        if self.opts.wal_sync {
            self.wait_durable(handle.seq)?;
        }
        if handle.needs_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// Block until every record with sequence `<= seq` is on stable
    /// storage, electing this thread group-commit leader if no fsync is in
    /// flight. Followers park on the condvar and are released in one
    /// `notify_all` when the leader's fsync covers them.
    fn wait_durable(&self, seq: u64) -> Result<()> {
        let mut d = self.durability.lock();
        loop {
            if d.durable_seq >= seq {
                return Ok(());
            }
            if d.syncing {
                self.durable_cv.wait(&mut d);
                continue;
            }
            d.syncing = true;
            let already_durable = d.durable_seq;
            drop(d);
            let synced = self.sync_wal();
            d = self.durability.lock();
            d.syncing = false;
            let failed = match synced {
                Ok(upto) => {
                    if upto > d.durable_seq {
                        Metrics::bump(&self.metrics.wal_fsyncs);
                        Metrics::add(&self.metrics.group_commit_records, upto - already_durable);
                        d.durable_seq = upto;
                    }
                    None
                }
                Err(e) => Some(e),
            };
            // Wake followers either way: on failure each retries leadership
            // and reports its own error rather than trusting a clone.
            self.durable_cv.notify_all();
            if let Some(e) = failed {
                return Err(e);
            }
        }
    }

    /// Flush the WAL's user-space buffer and fsync the segment. The fsync
    /// runs on an independent file handle with **no lock held**, so writers
    /// keep staging into the buffer while the leader waits on the disk.
    /// Returns the staged sequence the fsync is guaranteed to cover.
    fn sync_wal(&self) -> Result<u64> {
        let (file, upto) = {
            let mut ws = self.write_state.lock();
            let upto = ws.staged_seq;
            let wal = ws
                .wal
                .as_mut()
                .ok_or_else(|| LsmError::InvalidOperation("engine closed".into()))?;
            (wal.flush_and_clone()?, upto)
        };
        if self.injected(FaultKind::Fsync) {
            // The buffer already reached the OS file (flush_and_clone), so
            // the record is *applied but unacked*: a crash + replay will
            // recover it even though the writer saw an error — §5.3's
            // ambiguous-outcome window, which recovery must repair.
            return Err(FaultInjector::injected_error("wal fsync"));
        }
        file.sync_data()?;
        Ok(upto)
    }

    /// Write one value cell.
    pub fn put(&self, key: impl Into<Bytes>, ts: Timestamp, value: impl Into<Bytes>) -> Result<()> {
        self.write_batch(&[Cell::put(key.into(), ts, value.into())])
    }

    /// Write one tombstone.
    pub fn delete(&self, key: impl Into<Bytes>, ts: Timestamp) -> Result<()> {
        self.write_batch(&[Cell::delete(key.into(), ts)])
    }

    // -- reads ---------------------------------------------------------------

    /// Newest cell (tombstones included) for `key` visible at `ts`.
    pub fn get_versioned(&self, key: &[u8], ts: Timestamp) -> Result<Option<Cell>> {
        Metrics::bump(&self.metrics.gets);
        let snap = self.snapshot();
        // Memtable probes: one brief in-memory lock each; no disk I/O.
        let mut best: Option<Cell> = snap.active.read().get_versioned(key, ts);
        for mem in &snap.frozen {
            if let Some(c) = mem.read().get_versioned(key, ts) {
                let better = match &best {
                    None => true,
                    Some(b) => c.key < b.key, // smaller internal key = newer
                };
                if better {
                    best = Some(c);
                }
            }
        }
        // Table probes: no lock held; disk I/O never blocks the write path.
        for table in &snap.tables {
            if let Some(b) = &best {
                // No older table can beat a candidate at least as new as
                // everything the table holds.
                if b.key.ts >= table.properties().max_ts {
                    Metrics::bump(&self.metrics.tables_skipped);
                    continue;
                }
            }
            if table.outside_key_range(key) || table.definitely_absent(key) {
                Metrics::bump(&self.metrics.tables_skipped);
                continue;
            }
            Metrics::bump(&self.metrics.tables_probed);
            if let Some(c) = table.probe_versioned(key, ts)? {
                let better = match &best {
                    None => true,
                    Some(b) => c.key < b.key,
                };
                if better {
                    best = Some(c);
                }
            }
        }
        Ok(best)
    }

    /// Newest visible value for `key` at `ts`, hiding tombstones.
    pub fn get(&self, key: &[u8], ts: Timestamp) -> Result<Option<VersionedValue>> {
        Ok(match self.get_versioned(key, ts)? {
            Some(c) if c.key.kind == CellKind::Put => {
                Some(VersionedValue { value: c.value, ts: c.key.ts })
            }
            _ => None,
        })
    }

    /// Latest visible value (snapshot = ∞).
    pub fn get_latest(&self, key: &[u8]) -> Result<Option<VersionedValue>> {
        self.get(key, Timestamp::MAX)
    }

    /// Scan user keys in `[start, end)` at snapshot `ts`, returning up to
    /// `limit` visible rows (newest visible version per key).
    ///
    /// Holds read guards on the memtables for the duration of the merge
    /// (writers to the active memtable may briefly wait), but never blocks
    /// flush or compaction: freezing swaps handles without locking the old
    /// active, and table iteration works off this scan's private snapshot.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        ts: Timestamp,
        limit: usize,
    ) -> Result<Vec<(Bytes, VersionedValue)>> {
        Metrics::bump(&self.metrics.scans);
        let snap = self.snapshot();
        let seek = InternalKey::seek_to(Bytes::copy_from_slice(start), Timestamp::MAX);
        let end_owned: Option<Bytes> = end.map(Bytes::copy_from_slice);

        let active_guard = snap.active.read();
        let frozen_guards: Vec<_> = snap.frozen.iter().map(|m| m.read()).collect();
        let mut sources: Vec<Box<dyn Iterator<Item = Cell> + '_>> = Vec::new();
        sources.push(Box::new(active_guard.range(start, end)));
        for g in &frozen_guards {
            sources.push(Box::new(g.range(start, end)));
        }
        for table in &snap.tables {
            let end_for_table = end_owned.clone();
            let it = table
                .iter_from(Some(&seek))
                .take_while(move |c| match &end_for_table {
                    Some(e) => c.key.user_key < *e,
                    None => true,
                });
            sources.push(Box::new(it));
        }
        let merged = MergeIter::new(sources);
        let visible = VisibleIter::new(merged, ts);
        Ok(visible
            .take(limit)
            .map(|c| (c.key.user_key, VersionedValue { value: c.value, ts: c.key.ts }))
            .collect())
    }

    // -- maintenance ---------------------------------------------------------

    /// Flush the memtable to a new SSTable, then roll the WAL forward
    /// (delete the old segment). Runs the registered pre/post flush hooks.
    ///
    /// Writers are paused only while the active memtable is *frozen* (a
    /// pointer swap plus a WAL roll); the expensive SSTable build runs with
    /// no engine lock held, and readers are never blocked at all.
    pub fn flush(&self) -> Result<()> {
        {
            let _guard = self.maintenance.lock();
            // Paper §5.3 / Figure 5: "1. pause & drain (AUQ)" before flush.
            for hook in self.pre_flush_hooks.read().iter() {
                hook();
            }
            let result = self.flush_locked();
            // "4. resume" — even if the flush failed.
            for hook in self.post_flush_hooks.read().iter() {
                hook();
            }
            result?;
        } // release the maintenance lock before compacting (non-reentrant)

        let table_count = self.snapshot().tables.len();
        if self.opts.auto_compact && should_compact(table_count, self.opts.compaction_trigger) {
            self.compact()?;
        }
        Ok(())
    }

    /// Flush body; the caller holds the maintenance lock.
    fn flush_locked(&self) -> Result<()> {
        // Phase 1 — freeze. Under the write-state lock: roll the WAL and
        // publish a snapshot with a fresh active memtable, the old active
        // demoted to the frozen list. Writers resume as soon as this block
        // exits; readers were never blocked.
        let (build_snap, table_file_no) = {
            let mut ws = self.write_state.lock();
            let snap = self.snapshot();
            let active_empty = snap.active.read().is_empty();
            if active_empty && snap.frozen.is_empty() {
                return Ok(());
            }
            let table_file_no = ws.next_file_no;
            ws.next_file_no += 1;
            if active_empty {
                // Leftover frozen memtables from a failed earlier flush:
                // nothing new to freeze, just retry the build below.
                (snap, table_file_no)
            } else {
                let new_wal_no = ws.next_file_no;
                ws.next_file_no += 1;
                let old_wal_no = ws.wal_no;
                // Settle the outgoing segment before swapping it out: every
                // record staged so far lives in it (or an older, already
                // settled one), so after this the whole staged prefix is as
                // durable as the mode promises. `sync_wal` relies on this —
                // it only ever fsyncs the *current* segment.
                if let Some(old_wal) = ws.wal.as_mut() {
                    if self.opts.wal_sync {
                        old_wal.sync()?;
                        Metrics::bump(&self.metrics.wal_fsyncs);
                    } else {
                        old_wal.flush_os_buffer()?;
                    }
                }
                {
                    let mut d = self.durability.lock();
                    if ws.staged_seq > d.durable_seq {
                        d.durable_seq = ws.staged_seq;
                        self.durable_cv.notify_all();
                    }
                }
                ws.wal = Some(WalWriter::create(
                    wal_path(&self.dir, new_wal_no),
                    self.opts.wal_sync,
                )?);
                ws.wal_no = new_wal_no;
                // The old segment covers exactly the frozen data; delete it
                // only once that data is safely inside an SSTable.
                ws.pending_wals.push(old_wal_no);

                let mut frozen = Vec::with_capacity(snap.frozen.len() + 1);
                frozen.push(Arc::clone(&snap.active));
                frozen.extend(snap.frozen.iter().cloned());
                let next = Arc::new(Snapshot {
                    active: Arc::new(RwLock::new(MemTable::new())),
                    frozen,
                    tables: snap.tables.clone(),
                });
                self.publish(Arc::clone(&next));
                (next, table_file_no)
            }
        };

        // Phase 2 — build. Merge the frozen memtables (newest first, so the
        // merge's duplicate-suppression keeps the newest copy) into one
        // SSTable. No engine lock is held: reads and writes proceed freely.
        let path = table_path(&self.dir, table_file_no);
        let mut builder = TableBuilder::create(&path, self.opts.table.clone())?;
        {
            let guards: Vec<_> = build_snap.frozen.iter().map(|m| m.read()).collect();
            let sources: Vec<Box<dyn Iterator<Item = Cell> + '_>> =
                guards.iter().map(|g| Box::new(g.iter()) as _).collect();
            for cell in MergeIter::new(sources) {
                builder.add(&cell)?;
            }
        }
        let props = builder.finish()?;
        Metrics::bump(&self.metrics.flushes);
        Metrics::add(&self.metrics.bytes_flushed, props.file_size);
        let table = Arc::new(
            Table::open(&path, table_file_no, self.opts.block_cache.clone())?
                .with_metrics(Arc::clone(&self.metrics)),
        );

        // Phase 3 — publish the table, drop the frozen memtables, persist
        // the manifest, then delete the superseded WAL segments. A crash
        // before the deletes only costs a harmless re-replay of
        // already-flushed data.
        let cur = self.snapshot();
        let mut tables = Vec::with_capacity(cur.tables.len() + 1);
        tables.push(table);
        tables.extend(cur.tables.iter().cloned());
        let next = Arc::new(Snapshot {
            active: Arc::clone(&cur.active),
            frozen: Vec::new(),
            tables,
        });
        let nos: Vec<u64> = next.tables.iter().rev().map(|t| t.id()).collect();
        let stale_wals: Vec<u64> = {
            let mut ws = self.write_state.lock();
            write_manifest(&self.dir, &nos, ws.next_file_no)?;
            self.publish(next);
            ws.pending_wals.drain(..).collect()
        };
        for no in stale_wals {
            std::fs::remove_file(wal_path(&self.dir, no))?;
        }
        Ok(())
    }

    /// Major compaction: merge all SSTables into one, garbage-collecting
    /// shadowed versions and expired tombstones (Figure 2c).
    ///
    /// Works entirely off a private clone of the table stack; concurrent
    /// reads and writes are never blocked.
    pub fn compact(&self) -> Result<()> {
        let _guard = self.maintenance.lock();
        let tables: Vec<Arc<Table>> = self.snapshot().tables.clone();
        if tables.len() < 2 {
            return Ok(());
        }
        let max_ts = tables.iter().map(|t| t.properties().max_ts).max().unwrap_or(0);
        let policy = GcPolicy {
            retain_after: max_ts.saturating_sub(self.opts.version_retention),
            drop_tombstones: true,
        };

        let file_no = {
            let mut ws = self.write_state.lock();
            let no = ws.next_file_no;
            ws.next_file_no += 1;
            no
        };
        let path = table_path(&self.dir, file_no);
        let sources: Vec<Box<dyn Iterator<Item = Cell> + '_>> =
            tables.iter().map(|t| Box::new(t.iter_from(None)) as _).collect();
        let merged = MergeIter::new(sources);
        let mut gc = gc_merge(merged, policy);
        let mut builder = TableBuilder::create(&path, self.opts.table.clone())?;
        for cell in gc.by_ref() {
            builder.add(&cell)?;
        }
        let stats = gc.stats();
        Metrics::add(
            &self.metrics.gc_dropped_cells,
            stats.dropped_versions + stats.dropped_tombstones,
        );

        let new_table = if builder.cell_count() > 0 {
            let props = builder.finish()?;
            Metrics::add(&self.metrics.bytes_compacted, props.file_size);
            Some(Arc::new(
                Table::open(&path, file_no, self.opts.block_cache.clone())?
                    .with_metrics(Arc::clone(&self.metrics)),
            ))
        } else {
            // Everything was garbage-collected; no output table.
            drop(builder);
            let _ = std::fs::remove_file(&path);
            None
        };
        Metrics::bump(&self.metrics.compactions);

        // Publish: replace the compacted inputs with the merged output.
        // Tables flushed *during* this compaction (none today — the
        // maintenance lock serializes — but be defensive) stay in front.
        let compacted_ids: Vec<u64> = tables.iter().map(|t| t.id()).collect();
        let cur = self.snapshot();
        let old_paths: Vec<PathBuf> = cur
            .tables
            .iter()
            .filter(|t| compacted_ids.contains(&t.id()))
            .map(|t| t.path().to_path_buf())
            .collect();
        let mut kept: Vec<Arc<Table>> = cur
            .tables
            .iter()
            .filter(|t| !compacted_ids.contains(&t.id()))
            .cloned()
            .collect();
        if let Some(t) = new_table {
            kept.push(t);
        }
        let next = Arc::new(Snapshot {
            active: Arc::clone(&cur.active),
            frozen: cur.frozen.clone(),
            tables: kept,
        });
        let nos: Vec<u64> = next.tables.iter().rev().map(|t| t.id()).collect();
        {
            let ws = self.write_state.lock();
            write_manifest(&self.dir, &nos, ws.next_file_no)?;
            self.publish(next);
        }
        // Readers still holding the old snapshot keep the unlinked files
        // alive through their open descriptors.
        for p in old_paths {
            let _ = std::fs::remove_file(p);
        }
        Ok(())
    }

    // -- introspection -------------------------------------------------------

    /// Number of on-disk tables.
    pub fn table_count(&self) -> usize {
        self.snapshot().tables.len()
    }

    /// Approximate bytes across the active and frozen memtables.
    pub fn memtable_bytes(&self) -> usize {
        let snap = self.snapshot();
        let active = snap.active.read().approximate_bytes();
        let frozen: usize = snap.frozen.iter().map(|m| m.read().approximate_bytes()).sum();
        active + frozen
    }

    /// Number of cells across the active and frozen memtables.
    pub fn memtable_cells(&self) -> usize {
        let snap = self.snapshot();
        let active = snap.active.read().len();
        let frozen: usize = snap.frozen.iter().map(|m| m.read().len()).sum();
        active + frozen
    }

    /// Largest timestamp stored anywhere in this tree (memtables or
    /// SSTables). Recovery uses it to advance the adopting server's clock
    /// past everything the previous owner wrote.
    pub fn max_timestamp(&self) -> Timestamp {
        let snap = self.snapshot();
        let mut max = snap.active.read().max_ts();
        for m in &snap.frozen {
            max = max.max(m.read().max_ts());
        }
        for t in &snap.tables {
            max = max.max(t.properties().max_ts);
        }
        max
    }

    /// Drop the engine as a crash would: the memtable vanishes, the WAL and
    /// SSTables stay. Reopen with [`LsmTree::open`] to recover.
    pub fn simulate_crash(self) {
        // Nothing to do: `Drop` performs no flush by design.
        drop(self);
    }
}

// -- manifest ----------------------------------------------------------------

fn read_manifest(dir: &Path) -> Result<(Vec<u64>, u64)> {
    let path = dir.join("MANIFEST");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 1)),
        Err(e) => return Err(e.into()),
    };
    let mut tables = Vec::new();
    let mut next = 1u64;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("next=") {
            next = v
                .parse()
                .map_err(|_| LsmError::Corruption(format!("manifest: bad next {v:?}")))?;
        } else if let Some(v) = line.strip_prefix("table=") {
            tables.push(
                v.parse()
                    .map_err(|_| LsmError::Corruption(format!("manifest: bad table {v:?}")))?,
            );
        }
    }
    Ok((tables, next))
}

fn write_manifest(dir: &Path, table_nos_oldest_first: &[u64], next: u64) -> Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    let path = dir.join("MANIFEST");
    let mut text = format!("next={next}\n");
    for no in table_nos_oldest_first {
        text.push_str(&format!("table={no}\n"));
    }
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir_lite::TempDir;

    #[test]
    #[ignore = "manual layer-timing probe; run with --ignored --nocapture"]
    fn layer_timing_probe() {
        let dir = TempDir::new("probe").unwrap();
        let opts = LsmOptions {
            block_cache: Some(Arc::new(BlockCache::new(256 * 1024 * 1024))),
            auto_flush: false,
            auto_compact: false,
            compaction_trigger: 0,
            ..LsmOptions::default()
        };
        let db = LsmTree::open(dir.path().join("db"), opts).unwrap();
        const KEYS: u64 = 50_000;
        let key = |id: u64| Bytes::from(format!("user{id:08}"));
        for id in 0..KEYS {
            db.put(key(id), id + 1, vec![b'v'; 100]).unwrap();
            if id % 10_000 == 9_999 && id != KEYS - 1 {
                db.flush().unwrap();
            }
        }
        db.flush().unwrap();
        for id in (0..KEYS).step_by(5) {
            db.put(key(id), KEYS + id + 1, vec![b'w'; 100]).unwrap();
        }
        for id in 0..KEYS {
            db.get_latest(&key(id)).unwrap();
        }
        // Pre-generate keys so keygen is measured separately.
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) % KEYS
        };
        let probes: Vec<Bytes> = (0..30_000).map(|_| key(next())).collect();
        let time = |label: &str, f: &mut dyn FnMut()| {
            let t0 = std::time::Instant::now();
            f();
            println!("{label:30} {:>8.1} ns/op", t0.elapsed().as_nanos() as f64 / 30_000.0);
        };
        time("keygen", &mut || {
            let mut n = next;
            for _ in 0..30_000 {
                std::hint::black_box(key(n()));
            }
        });
        time("snapshot_clone", &mut || {
            for _ in 0..30_000 {
                std::hint::black_box(db.snapshot());
            }
        });
        let snap = db.snapshot();
        time("memtable_probe", &mut || {
            for k in &probes {
                std::hint::black_box(snap.active.read().get_versioned(k, u64::MAX));
            }
        });
        time("range_check_x5", &mut || {
            for k in &probes {
                for t in &snap.tables {
                    std::hint::black_box(t.outside_key_range(k));
                }
            }
        });
        time("bloom_owning_table", &mut || {
            for k in &probes {
                for t in &snap.tables {
                    if !t.outside_key_range(k) {
                        std::hint::black_box(t.definitely_absent(k));
                        break;
                    }
                }
            }
        });
        time("probe_versioned_owning", &mut || {
            for k in &probes {
                for t in &snap.tables {
                    if !t.outside_key_range(k) {
                        std::hint::black_box(t.probe_versioned(k, u64::MAX).unwrap());
                        break;
                    }
                }
            }
        });
        time("full_get_latest", &mut || {
            for k in &probes {
                std::hint::black_box(db.get_latest(k).unwrap());
            }
        });
    }

    fn small_opts() -> LsmOptions {
        LsmOptions {
            memtable_flush_bytes: 1024,
            table: TableOptions { block_size: 256, bloom_bits_per_key: 10 },
            wal_sync: false,
            block_cache: Some(Arc::new(BlockCache::new(1 << 20))),
            compaction_trigger: 4,
            version_retention: 10,
            auto_flush: true,
            auto_compact: true,
        }
    }

    fn manual_opts() -> LsmOptions {
        LsmOptions { auto_flush: false, auto_compact: false, ..small_opts() }
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k1", 10, "v1").unwrap();
        db.put("k2", 11, "v2").unwrap();
        assert_eq!(db.get_latest(b"k1").unwrap().unwrap().value, Bytes::from("v1"));
        assert_eq!(db.get_latest(b"k2").unwrap().unwrap().ts, 11);
        assert!(db.get_latest(b"k3").unwrap().is_none());
    }

    #[test]
    fn update_is_new_version_old_still_readable() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 10, "old").unwrap();
        db.put("k", 20, "new").unwrap();
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("new"));
        // The paper's RB(k, tnew − δ):
        let old = db.get(b"k", 19).unwrap().unwrap();
        assert_eq!(old.value, Bytes::from("old"));
        assert_eq!(old.ts, 10);
    }

    #[test]
    fn delete_writes_tombstone() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 10, "v").unwrap();
        db.delete("k", 20).unwrap();
        assert!(db.get_latest(b"k").unwrap().is_none());
        assert!(db.get(b"k", 15).unwrap().is_some(), "snapshot before delete sees value");
        let c = db.get_versioned(b"k", u64::MAX).unwrap().unwrap();
        assert!(c.is_tombstone());
    }

    #[test]
    fn get_spans_memtable_and_tables() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("a", 1, "a1").unwrap();
        db.flush().unwrap();
        db.put("b", 2, "b2").unwrap();
        db.flush().unwrap();
        db.put("c", 3, "c3").unwrap();
        assert_eq!(db.table_count(), 2);
        for (k, v) in [("a", "a1"), ("b", "b2"), ("c", "c3")] {
            assert_eq!(db.get_latest(k.as_bytes()).unwrap().unwrap().value, Bytes::from(v));
        }
    }

    #[test]
    fn newest_version_wins_across_components() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 10, "in-table").unwrap();
        db.flush().unwrap();
        db.put("k", 20, "in-memtable").unwrap();
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("in-memtable"));

        // Put with an *older* explicit timestamp into the memtable: the
        // flushed version must still win.
        db.put("k", 5, "stale-write").unwrap();
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("in-memtable"));
    }

    #[test]
    fn scan_merges_components_and_respects_limit() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        for i in 0..10 {
            db.put(format!("k{i}"), 10 + i, format!("v{i}")).unwrap();
            if i == 4 {
                db.flush().unwrap();
            }
        }
        let all = db.scan(b"k0", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].0, Bytes::from("k0"));
        assert_eq!(all[9].0, Bytes::from("k9"));

        let bounded = db.scan(b"k3", Some(b"k7"), u64::MAX, usize::MAX).unwrap();
        assert_eq!(bounded.len(), 4);

        let limited = db.scan(b"k0", None, u64::MAX, 3).unwrap();
        assert_eq!(limited.len(), 3);
    }

    #[test]
    fn scan_hides_deleted_and_shadowed() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("a", 10, "a-old").unwrap();
        db.put("b", 10, "b").unwrap();
        db.flush().unwrap();
        db.put("a", 20, "a-new").unwrap();
        db.delete("b", 20).unwrap();
        let rows = db.scan(b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.value, Bytes::from("a-new"));

        // Snapshot scan at ts=15 sees the pre-update world.
        let rows = db.scan(b"", None, 15, usize::MAX).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.value, Bytes::from("a-old"));
    }

    #[test]
    fn auto_flush_on_threshold() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), LsmOptions { auto_compact: false, ..small_opts() })
            .unwrap();
        for i in 0..100 {
            db.put(format!("key{i:04}"), i, vec![b'x'; 64]).unwrap();
        }
        assert!(db.table_count() >= 1, "threshold crossing must trigger flush");
        assert!(db.metrics().snapshot().flushes >= 1);
        for i in (0..100).step_by(17) {
            assert!(db.get_latest(format!("key{i:04}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn auto_compaction_keeps_table_count_bounded() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), small_opts()).unwrap();
        for i in 0..400 {
            db.put(format!("key{:04}", i % 50), 1000 + i, vec![b'x'; 64]).unwrap();
        }
        assert!(db.table_count() < 4 + 2, "compaction should bound table count");
        assert!(db.metrics().snapshot().compactions >= 1);
        // All 50 keys still readable with their newest values.
        for k in 0..50 {
            assert!(db.get_latest(format!("key{k:04}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn compaction_gc_drops_old_versions_keeps_recent() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap(); // retention = 10
        db.put("k", 100, "v100").unwrap();
        db.flush().unwrap();
        db.put("k", 200, "v200").unwrap();
        db.flush().unwrap();
        db.put("k", 205, "v205").unwrap();
        db.flush().unwrap();
        db.compact().unwrap();
        assert_eq!(db.table_count(), 1);
        // v205 newest, v200 within retention (205-10=195), v100 GC'd.
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("v205"));
        assert_eq!(db.get(b"k", 204).unwrap().unwrap().value, Bytes::from("v200"));
        assert!(db.get(b"k", 199).unwrap().is_none(), "pre-retention version was GC'd");
        assert!(db.metrics().snapshot().gc_dropped_cells >= 1);
    }

    #[test]
    fn compaction_purges_tombstoned_keys_entirely() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("dead", 100, "v").unwrap();
        db.flush().unwrap();
        db.delete("dead", 110).unwrap();
        db.put("alive", 200, "v").unwrap(); // pushes max_ts well past retention
        db.flush().unwrap();
        db.compact().unwrap();
        assert!(db.get_latest(b"dead").unwrap().is_none());
        assert_eq!(db.table_count(), 1);
        let rows = db.scan(b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Bytes::from("alive"));
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("durable", 10, "yes").unwrap();
            db.put("durable2", 11, "also").unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        assert_eq!(db.get_latest(b"durable").unwrap().unwrap().value, Bytes::from("yes"));
        assert_eq!(db.get_latest(b"durable2").unwrap().unwrap().ts, 11);
    }

    #[test]
    fn crash_recovery_after_flush_and_more_writes() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("flushed", 10, "on-disk").unwrap();
            db.flush().unwrap();
            db.put("unflushed", 20, "in-wal").unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        assert_eq!(db.get_latest(b"flushed").unwrap().unwrap().value, Bytes::from("on-disk"));
        assert_eq!(db.get_latest(b"unflushed").unwrap().unwrap().value, Bytes::from("in-wal"));
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn double_crash_still_recovers() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("k", 10, "v").unwrap();
            db.simulate_crash();
        }
        {
            // Recover, write more, crash again before flushing.
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("k2", 20, "v2").unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        assert!(db.get_latest(b"k").unwrap().is_some());
        assert!(db.get_latest(b"k2").unwrap().is_some());
    }

    #[test]
    fn reopen_clean_shutdown_after_flush() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            for i in 0..20 {
                db.put(format!("k{i}"), i, format!("v{i}")).unwrap();
            }
            db.flush().unwrap();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        for i in 0..20 {
            assert_eq!(
                db.get_latest(format!("k{i}").as_bytes()).unwrap().unwrap().value,
                Bytes::from(format!("v{i}"))
            );
        }
    }

    #[test]
    fn flush_hooks_run_in_order() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let l1 = Arc::clone(&log);
        db.add_pre_flush_hook(Box::new(move || l1.lock().push("pre")));
        let l2 = Arc::clone(&log);
        db.add_post_flush_hook(Box::new(move || l2.lock().push("post")));
        db.put("k", 1, "v").unwrap();
        db.flush().unwrap();
        assert_eq!(*log.lock(), vec!["pre", "post"]);
    }

    #[test]
    fn empty_flush_is_noop_but_hooks_still_run() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        let ran = Arc::new(Mutex::new(0));
        let r = Arc::clone(&ran);
        db.add_pre_flush_hook(Box::new(move || *r.lock() += 1));
        db.flush().unwrap();
        assert_eq!(db.table_count(), 0);
        assert_eq!(*ran.lock(), 1);
    }

    #[test]
    fn write_batch_is_atomic_in_wal() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.write_batch(&[
                Cell::put("row/c1", 10, "a"),
                Cell::put("row/c2", 10, "b"),
                Cell::put("row/c3", 10, "c"),
            ])
            .unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        for c in ["c1", "c2", "c3"] {
            assert!(db.get_latest(format!("row/{c}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn metrics_count_operations() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 1, "v").unwrap();
        db.delete("k2", 2).unwrap();
        db.get_latest(b"k").unwrap();
        db.scan(b"", None, u64::MAX, 10).unwrap();
        let s = db.metrics().snapshot();
        assert_eq!(s.puts, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.gets, 1);
        assert_eq!(s.scans, 1);
        assert_eq!(s.wal_appends, 2);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = TempDir::new("lsm").unwrap();
        let db = Arc::new(
            LsmTree::open(dir.path(), LsmOptions { auto_compact: true, ..small_opts() }).unwrap(),
        );
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    db.put(format!("key{:03}", i % 100), 1000 + i, format!("v{i}")).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = format!("key{:03}", (i + r * 13) % 100);
                        let _ = db.get_latest(k.as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        // Every key eventually readable with some version.
        let rows = db.scan(b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 100);
    }

    /// Reads issued from inside a pre-flush hook — i.e. while the flush path
    /// holds the maintenance lock — must succeed and see all data. With the
    /// old engine-wide lock this held only because hooks ran before the
    /// write lock was taken; with snapshots it is safe by construction.
    #[test]
    fn reads_from_inside_flush_hooks_see_data() {
        let dir = TempDir::new("lsm").unwrap();
        let db = Arc::new(LsmTree::open(dir.path(), manual_opts()).unwrap());
        db.put("hooked", 5, "value").unwrap();
        let seen = Arc::new(Mutex::new(None));
        let (db2, seen2) = (Arc::clone(&db), Arc::clone(&seen));
        db.add_pre_flush_hook(Box::new(move || {
            *seen2.lock() = Some(db2.get_latest(b"hooked").unwrap().is_some());
        }));
        db.flush().unwrap();
        assert_eq!(*seen.lock(), Some(true));
        assert_eq!(db.get_latest(b"hooked").unwrap().unwrap().value, Bytes::from("value"));
    }

    /// A flush moves data memtable → frozen → table across two snapshot
    /// swaps; afterwards the frozen list must be drained and every row
    /// visible exactly once.
    #[test]
    fn flush_preserves_single_visibility_of_rows() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        for i in 0..50 {
            db.put(format!("k{i:02}"), 10, "v").unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.memtable_cells(), 0, "frozen list must drain after flush");
        let rows = db.scan(b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn batched_put_amortizes_wal_append_and_fsync() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(
            dir.path(),
            LsmOptions { wal_sync: true, ..manual_opts() },
        )
        .unwrap();
        let entries: Vec<(Bytes, Timestamp, Bytes)> = (0..64u64)
            .map(|i| (Bytes::from(format!("k{i:03}")), i + 1, Bytes::from("v")))
            .collect();
        db.put_batch(&entries).unwrap();
        let m = db.metrics().snapshot();
        assert_eq!(m.puts, 64);
        assert_eq!(m.wal_appends, 1, "a batch is one WAL record");
        assert_eq!(m.wal_fsyncs, 1, "a batch is one fsync");
        assert!(m.puts_per_fsync() >= 64.0, "puts_per_fsync = {}", m.puts_per_fsync());
        assert_eq!(db.get_latest(b"k063").unwrap().unwrap().ts, 64);
    }

    #[test]
    fn concurrent_durable_writers_share_fsyncs() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(
            dir.path(),
            LsmOptions { wal_sync: true, ..manual_opts() },
        )
        .unwrap();
        const THREADS: u64 = 8;
        const OPS: u64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = &db;
                s.spawn(move || {
                    for i in 0..OPS {
                        db.put(format!("k{t}-{i}"), t * OPS + i + 1, "v").unwrap();
                    }
                });
            }
        });
        let m = db.metrics().snapshot();
        assert_eq!(m.wal_appends, THREADS * OPS);
        assert!(m.wal_fsyncs >= 1);
        // Group commit: while one leader fsyncs (~hundreds of µs) the other
        // seven writers stage and wait, so fsyncs must come out well below
        // one per append.
        assert!(
            m.wal_fsyncs < m.wal_appends,
            "expected shared fsyncs, got {} fsyncs for {} appends",
            m.wal_fsyncs,
            m.wal_appends
        );
        assert!(m.mean_group_commit() > 1.0, "mean group = {}", m.mean_group_commit());
        assert!(m.puts_per_fsync() > 1.0, "puts/fsync = {}", m.puts_per_fsync());
    }
}

#[cfg(test)]
mod cache_sharing_tests {
    use super::*;
    use tempdir_lite::TempDir;

    /// Regression test: two engines sharing one block cache must not serve
    /// each other's blocks. Their SSTable file numbers coincide (both start
    /// at 1), so cache keys must not be derived from file numbers.
    #[test]
    fn shared_cache_across_engines_does_not_collide() {
        let dir = TempDir::new("lsm-shared").unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let opts = || LsmOptions {
            block_cache: Some(Arc::clone(&cache)),
            auto_flush: false,
            auto_compact: false,
            ..LsmOptions::default()
        };
        let a = LsmTree::open(dir.path().join("a"), opts()).unwrap();
        let b = LsmTree::open(dir.path().join("b"), opts()).unwrap();
        for i in 0..50 {
            a.put(format!("key{i:02}"), 10, "from-a").unwrap();
            b.put(format!("key{i:02}"), 10, "from-b").unwrap();
        }
        a.flush().unwrap();
        b.flush().unwrap();
        // Warm the cache with A's blocks, then read B: values must be B's.
        for i in 0..50 {
            assert_eq!(
                a.get_latest(format!("key{i:02}").as_bytes()).unwrap().unwrap().value,
                bytes::Bytes::from("from-a")
            );
        }
        for i in 0..50 {
            assert_eq!(
                b.get_latest(format!("key{i:02}").as_bytes()).unwrap().unwrap().value,
                bytes::Bytes::from("from-b"),
                "engine B must never see engine A's cached blocks"
            );
        }
    }
}

//! The LSM tree engine: durable `put`/`get`/`delete`/`scan` over one
//! memtable, one write-ahead log segment, and a stack of SSTables, with
//! flush and compaction (Figure 2 of the paper).
//!
//! One `LsmTree` corresponds to one column-family store inside one region —
//! a region server in `diff-index-cluster` hosts many of them.

use crate::cache::BlockCache;
use crate::compaction::{gc_merge, should_compact, GcPolicy};
use crate::memtable::MemTable;
use crate::merge::{MergeIter, VisibleIter};
use crate::metrics::Metrics;
use crate::sstable::{Table, TableBuilder, TableOptions};
use crate::types::{Cell, CellKind, InternalKey, LsmError, Result, Timestamp, VersionedValue};
use crate::wal::{replay, WalWriter};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Engine tuning options.
#[derive(Clone)]
pub struct LsmOptions {
    /// Flush the memtable once its approximate size exceeds this.
    pub memtable_flush_bytes: usize,
    /// SSTable construction knobs.
    pub table: TableOptions,
    /// `fsync` the WAL on every append (true = fully durable, slower).
    pub wal_sync: bool,
    /// Shared block cache; `None` disables caching.
    pub block_cache: Option<Arc<BlockCache>>,
    /// Trigger a major compaction when this many tables exist (0 = never).
    pub compaction_trigger: usize,
    /// Shadowed versions younger than this many timestamp units survive
    /// compaction, so recent `RB(k, t−δ)` snapshot reads stay answerable.
    pub version_retention: Timestamp,
    /// Automatically flush when the memtable crosses the threshold.
    pub auto_flush: bool,
    /// Automatically compact when the trigger is reached after a flush.
    pub auto_compact: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        Self {
            memtable_flush_bytes: 4 * 1024 * 1024,
            table: TableOptions::default(),
            wal_sync: false,
            block_cache: Some(Arc::new(BlockCache::new(32 * 1024 * 1024))),
            compaction_trigger: 4,
            version_retention: 60_000,
            auto_flush: true,
            auto_compact: true,
        }
    }
}

impl std::fmt::Debug for LsmOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmOptions")
            .field("memtable_flush_bytes", &self.memtable_flush_bytes)
            .field("wal_sync", &self.wal_sync)
            .field("compaction_trigger", &self.compaction_trigger)
            .field("version_retention", &self.version_retention)
            .finish()
    }
}

/// Hook invoked around memtable flushes. Diff-Index registers a `pre_flush`
/// hook that pauses and drains the AUQ (the paper's Figure 5: "1. pause &
/// drain" happens before "2. flush" and "3. roll forward").
pub type FlushHook = Box<dyn Fn() + Send + Sync>;

struct Inner {
    memtable: MemTable,
    wal: Option<WalWriter>,
    wal_no: u64,
    /// Newest first.
    tables: Vec<Arc<Table>>,
    next_file_no: u64,
}

/// A single LSM tree, durable under a directory.
pub struct LsmTree {
    dir: PathBuf,
    opts: LsmOptions,
    inner: RwLock<Inner>,
    /// Serializes flush/compaction against each other.
    maintenance: Mutex<()>,
    metrics: Arc<Metrics>,
    pre_flush_hooks: RwLock<Vec<FlushHook>>,
    post_flush_hooks: RwLock<Vec<FlushHook>>,
}

impl std::fmt::Debug for LsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmTree").field("dir", &self.dir).finish()
    }
}

fn wal_path(dir: &Path, no: u64) -> PathBuf {
    dir.join(format!("wal-{no:010}.log"))
}

fn table_path(dir: &Path, no: u64) -> PathBuf {
    dir.join(format!("{no:010}.sst"))
}

impl LsmTree {
    /// Open (or create) an engine under `dir`, replaying any WAL segments
    /// left behind by a crash.
    pub fn open(dir: impl Into<PathBuf>, opts: LsmOptions) -> Result<Self> {
        Ok(Self::open_with_replay(dir, opts)?.0)
    }

    /// Like [`LsmTree::open`], but also returns the cells recovered from WAL
    /// replay. Diff-Index's failure-recovery protocol (§5.3 of the paper)
    /// re-enqueues every replayed base put into the AUQ, so the caller needs
    /// to see them.
    pub fn open_with_replay(dir: impl Into<PathBuf>, opts: LsmOptions) -> Result<(Self, Vec<Cell>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let metrics = Arc::new(Metrics::new());

        // 1. Manifest → live tables.
        let (table_nos, mut next_file_no) = read_manifest(&dir)?;
        let mut tables = Vec::with_capacity(table_nos.len());
        for &no in table_nos.iter().rev() {
            // Manifest lists oldest first; we keep newest first.
            tables.push(Arc::new(Table::open(
                table_path(&dir, no),
                no,
                opts.block_cache.clone(),
            )?));
        }

        // 2. Replay leftover WAL segments (oldest first) into the memtable.
        let mut wal_nos: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let num = name.strip_prefix("wal-")?.strip_suffix(".log")?;
                num.parse::<u64>().ok()
            })
            .collect();
        wal_nos.sort_unstable();
        let mut memtable = MemTable::new();
        let mut replayed = Vec::new();
        for &no in &wal_nos {
            let r = replay(wal_path(&dir, no))?;
            for c in r.cells {
                replayed.push(c);
            }
            next_file_no = next_file_no.max(no + 1);
        }
        for c in &replayed {
            memtable.insert(c.clone());
        }

        // 3. Fresh WAL segment; re-log replayed cells so a second crash
        //    before the next flush still recovers them, then drop the old
        //    segments.
        let wal_no = next_file_no;
        next_file_no += 1;
        let mut wal = WalWriter::create(wal_path(&dir, wal_no), opts.wal_sync)?;
        if !replayed.is_empty() {
            wal.append(&replayed)?;
            wal.sync()?;
        }
        for &no in &wal_nos {
            std::fs::remove_file(wal_path(&dir, no))?;
        }

        let tree = Self {
            dir,
            opts,
            inner: RwLock::new(Inner { memtable, wal: Some(wal), wal_no, tables, next_file_no }),
            maintenance: Mutex::new(()),
            metrics,
            pre_flush_hooks: RwLock::new(Vec::new()),
            post_flush_hooks: RwLock::new(Vec::new()),
        };
        Ok((tree, replayed))
    }

    /// Directory this engine persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Engine counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Register a hook that runs immediately before each memtable flush.
    pub fn add_pre_flush_hook(&self, hook: FlushHook) {
        self.pre_flush_hooks.write().push(hook);
    }

    /// Register a hook that runs immediately after each memtable flush.
    pub fn add_post_flush_hook(&self, hook: FlushHook) {
        self.post_flush_hooks.write().push(hook);
    }

    // -- writes ------------------------------------------------------------

    /// Append a batch of cells atomically (one WAL record).
    pub fn write_batch(&self, cells: &[Cell]) -> Result<()> {
        if cells.is_empty() {
            return Ok(());
        }
        let needs_flush = {
            let mut inner = self.inner.write();
            let wal = inner
                .wal
                .as_mut()
                .ok_or_else(|| LsmError::InvalidOperation("engine closed".into()))?;
            wal.append(cells)?;
            Metrics::bump(&self.metrics.wal_appends);
            for c in cells {
                match c.key.kind {
                    CellKind::Put => Metrics::bump(&self.metrics.puts),
                    CellKind::Delete => Metrics::bump(&self.metrics.deletes),
                }
                inner.memtable.insert(c.clone());
            }
            self.opts.auto_flush
                && inner.memtable.approximate_bytes() >= self.opts.memtable_flush_bytes
        };
        if needs_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// Write one value cell.
    pub fn put(&self, key: impl Into<Bytes>, ts: Timestamp, value: impl Into<Bytes>) -> Result<()> {
        self.write_batch(&[Cell::put(key.into(), ts, value.into())])
    }

    /// Write one tombstone.
    pub fn delete(&self, key: impl Into<Bytes>, ts: Timestamp) -> Result<()> {
        self.write_batch(&[Cell::delete(key.into(), ts)])
    }

    // -- reads ---------------------------------------------------------------

    /// Newest cell (tombstones included) for `key` visible at `ts`.
    pub fn get_versioned(&self, key: &[u8], ts: Timestamp) -> Result<Option<Cell>> {
        Metrics::bump(&self.metrics.gets);
        let inner = self.inner.read();
        let mut best: Option<Cell> = inner.memtable.get_versioned(key, ts);
        for table in &inner.tables {
            if let Some(b) = &best {
                // No older table can beat a candidate at least as new as
                // everything the table holds.
                if b.key.ts >= table.properties().max_ts {
                    Metrics::bump(&self.metrics.tables_skipped);
                    continue;
                }
            }
            if table.outside_key_range(key) || table.definitely_absent(key) {
                Metrics::bump(&self.metrics.tables_skipped);
                continue;
            }
            Metrics::bump(&self.metrics.tables_probed);
            if let Some(c) = table.get_versioned(key, ts)? {
                let better = match &best {
                    None => true,
                    Some(b) => c.key < b.key, // smaller internal key = newer
                };
                if better {
                    best = Some(c);
                }
            }
        }
        Ok(best)
    }

    /// Newest visible value for `key` at `ts`, hiding tombstones.
    pub fn get(&self, key: &[u8], ts: Timestamp) -> Result<Option<VersionedValue>> {
        Ok(match self.get_versioned(key, ts)? {
            Some(c) if c.key.kind == CellKind::Put => {
                Some(VersionedValue { value: c.value, ts: c.key.ts })
            }
            _ => None,
        })
    }

    /// Latest visible value (snapshot = ∞).
    pub fn get_latest(&self, key: &[u8]) -> Result<Option<VersionedValue>> {
        self.get(key, Timestamp::MAX)
    }

    /// Scan user keys in `[start, end)` at snapshot `ts`, returning up to
    /// `limit` visible rows (newest visible version per key).
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        ts: Timestamp,
        limit: usize,
    ) -> Result<Vec<(Bytes, VersionedValue)>> {
        Metrics::bump(&self.metrics.scans);
        let inner = self.inner.read();
        let seek = InternalKey::seek_to(Bytes::copy_from_slice(start), Timestamp::MAX);
        let end_owned: Option<Bytes> = end.map(Bytes::copy_from_slice);

        let mut sources: Vec<Box<dyn Iterator<Item = Cell> + '_>> = Vec::new();
        sources.push(Box::new(inner.memtable.range(start, end)));
        for table in &inner.tables {
            let end_for_table = end_owned.clone();
            let it = table
                .iter_from(Some(&seek))
                .take_while(move |c| match &end_for_table {
                    Some(e) => c.key.user_key < *e,
                    None => true,
                });
            sources.push(Box::new(it));
        }
        let merged = MergeIter::new(sources);
        let visible = VisibleIter::new(merged, ts);
        Ok(visible
            .take(limit)
            .map(|c| (c.key.user_key, VersionedValue { value: c.value, ts: c.key.ts }))
            .collect())
    }

    // -- maintenance ---------------------------------------------------------

    /// Flush the memtable to a new SSTable, then roll the WAL forward
    /// (delete the old segment). Runs the registered pre/post flush hooks.
    pub fn flush(&self) -> Result<()> {
        {
            let _guard = self.maintenance.lock();
            // Paper §5.3 / Figure 5: "1. pause & drain (AUQ)" before flush.
            for hook in self.pre_flush_hooks.read().iter() {
                hook();
            }
            let result = self.flush_locked();
            // "4. resume" — even if the flush failed.
            for hook in self.post_flush_hooks.read().iter() {
                hook();
            }
            result?;
        } // release the maintenance lock before compacting (non-reentrant)

        let table_count = self.inner.read().tables.len();
        if self.opts.auto_compact && should_compact(table_count, self.opts.compaction_trigger) {
            self.compact()?;
        }
        Ok(())
    }

    fn flush_locked(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let file_no = inner.next_file_no;
        inner.next_file_no += 1;
        let path = table_path(&self.dir, file_no);
        let mut builder = TableBuilder::create(&path, self.opts.table.clone())?;
        for cell in inner.memtable.iter() {
            builder.add(&cell)?;
        }
        let props = builder.finish()?;
        Metrics::bump(&self.metrics.flushes);
        Metrics::add(&self.metrics.bytes_flushed, props.file_size);
        let table = Arc::new(Table::open(&path, file_no, self.opts.block_cache.clone())?);
        inner.tables.insert(0, table);

        // Persist the new table list before deleting the WAL: a crash in
        // between only costs a harmless re-replay of already-flushed data.
        let nos: Vec<u64> = inner.tables.iter().rev().map(|t| t.id()).collect();
        write_manifest(&self.dir, &nos, inner.next_file_no + 1)?;

        let old_wal_no = inner.wal_no;
        let new_wal_no = inner.next_file_no;
        inner.next_file_no += 1;
        inner.wal = None; // close old writer before unlinking
        std::fs::remove_file(wal_path(&self.dir, old_wal_no))?;
        inner.wal = Some(WalWriter::create(wal_path(&self.dir, new_wal_no), self.opts.wal_sync)?);
        inner.wal_no = new_wal_no;
        inner.memtable = MemTable::new();
        Ok(())
    }

    /// Major compaction: merge all SSTables into one, garbage-collecting
    /// shadowed versions and expired tombstones (Figure 2c).
    pub fn compact(&self) -> Result<()> {
        let _guard = self.maintenance.lock();
        let tables: Vec<Arc<Table>> = {
            let inner = self.inner.read();
            inner.tables.clone()
        };
        if tables.len() < 2 {
            return Ok(());
        }
        let max_ts = tables.iter().map(|t| t.properties().max_ts).max().unwrap_or(0);
        let policy = GcPolicy {
            retain_after: max_ts.saturating_sub(self.opts.version_retention),
            drop_tombstones: true,
        };

        let file_no = {
            let mut inner = self.inner.write();
            let no = inner.next_file_no;
            inner.next_file_no += 1;
            no
        };
        let path = table_path(&self.dir, file_no);
        let sources: Vec<Box<dyn Iterator<Item = Cell> + '_>> =
            tables.iter().map(|t| Box::new(t.iter_from(None)) as _).collect();
        let merged = MergeIter::new(sources);
        let mut gc = gc_merge(merged, policy);
        let mut builder = TableBuilder::create(&path, self.opts.table.clone())?;
        for cell in gc.by_ref() {
            builder.add(&cell)?;
        }
        let stats = gc.stats();
        Metrics::add(
            &self.metrics.gc_dropped_cells,
            stats.dropped_versions + stats.dropped_tombstones,
        );

        let new_table = if builder.cell_count() > 0 {
            let props = builder.finish()?;
            Metrics::add(&self.metrics.bytes_compacted, props.file_size);
            Some(Arc::new(Table::open(&path, file_no, self.opts.block_cache.clone())?))
        } else {
            // Everything was garbage-collected; no output table.
            drop(builder);
            let _ = std::fs::remove_file(&path);
            None
        };
        Metrics::bump(&self.metrics.compactions);

        let old_paths: Vec<PathBuf> = {
            let mut inner = self.inner.write();
            // Tables flushed *during* this compaction (none today — the
            // maintenance lock serializes — but be defensive) stay in front.
            let compacted_ids: Vec<u64> = tables.iter().map(|t| t.id()).collect();
            let old_paths = inner
                .tables
                .iter()
                .filter(|t| compacted_ids.contains(&t.id()))
                .map(|t| t.path().to_path_buf())
                .collect();
            inner.tables.retain(|t| !compacted_ids.contains(&t.id()));
            if let Some(t) = new_table {
                inner.tables.push(t);
            }
            let nos: Vec<u64> = inner.tables.iter().rev().map(|t| t.id()).collect();
            write_manifest(&self.dir, &nos, inner.next_file_no)?;
            old_paths
        };
        for p in old_paths {
            let _ = std::fs::remove_file(p);
        }
        Ok(())
    }

    // -- introspection -------------------------------------------------------

    /// Number of on-disk tables.
    pub fn table_count(&self) -> usize {
        self.inner.read().tables.len()
    }

    /// Approximate bytes in the memtable.
    pub fn memtable_bytes(&self) -> usize {
        self.inner.read().memtable.approximate_bytes()
    }

    /// Number of cells currently in the memtable.
    pub fn memtable_cells(&self) -> usize {
        self.inner.read().memtable.len()
    }

    /// Largest timestamp stored anywhere in this tree (memtable or
    /// SSTables). Recovery uses it to advance the adopting server's clock
    /// past everything the previous owner wrote.
    pub fn max_timestamp(&self) -> Timestamp {
        let inner = self.inner.read();
        inner
            .tables
            .iter()
            .map(|t| t.properties().max_ts)
            .chain(std::iter::once(inner.memtable.max_ts()))
            .max()
            .unwrap_or(0)
    }

    /// Drop the engine as a crash would: the memtable vanishes, the WAL and
    /// SSTables stay. Reopen with [`LsmTree::open`] to recover.
    pub fn simulate_crash(self) {
        // Nothing to do: `Drop` performs no flush by design.
        drop(self);
    }
}

// -- manifest ----------------------------------------------------------------

fn read_manifest(dir: &Path) -> Result<(Vec<u64>, u64)> {
    let path = dir.join("MANIFEST");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 1)),
        Err(e) => return Err(e.into()),
    };
    let mut tables = Vec::new();
    let mut next = 1u64;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("next=") {
            next = v
                .parse()
                .map_err(|_| LsmError::Corruption(format!("manifest: bad next {v:?}")))?;
        } else if let Some(v) = line.strip_prefix("table=") {
            tables.push(
                v.parse()
                    .map_err(|_| LsmError::Corruption(format!("manifest: bad table {v:?}")))?,
            );
        }
    }
    Ok((tables, next))
}

fn write_manifest(dir: &Path, table_nos_oldest_first: &[u64], next: u64) -> Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    let path = dir.join("MANIFEST");
    let mut text = format!("next={next}\n");
    for no in table_nos_oldest_first {
        text.push_str(&format!("table={no}\n"));
    }
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir_lite::TempDir;

    fn small_opts() -> LsmOptions {
        LsmOptions {
            memtable_flush_bytes: 1024,
            table: TableOptions { block_size: 256, bloom_bits_per_key: 10 },
            wal_sync: false,
            block_cache: Some(Arc::new(BlockCache::new(1 << 20))),
            compaction_trigger: 4,
            version_retention: 10,
            auto_flush: true,
            auto_compact: true,
        }
    }

    fn manual_opts() -> LsmOptions {
        LsmOptions { auto_flush: false, auto_compact: false, ..small_opts() }
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k1", 10, "v1").unwrap();
        db.put("k2", 11, "v2").unwrap();
        assert_eq!(db.get_latest(b"k1").unwrap().unwrap().value, Bytes::from("v1"));
        assert_eq!(db.get_latest(b"k2").unwrap().unwrap().ts, 11);
        assert!(db.get_latest(b"k3").unwrap().is_none());
    }

    #[test]
    fn update_is_new_version_old_still_readable() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 10, "old").unwrap();
        db.put("k", 20, "new").unwrap();
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("new"));
        // The paper's RB(k, tnew − δ):
        let old = db.get(b"k", 19).unwrap().unwrap();
        assert_eq!(old.value, Bytes::from("old"));
        assert_eq!(old.ts, 10);
    }

    #[test]
    fn delete_writes_tombstone() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 10, "v").unwrap();
        db.delete("k", 20).unwrap();
        assert!(db.get_latest(b"k").unwrap().is_none());
        assert!(db.get(b"k", 15).unwrap().is_some(), "snapshot before delete sees value");
        let c = db.get_versioned(b"k", u64::MAX).unwrap().unwrap();
        assert!(c.is_tombstone());
    }

    #[test]
    fn get_spans_memtable_and_tables() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("a", 1, "a1").unwrap();
        db.flush().unwrap();
        db.put("b", 2, "b2").unwrap();
        db.flush().unwrap();
        db.put("c", 3, "c3").unwrap();
        assert_eq!(db.table_count(), 2);
        for (k, v) in [("a", "a1"), ("b", "b2"), ("c", "c3")] {
            assert_eq!(db.get_latest(k.as_bytes()).unwrap().unwrap().value, Bytes::from(v));
        }
    }

    #[test]
    fn newest_version_wins_across_components() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 10, "in-table").unwrap();
        db.flush().unwrap();
        db.put("k", 20, "in-memtable").unwrap();
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("in-memtable"));

        // Put with an *older* explicit timestamp into the memtable: the
        // flushed version must still win.
        db.put("k", 5, "stale-write").unwrap();
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("in-memtable"));
    }

    #[test]
    fn scan_merges_components_and_respects_limit() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        for i in 0..10 {
            db.put(format!("k{i}"), 10 + i, format!("v{i}")).unwrap();
            if i == 4 {
                db.flush().unwrap();
            }
        }
        let all = db.scan(b"k0", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].0, Bytes::from("k0"));
        assert_eq!(all[9].0, Bytes::from("k9"));

        let bounded = db.scan(b"k3", Some(b"k7"), u64::MAX, usize::MAX).unwrap();
        assert_eq!(bounded.len(), 4);

        let limited = db.scan(b"k0", None, u64::MAX, 3).unwrap();
        assert_eq!(limited.len(), 3);
    }

    #[test]
    fn scan_hides_deleted_and_shadowed() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("a", 10, "a-old").unwrap();
        db.put("b", 10, "b").unwrap();
        db.flush().unwrap();
        db.put("a", 20, "a-new").unwrap();
        db.delete("b", 20).unwrap();
        let rows = db.scan(b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.value, Bytes::from("a-new"));

        // Snapshot scan at ts=15 sees the pre-update world.
        let rows = db.scan(b"", None, 15, usize::MAX).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.value, Bytes::from("a-old"));
    }

    #[test]
    fn auto_flush_on_threshold() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), LsmOptions { auto_compact: false, ..small_opts() })
            .unwrap();
        for i in 0..100 {
            db.put(format!("key{i:04}"), i, vec![b'x'; 64]).unwrap();
        }
        assert!(db.table_count() >= 1, "threshold crossing must trigger flush");
        assert!(db.metrics().snapshot().flushes >= 1);
        for i in (0..100).step_by(17) {
            assert!(db.get_latest(format!("key{i:04}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn auto_compaction_keeps_table_count_bounded() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), small_opts()).unwrap();
        for i in 0..400 {
            db.put(format!("key{:04}", i % 50), 1000 + i, vec![b'x'; 64]).unwrap();
        }
        assert!(db.table_count() < 4 + 2, "compaction should bound table count");
        assert!(db.metrics().snapshot().compactions >= 1);
        // All 50 keys still readable with their newest values.
        for k in 0..50 {
            assert!(db.get_latest(format!("key{k:04}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn compaction_gc_drops_old_versions_keeps_recent() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap(); // retention = 10
        db.put("k", 100, "v100").unwrap();
        db.flush().unwrap();
        db.put("k", 200, "v200").unwrap();
        db.flush().unwrap();
        db.put("k", 205, "v205").unwrap();
        db.flush().unwrap();
        db.compact().unwrap();
        assert_eq!(db.table_count(), 1);
        // v205 newest, v200 within retention (205-10=195), v100 GC'd.
        assert_eq!(db.get_latest(b"k").unwrap().unwrap().value, Bytes::from("v205"));
        assert_eq!(db.get(b"k", 204).unwrap().unwrap().value, Bytes::from("v200"));
        assert!(db.get(b"k", 199).unwrap().is_none(), "pre-retention version was GC'd");
        assert!(db.metrics().snapshot().gc_dropped_cells >= 1);
    }

    #[test]
    fn compaction_purges_tombstoned_keys_entirely() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("dead", 100, "v").unwrap();
        db.flush().unwrap();
        db.delete("dead", 110).unwrap();
        db.put("alive", 200, "v").unwrap(); // pushes max_ts well past retention
        db.flush().unwrap();
        db.compact().unwrap();
        assert!(db.get_latest(b"dead").unwrap().is_none());
        assert_eq!(db.table_count(), 1);
        let rows = db.scan(b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Bytes::from("alive"));
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("durable", 10, "yes").unwrap();
            db.put("durable2", 11, "also").unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        assert_eq!(db.get_latest(b"durable").unwrap().unwrap().value, Bytes::from("yes"));
        assert_eq!(db.get_latest(b"durable2").unwrap().unwrap().ts, 11);
    }

    #[test]
    fn crash_recovery_after_flush_and_more_writes() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("flushed", 10, "on-disk").unwrap();
            db.flush().unwrap();
            db.put("unflushed", 20, "in-wal").unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        assert_eq!(db.get_latest(b"flushed").unwrap().unwrap().value, Bytes::from("on-disk"));
        assert_eq!(db.get_latest(b"unflushed").unwrap().unwrap().value, Bytes::from("in-wal"));
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn double_crash_still_recovers() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("k", 10, "v").unwrap();
            db.simulate_crash();
        }
        {
            // Recover, write more, crash again before flushing.
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.put("k2", 20, "v2").unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        assert!(db.get_latest(b"k").unwrap().is_some());
        assert!(db.get_latest(b"k2").unwrap().is_some());
    }

    #[test]
    fn reopen_clean_shutdown_after_flush() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            for i in 0..20 {
                db.put(format!("k{i}"), i, format!("v{i}")).unwrap();
            }
            db.flush().unwrap();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        for i in 0..20 {
            assert_eq!(
                db.get_latest(format!("k{i}").as_bytes()).unwrap().unwrap().value,
                Bytes::from(format!("v{i}"))
            );
        }
    }

    #[test]
    fn flush_hooks_run_in_order() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let l1 = Arc::clone(&log);
        db.add_pre_flush_hook(Box::new(move || l1.lock().push("pre")));
        let l2 = Arc::clone(&log);
        db.add_post_flush_hook(Box::new(move || l2.lock().push("post")));
        db.put("k", 1, "v").unwrap();
        db.flush().unwrap();
        assert_eq!(*log.lock(), vec!["pre", "post"]);
    }

    #[test]
    fn empty_flush_is_noop_but_hooks_still_run() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        let ran = Arc::new(Mutex::new(0));
        let r = Arc::clone(&ran);
        db.add_pre_flush_hook(Box::new(move || *r.lock() += 1));
        db.flush().unwrap();
        assert_eq!(db.table_count(), 0);
        assert_eq!(*ran.lock(), 1);
    }

    #[test]
    fn write_batch_is_atomic_in_wal() {
        let dir = TempDir::new("lsm").unwrap();
        {
            let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
            db.write_batch(&[
                Cell::put("row/c1", 10, "a"),
                Cell::put("row/c2", 10, "b"),
                Cell::put("row/c3", 10, "c"),
            ])
            .unwrap();
            db.simulate_crash();
        }
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        for c in ["c1", "c2", "c3"] {
            assert!(db.get_latest(format!("row/{c}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn metrics_count_operations() {
        let dir = TempDir::new("lsm").unwrap();
        let db = LsmTree::open(dir.path(), manual_opts()).unwrap();
        db.put("k", 1, "v").unwrap();
        db.delete("k2", 2).unwrap();
        db.get_latest(b"k").unwrap();
        db.scan(b"", None, u64::MAX, 10).unwrap();
        let s = db.metrics().snapshot();
        assert_eq!(s.puts, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.gets, 1);
        assert_eq!(s.scans, 1);
        assert_eq!(s.wal_appends, 2);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = TempDir::new("lsm").unwrap();
        let db = Arc::new(
            LsmTree::open(dir.path(), LsmOptions { auto_compact: true, ..small_opts() }).unwrap(),
        );
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    db.put(format!("key{:03}", i % 100), 1000 + i, format!("v{i}")).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = format!("key{:03}", (i + r * 13) % 100);
                        let _ = db.get_latest(k.as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        // Every key eventually readable with some version.
        let rows = db.scan(b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 100);
    }
}

#[cfg(test)]
mod cache_sharing_tests {
    use super::*;
    use tempdir_lite::TempDir;

    /// Regression test: two engines sharing one block cache must not serve
    /// each other's blocks. Their SSTable file numbers coincide (both start
    /// at 1), so cache keys must not be derived from file numbers.
    #[test]
    fn shared_cache_across_engines_does_not_collide() {
        let dir = TempDir::new("lsm-shared").unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let opts = || LsmOptions {
            block_cache: Some(Arc::clone(&cache)),
            auto_flush: false,
            auto_compact: false,
            ..LsmOptions::default()
        };
        let a = LsmTree::open(dir.path().join("a"), opts()).unwrap();
        let b = LsmTree::open(dir.path().join("b"), opts()).unwrap();
        for i in 0..50 {
            a.put(format!("key{i:02}"), 10, "from-a").unwrap();
            b.put(format!("key{i:02}"), 10, "from-b").unwrap();
        }
        a.flush().unwrap();
        b.flush().unwrap();
        // Warm the cache with A's blocks, then read B: values must be B's.
        for i in 0..50 {
            assert_eq!(
                a.get_latest(format!("key{i:02}").as_bytes()).unwrap().unwrap().value,
                bytes::Bytes::from("from-a")
            );
        }
        for i in 0..50 {
            assert_eq!(
                b.get_latest(format!("key{i:02}").as_bytes()).unwrap().unwrap().value,
                bytes::Bytes::from("from-b"),
                "engine B must never see engine A's cached blocks"
            );
        }
    }
}

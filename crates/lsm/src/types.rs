//! Core value types shared across the LSM engine.
//!
//! The engine stores *cells*: `(user key, timestamp, kind, value)` tuples. As
//! in HBase / BigTable, a `put` with a newer timestamp shadows older versions
//! of the same user key, and a delete is a *tombstone* cell rather than an
//! in-place removal (the paper's "no in-place update", §2.1).

use bytes::Bytes;
use std::cmp::Ordering;
use std::fmt;

/// Millisecond-granularity logical timestamp, as assigned by a region server
/// (the paper uses `System.currentTimeMillis()`; we use a monotonic counter
/// seeded from wall time so versions are totally ordered per server).
pub type Timestamp = u64;

/// The smallest representable time unit, the paper's `δ` (1 ms in HBase).
pub const DELTA: Timestamp = 1;

/// Kind of a stored cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// A value write. In an LSM store `put` covers both insert and update —
    /// the writer cannot tell which one it is (Table 1 of the paper).
    Put,
    /// A deletion marker ("tombstone"). Shadows older versions of the key
    /// until compaction garbage-collects both.
    Delete,
}

impl CellKind {
    /// Single-byte wire encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            CellKind::Put => 0,
            CellKind::Delete => 1,
        }
    }

    /// Decode from the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(CellKind::Put),
            1 => Some(CellKind::Delete),
            _ => None,
        }
    }
}

/// Internal key: user key plus version metadata.
///
/// Ordering sorts by user key ascending, then by timestamp *descending*
/// (newest version first), then by kind (`Delete` before `Put` at equal
/// timestamps, so a same-timestamp tombstone wins — matching HBase, where a
/// delete marker shadows a put carrying the identical timestamp).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    /// Application-visible key bytes.
    pub user_key: Bytes,
    /// Version timestamp.
    pub ts: Timestamp,
    /// Put or tombstone.
    pub kind: CellKind,
}

impl InternalKey {
    /// Construct an internal key.
    pub fn new(user_key: impl Into<Bytes>, ts: Timestamp, kind: CellKind) -> Self {
        Self { user_key: user_key.into(), ts, kind }
    }

    /// The smallest internal key for `user_key` at or below `ts` in internal
    /// order — i.e. the *newest* visible version slot. Used as a seek target.
    pub fn seek_to(user_key: impl Into<Bytes>, ts: Timestamp) -> Self {
        // Delete sorts before Put at equal (key, ts), so starting at Delete
        // covers both kinds.
        Self { user_key: user_key.into(), ts, kind: CellKind::Delete }
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_internal(
            (self.user_key.as_ref(), self.ts, self.kind),
            (other.user_key.as_ref(), other.ts, other.kind),
        )
    }
}

/// Internal-key ordering over borrowed parts: user key ascending, timestamp
/// descending (newest first), `Delete` before `Put` at equal timestamps.
///
/// This is the single source of truth for internal-key order; `InternalKey`'s
/// `Ord` delegates here, and the zero-copy block reader uses it to binary
/// search encoded cells without materializing owned keys.
pub fn cmp_internal(
    a: (&[u8], Timestamp, CellKind),
    b: (&[u8], Timestamp, CellKind),
) -> Ordering {
    a.0.cmp(b.0)
        .then_with(|| b.1.cmp(&a.1)) // newer first
        .then_with(|| a.2.cmp(&b.2).reverse()) // Delete first
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A full cell: internal key plus value bytes (empty for tombstones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Versioned key.
    pub key: InternalKey,
    /// Value payload; by convention empty for `Delete` cells.
    pub value: Bytes,
}

impl Cell {
    /// A value-carrying cell.
    pub fn put(user_key: impl Into<Bytes>, ts: Timestamp, value: impl Into<Bytes>) -> Self {
        Self { key: InternalKey::new(user_key, ts, CellKind::Put), value: value.into() }
    }

    /// A tombstone cell.
    pub fn delete(user_key: impl Into<Bytes>, ts: Timestamp) -> Self {
        Self { key: InternalKey::new(user_key, ts, CellKind::Delete), value: Bytes::new() }
    }

    /// True if this cell is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.key.kind == CellKind::Delete
    }

    /// Approximate in-memory footprint, used for memtable accounting.
    pub fn approximate_size(&self) -> usize {
        self.key.user_key.len() + self.value.len() + 24
    }
}

/// A `(value, timestamp)` pair returned by reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// Value bytes.
    pub value: Bytes,
    /// Timestamp of the version that produced the value.
    pub ts: Timestamp,
}

impl fmt::Display for VersionedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}", self.value, self.ts)
    }
}

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum LsmError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A persistent structure failed validation (bad magic, checksum, bounds).
    Corruption(String),
    /// The engine was asked to do something invalid (e.g. write after close).
    InvalidOperation(String),
}

impl fmt::Display for LsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsmError::Io(e) => write!(f, "io error: {e}"),
            LsmError::Corruption(m) => write!(f, "corruption: {m}"),
            LsmError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for LsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LsmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LsmError {
    fn from(e: std::io::Error) -> Self {
        LsmError::Io(e)
    }
}

/// Convenience result alias for engine operations.
pub type Result<T> = std::result::Result<T, LsmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_key_orders_by_user_key_then_ts_desc() {
        let a = InternalKey::new("a", 5, CellKind::Put);
        let b = InternalKey::new("a", 9, CellKind::Put);
        let c = InternalKey::new("b", 1, CellKind::Put);
        assert!(b < a, "newer version sorts first");
        assert!(a < c, "user key dominates");
        assert!(b < c);
    }

    #[test]
    fn tombstone_sorts_before_put_at_same_version() {
        let d = InternalKey::new("k", 7, CellKind::Delete);
        let p = InternalKey::new("k", 7, CellKind::Put);
        assert!(d < p, "delete shadows put at identical timestamp");
    }

    #[test]
    fn seek_to_is_not_after_any_visible_version() {
        let seek = InternalKey::seek_to("k", 7);
        let put7 = InternalKey::new("k", 7, CellKind::Put);
        let del7 = InternalKey::new("k", 7, CellKind::Delete);
        let put6 = InternalKey::new("k", 6, CellKind::Put);
        assert!(seek <= del7);
        assert!(seek < put7);
        assert!(seek < put6);
        // ...but strictly after any newer version:
        let put8 = InternalKey::new("k", 8, CellKind::Put);
        assert!(put8 < seek);
    }

    #[test]
    fn cmp_internal_agrees_with_internal_key_ord() {
        let keys = [
            InternalKey::new("a", 5, CellKind::Put),
            InternalKey::new("a", 9, CellKind::Put),
            InternalKey::new("a", 9, CellKind::Delete),
            InternalKey::new("b", 1, CellKind::Put),
            InternalKey::new("b", 1, CellKind::Delete),
            InternalKey::new("ba", 7, CellKind::Put),
        ];
        for x in &keys {
            for y in &keys {
                assert_eq!(
                    x.cmp(y),
                    cmp_internal(
                        (x.user_key.as_ref(), x.ts, x.kind),
                        (y.user_key.as_ref(), y.ts, y.kind)
                    ),
                    "{x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn cell_kind_roundtrip() {
        for k in [CellKind::Put, CellKind::Delete] {
            assert_eq!(CellKind::from_u8(k.to_u8()), Some(k));
        }
        assert_eq!(CellKind::from_u8(9), None);
    }

    #[test]
    fn cell_constructors() {
        let c = Cell::put("k", 3, "v");
        assert!(!c.is_tombstone());
        assert_eq!(c.value, Bytes::from("v"));
        let d = Cell::delete("k", 4);
        assert!(d.is_tombstone());
        assert!(d.value.is_empty());
        assert!(d.approximate_size() >= 25);
    }

    #[test]
    fn error_display_and_source() {
        let e = LsmError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let c = LsmError::Corruption("bad magic".into());
        assert!(c.to_string().contains("bad magic"));
        assert!(std::error::Error::source(&c).is_none());
    }
}

//! Write-ahead log.
//!
//! Every mutation is appended (as part of a record batch) to the active WAL
//! segment before it is applied to the memtable, giving the durability the
//! paper's recovery protocol assumes (§2.2, §5.3). Each memtable generation
//! owns one segment; after a flush persists the memtable into an SSTable, the
//! segment is deleted — the paper's "WAL roll-forward".
//!
//! Record layout (all little-endian):
//!
//! ```text
//! +----------+----------+------------------+
//! | crc: u32 | len: u32 | payload: len B   |
//! +----------+----------+------------------+
//! ```
//!
//! The payload is a batch: `count: varint`, then per cell
//! `kind: u8, ts: varint, key: len-prefixed, value: len-prefixed`.
//! Replay tolerates a torn tail (a partially written final record) by
//! stopping at the first record whose length or checksum fails to validate.

use crate::types::{Cell, CellKind, LsmError, Result};
use crate::util::{crc32, get_len_prefixed, get_varint, put_len_prefixed, put_varint};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Maximum sane record payload; larger lengths are treated as corruption so a
/// torn length field cannot trigger a huge allocation.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Appender for one WAL segment.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    /// Bytes appended so far (including headers).
    written: u64,
    /// When true, `fsync` after every append (slower, fully durable). The
    /// engine exposes this as an option; tests use both modes.
    sync_on_append: bool,
}

impl WalWriter {
    /// Create (truncating) a new segment at `path`.
    pub fn create(path: impl Into<PathBuf>, sync_on_append: bool) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self { path, file: BufWriter::new(file), written: 0, sync_on_append })
    }

    /// Append a batch of cells as one atomic record, then flush (and fsync,
    /// in `sync_on_append` mode). Empty batches write nothing — a header
    /// plus fsync for zero cells is pure overhead.
    pub fn append(&mut self, cells: &[Cell]) -> Result<()> {
        if cells.is_empty() {
            return Ok(());
        }
        self.append_buffered(cells)?;
        if self.sync_on_append {
            self.sync()?;
        } else {
            self.file.flush()?;
        }
        Ok(())
    }

    /// Append a record into the user-space buffer **without** flushing or
    /// fsyncing. The group-commit path stages many records this way and
    /// makes them all durable with a single [`WalWriter::sync`] (or an
    /// fsync on the handle from [`WalWriter::flush_and_clone`]).
    pub fn append_buffered(&mut self, cells: &[Cell]) -> Result<()> {
        if cells.is_empty() {
            return Ok(());
        }
        let payload = encode_batch(cells);
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&crc32(&payload).to_le_bytes());
        header[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.file.write_all(&header)?;
        self.file.write_all(&payload)?;
        self.written += (header.len() + payload.len()) as u64;
        Ok(())
    }

    /// Flush the user-space buffer into the OS (no fsync).
    pub fn flush_os_buffer(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Flush buffered data and fsync the file.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }

    /// Flush buffered data into the OS and return an independent handle to
    /// the segment file. The caller fsyncs that handle with no engine lock
    /// held, so concurrent writers keep staging while the group-commit
    /// leader waits on the disk.
    pub fn flush_and_clone(&mut self) -> Result<File> {
        self.file.flush()?;
        Ok(self.file.get_ref().try_clone()?)
    }

    /// Path of this segment.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes appended so far.
    pub fn written_bytes(&self) -> u64 {
        self.written
    }
}

fn encode_batch(cells: &[Cell]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_varint(&mut out, cells.len() as u64);
    for c in cells {
        out.push(c.key.kind.to_u8());
        put_varint(&mut out, c.key.ts);
        put_len_prefixed(&mut out, &c.key.user_key);
        put_len_prefixed(&mut out, &c.value);
    }
    out
}

fn decode_batch(payload: &[u8]) -> Result<Vec<Cell>> {
    let corrupt = |m: &str| LsmError::Corruption(format!("wal batch: {m}"));
    let (count, mut off) =
        get_varint(payload).ok_or_else(|| corrupt("truncated count"))?;
    let mut cells = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let kind_byte = *payload.get(off).ok_or_else(|| corrupt("truncated kind"))?;
        let kind = CellKind::from_u8(kind_byte).ok_or_else(|| corrupt("bad kind"))?;
        off += 1;
        let (ts, n) =
            get_varint(&payload[off..]).ok_or_else(|| corrupt("truncated ts"))?;
        off += n;
        let (key, n) =
            get_len_prefixed(&payload[off..]).ok_or_else(|| corrupt("truncated key"))?;
        let key = Bytes::copy_from_slice(key);
        off += n;
        let (value, n) =
            get_len_prefixed(&payload[off..]).ok_or_else(|| corrupt("truncated value"))?;
        let value = Bytes::copy_from_slice(value);
        off += n;
        cells.push(Cell { key: crate::types::InternalKey { user_key: key, ts, kind }, value });
    }
    if off != payload.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(cells)
}

/// Outcome of replaying a segment.
#[derive(Debug)]
pub struct WalReplay {
    /// All cells from records that validated, in append order.
    pub cells: Vec<Cell>,
    /// Number of whole records read.
    pub records: usize,
    /// True if the segment ended with a torn (incomplete or corrupt) record
    /// that was discarded — expected after a crash mid-append.
    pub torn_tail: bool,
}

/// Read a WAL segment back, stopping at the first invalid record.
pub fn replay(path: impl AsRef<Path>) -> Result<WalReplay> {
    let mut buf = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut buf)?;
    let mut cells = Vec::new();
    let mut records = 0usize;
    let mut off = 0usize;
    let mut torn_tail = false;
    while off < buf.len() {
        if off + 8 > buf.len() {
            torn_tail = true;
            break;
        }
        let crc = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
        let len = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            torn_tail = true;
            break;
        }
        let start = off + 8;
        let end = start + len as usize;
        if end > buf.len() {
            torn_tail = true;
            break;
        }
        let payload = &buf[start..end];
        if crc32(payload) != crc {
            torn_tail = true;
            break;
        }
        match decode_batch(payload) {
            Ok(mut batch) => cells.append(&mut batch),
            Err(_) => {
                torn_tail = true;
                break;
            }
        }
        records += 1;
        off = end;
    }
    Ok(WalReplay { cells, records, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir_lite::TempDir;

    fn sample_cells() -> Vec<Cell> {
        vec![
            Cell::put("alpha", 10, "one"),
            Cell::delete("beta", 11),
            Cell::put("gamma", 12, vec![0u8; 100]),
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.path().join("wal-1.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append(&sample_cells()).unwrap();
        w.append(&[Cell::put("delta", 13, "two")]).unwrap();
        w.sync().unwrap();
        drop(w);

        let r = replay(&path).unwrap();
        assert_eq!(r.records, 2);
        assert!(!r.torn_tail);
        assert_eq!(r.cells.len(), 4);
        assert_eq!(r.cells[0].key.user_key, Bytes::from("alpha"));
        assert!(r.cells[1].is_tombstone());
        assert_eq!(r.cells[3].value, Bytes::from("two"));
    }

    #[test]
    fn empty_batch_writes_nothing() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::create(&path, true).unwrap();
        w.append(&[]).unwrap();
        assert_eq!(w.written_bytes(), 0, "no header, no fsync for zero cells");
        drop(w);
        let r = replay(&path).unwrap();
        assert_eq!(r.records, 0);
        assert!(r.cells.is_empty());
        assert!(!r.torn_tail);
    }

    #[test]
    fn buffered_appends_become_durable_via_cloned_handle() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append_buffered(&[Cell::put("a", 1, "x")]).unwrap();
        w.append_buffered(&[Cell::put("b", 2, "y")]).unwrap();
        let f = w.flush_and_clone().unwrap();
        f.sync_data().unwrap();
        // Both records are on disk even though the writer never synced.
        let r = replay(&path).unwrap();
        assert_eq!(r.records, 2);
        assert_eq!(r.cells.len(), 2);
        drop(w);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::create(&path, true).unwrap();
        w.append(&sample_cells()).unwrap();
        w.append(&[Cell::put("tail", 20, "gone")]).unwrap();
        drop(w);

        // Chop bytes off the final record to simulate a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let r = replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records, 1);
        assert_eq!(r.cells.len(), 3, "intact first record survives");
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append(&[Cell::put("a", 1, "x")]).unwrap();
        w.append(&[Cell::put("b", 2, "y")]).unwrap();
        drop(w);

        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // flip a payload byte of record 2
        std::fs::write(&path, &bytes).unwrap();

        let r = replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.cells.len(), 1);
    }

    #[test]
    fn insane_length_field_is_corruption_not_allocation() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.path().join("wal.log");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records, 0);
    }

    #[test]
    fn written_bytes_tracks_appends() {
        let dir = TempDir::new("wal").unwrap();
        let mut w = WalWriter::create(dir.path().join("w.log"), false).unwrap();
        assert_eq!(w.written_bytes(), 0);
        w.append(&[Cell::put("k", 1, "v")]).unwrap();
        let after_one = w.written_bytes();
        assert!(after_one > 8);
        w.append(&[Cell::put("k", 2, "v")]).unwrap();
        assert_eq!(w.written_bytes(), after_one * 2);
    }

    #[test]
    fn replay_missing_file_is_io_error() {
        let dir = TempDir::new("wal").unwrap();
        let err = replay(dir.path().join("nope.log")).unwrap_err();
        assert!(matches!(err, LsmError::Io(_)));
    }

    #[test]
    fn decode_batch_rejects_trailing_garbage() {
        let mut payload = encode_batch(&[Cell::put("k", 1, "v")]);
        payload.push(0x7);
        assert!(decode_batch(&payload).is_err());
    }
}

//! K-way merge of cell streams (memtable + SSTables) in internal-key order,
//! plus the visibility adaptor that turns an all-versions stream into the
//! newest-visible-version-per-key view used by scans.

use crate::types::{Cell, CellKind, Timestamp};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One source in the merge, tagged with its age rank (0 = newest component).
struct Source<'a> {
    iter: Box<dyn Iterator<Item = Cell> + 'a>,
    rank: usize,
}

/// Heap entry: the head cell of one source. `BinaryHeap` is a max-heap, so
/// the `Ord` impl reverses the comparison to pop the smallest key first.
struct HeadEntry {
    cell: Cell,
    rank: usize,
}

impl PartialEq for HeadEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cell.key == other.cell.key && self.rank == other.rank
    }
}
impl Eq for HeadEntry {}
impl PartialOrd for HeadEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeadEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour: smallest internal key first; ties
        // broken by rank so the newest component wins.
        other
            .cell
            .key
            .cmp(&self.cell.key)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

/// Merging iterator yielding every cell from every source in internal-key
/// order. Identical `(key, ts, kind)` cells appearing in several sources are
/// emitted once, from the newest-ranked source (duplicates arise from WAL
/// replay and from Diff-Index's idempotent re-deliveries).
pub struct MergeIter<'a> {
    heap: BinaryHeap<HeadEntry>,
    sources: Vec<Source<'a>>,
    last_emitted: Option<crate::types::InternalKey>,
}

impl<'a> MergeIter<'a> {
    /// Build a merge over `iters`, ordered newest component first.
    pub fn new(iters: Vec<Box<dyn Iterator<Item = Cell> + 'a>>) -> Self {
        let mut sources: Vec<Source<'a>> = iters
            .into_iter()
            .enumerate()
            .map(|(rank, iter)| Source { iter, rank })
            .collect();
        let mut heap = BinaryHeap::new();
        for s in &mut sources {
            if let Some(c) = s.iter.next() {
                heap.push(HeadEntry { cell: c, rank: s.rank });
            }
        }
        Self { heap, sources, last_emitted: None }
    }
}

impl<'a> Iterator for MergeIter<'a> {
    type Item = Cell;

    fn next(&mut self) -> Option<Cell> {
        loop {
            let top = self.heap.pop()?;
            // Refill from the popped source.
            if let Some(next) = self.sources[top.rank].iter.next() {
                self.heap.push(HeadEntry { cell: next, rank: top.rank });
            }
            if self.last_emitted.as_ref() == Some(&top.cell.key) {
                continue; // exact duplicate from an older component
            }
            self.last_emitted = Some(top.cell.key.clone());
            return Some(top.cell);
        }
    }
}

/// Adaptor over an internal-key-ordered all-versions stream that yields only
/// the newest version of each user key visible at `snapshot_ts`, hiding
/// tombstoned keys. This is the semantics of a scan / multi-row read.
pub struct VisibleIter<I: Iterator<Item = Cell>> {
    inner: std::iter::Peekable<I>,
    snapshot_ts: Timestamp,
}

impl<I: Iterator<Item = Cell>> VisibleIter<I> {
    /// Wrap `inner` with snapshot visibility at `snapshot_ts`.
    pub fn new(inner: I, snapshot_ts: Timestamp) -> Self {
        Self { inner: inner.peekable(), snapshot_ts }
    }
}

impl<I: Iterator<Item = Cell>> Iterator for VisibleIter<I> {
    type Item = Cell;

    fn next(&mut self) -> Option<Cell> {
        loop {
            let cell = self.inner.next()?;
            let user_key = cell.key.user_key.clone();
            let mut chosen = if cell.key.ts <= self.snapshot_ts { Some(cell) } else { None };
            // Consume remaining (older or invisible) versions of this key.
            while let Some(peek) = self.inner.peek() {
                if peek.key.user_key != user_key {
                    break;
                }
                let c = self.inner.next().unwrap();
                if chosen.is_none() && c.key.ts <= self.snapshot_ts {
                    chosen = Some(c);
                }
            }
            match chosen {
                Some(c) if c.key.kind == CellKind::Put => return Some(c),
                _ => continue, // tombstone or nothing visible: key is hidden
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Cell;
    use bytes::Bytes;

    fn merge(sources: Vec<Vec<Cell>>) -> Vec<Cell> {
        MergeIter::new(sources.into_iter().map(|v| Box::new(v.into_iter()) as _).collect())
            .collect()
    }

    #[test]
    fn merges_in_internal_order() {
        let a = vec![Cell::put("a", 5, "a5"), Cell::put("c", 2, "c2")];
        let b = vec![Cell::put("a", 3, "a3"), Cell::put("b", 9, "b9")];
        let got = merge(vec![a, b]);
        let keys: Vec<(Bytes, u64)> =
            got.iter().map(|c| (c.key.user_key.clone(), c.key.ts)).collect();
        assert_eq!(
            keys,
            vec![
                (Bytes::from("a"), 5),
                (Bytes::from("a"), 3),
                (Bytes::from("b"), 9),
                (Bytes::from("c"), 2)
            ]
        );
    }

    #[test]
    fn exact_duplicates_collapse_to_newest_source() {
        let newer = vec![Cell::put("k", 5, "from-new")];
        let older = vec![Cell::put("k", 5, "from-old")];
        let got = merge(vec![newer, older]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, Bytes::from("from-new"));
    }

    #[test]
    fn empty_sources_are_fine() {
        assert!(merge(vec![]).is_empty());
        assert!(merge(vec![vec![], vec![]]).is_empty());
        let got = merge(vec![vec![], vec![Cell::put("x", 1, "v")]]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn visible_iter_picks_newest_visible_version() {
        let all = vec![
            Cell::put("a", 9, "a9"),
            Cell::put("a", 4, "a4"),
            Cell::put("b", 7, "b7"),
        ];
        let got: Vec<Cell> = VisibleIter::new(all.clone().into_iter(), u64::MAX).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].value, Bytes::from("a9"));
        assert_eq!(got[1].value, Bytes::from("b7"));

        // Snapshot at ts=5 sees a4 but not b7.
        let got: Vec<Cell> = VisibleIter::new(all.into_iter(), 5).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, Bytes::from("a4"));
    }

    #[test]
    fn visible_iter_hides_tombstoned_keys() {
        let all = vec![
            Cell::delete("a", 9),
            Cell::put("a", 4, "a4"),
            Cell::put("b", 7, "b7"),
        ];
        let got: Vec<Cell> = VisibleIter::new(all.clone().into_iter(), u64::MAX).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key.user_key, Bytes::from("b"));

        // But a snapshot before the delete resurrects the old value.
        let got: Vec<Cell> = VisibleIter::new(all.into_iter(), 5).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, Bytes::from("a4"));
    }

    #[test]
    fn visible_iter_skips_fully_invisible_keys() {
        let all = vec![Cell::put("a", 9, "a9"), Cell::put("b", 7, "b7")];
        let got: Vec<Cell> = VisibleIter::new(all.into_iter(), 3).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn merge_then_visible_composes() {
        // Memtable shadows sstable; delete in memtable hides sstable value.
        let memtable = vec![Cell::delete("a", 10), Cell::put("b", 10, "new-b")];
        let sstable = vec![Cell::put("a", 5, "old-a"), Cell::put("b", 5, "old-b")];
        let merged = MergeIter::new(vec![
            Box::new(memtable.into_iter()) as _,
            Box::new(sstable.into_iter()) as _,
        ]);
        let got: Vec<Cell> = VisibleIter::new(merged, u64::MAX).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, Bytes::from("new-b"));
    }
}

//! Deterministic fault injection for the storage engine.
//!
//! A [`FaultInjector`] is a small bank of *armed* failure counters shared
//! between a test harness and one or more engines (see
//! [`LsmTree::set_fault_injector`](crate::LsmTree::set_fault_injector)).
//! The harness arms N failures of a given kind; the next N times the engine
//! reaches the corresponding crash point it returns an injected I/O error
//! instead of performing the operation. Injection is purely subtractive —
//! an injected failure never corrupts state, it only makes the engine
//! behave exactly as if the underlying syscall had failed:
//!
//! * **fsync failures** fire in [`sync_wal`] *before* `File::sync_data`,
//!   so the WAL record is staged (buffered, applied to the memtable) but
//!   the group-commit leader reports an error and no waiter is acked —
//!   the paper's §5.3 "server fails before index maintenance" window.
//! * **append failures** fire in [`stage_batch`] *before* the buffered
//!   WAL append, so the write is rejected wholesale (nothing staged).
//!
//! [`sync_wal`]: crate::LsmTree::complete
//! [`stage_batch`]: crate::LsmTree::stage_batch
//!
//! All counters are atomics: arming and consuming are lock-free and safe
//! from any thread. Everything is deterministic given a deterministic
//! sequence of arm/operation calls — the chaos harness derives both from
//! one seed.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Shared bank of armed failures plus counters of what actually fired.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// How many upcoming WAL fsyncs should fail.
    armed_fsync_failures: AtomicU32,
    /// How many upcoming WAL appends should fail.
    armed_append_failures: AtomicU32,
    /// Total injected fsync failures that actually fired.
    fired_fsync_failures: AtomicU64,
    /// Total injected append failures that actually fired.
    fired_append_failures: AtomicU64,
}

/// Atomically consume one unit from an armed counter, saturating at zero.
/// Returns true if a failure was consumed (i.e. the caller must fail).
fn consume(armed: &AtomicU32) -> bool {
    let mut cur = armed.load(Ordering::Acquire);
    while cur > 0 {
        match armed.compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

impl FaultInjector {
    /// A fresh injector with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the next `n` WAL fsyncs to fail (cumulative with already-armed
    /// failures).
    pub fn arm_fsync_failures(&self, n: u32) {
        self.armed_fsync_failures.fetch_add(n, Ordering::AcqRel);
    }

    /// Arm the next `n` WAL appends to fail (cumulative).
    pub fn arm_append_failures(&self, n: u32) {
        self.armed_append_failures.fetch_add(n, Ordering::AcqRel);
    }

    /// Disarm every armed failure (end-of-scenario cleanup, so leftover
    /// armed faults cannot leak into the verification phase).
    pub fn disarm_all(&self) {
        self.armed_fsync_failures.store(0, Ordering::Release);
        self.armed_append_failures.store(0, Ordering::Release);
    }

    /// Engine-side check: should the fsync about to run fail instead?
    pub fn take_fsync_failure(&self) -> bool {
        let fire = consume(&self.armed_fsync_failures);
        if fire {
            self.fired_fsync_failures.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Engine-side check: should the WAL append about to run fail instead?
    pub fn take_append_failure(&self) -> bool {
        let fire = consume(&self.armed_append_failures);
        if fire {
            self.fired_append_failures.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Injected fsync failures that actually fired so far.
    pub fn fired_fsync_failures(&self) -> u64 {
        self.fired_fsync_failures.load(Ordering::Relaxed)
    }

    /// Injected append failures that actually fired so far.
    pub fn fired_append_failures(&self) -> u64 {
        self.fired_append_failures.load(Ordering::Relaxed)
    }

    /// True if any failure of any kind is still armed.
    pub fn anything_armed(&self) -> bool {
        self.armed_fsync_failures.load(Ordering::Acquire) > 0
            || self.armed_append_failures.load(Ordering::Acquire) > 0
    }

    /// The error an injected fault surfaces as: indistinguishable from a
    /// real failed syscall, so every layer above exercises its genuine
    /// error path.
    pub fn injected_error(what: &str) -> crate::LsmError {
        crate::LsmError::Io(std::io::Error::other(format!("injected fault: {what}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_counts_are_consumed_exactly() {
        let f = FaultInjector::new();
        assert!(!f.take_fsync_failure());
        f.arm_fsync_failures(2);
        assert!(f.take_fsync_failure());
        assert!(f.take_fsync_failure());
        assert!(!f.take_fsync_failure());
        assert_eq!(f.fired_fsync_failures(), 2);
    }

    #[test]
    fn disarm_clears_everything() {
        let f = FaultInjector::new();
        f.arm_fsync_failures(5);
        f.arm_append_failures(5);
        assert!(f.anything_armed());
        f.disarm_all();
        assert!(!f.anything_armed());
        assert!(!f.take_fsync_failure());
        assert!(!f.take_append_failure());
        assert_eq!(f.fired_fsync_failures(), 0);
    }

    #[test]
    fn kinds_are_independent() {
        let f = FaultInjector::new();
        f.arm_append_failures(1);
        assert!(!f.take_fsync_failure());
        assert!(f.take_append_failure());
        assert_eq!(f.fired_append_failures(), 1);
        assert_eq!(f.fired_fsync_failures(), 0);
    }
}

//! Immutable on-disk sorted table (the paper's *disk store* `C1..Cn`, HBase's
//! *HTable/HFile*).
//!
//! File layout:
//!
//! ```text
//! [data block]* [index block] [bloom block] [footer]
//! ```
//!
//! * **Data block** — cells in internal-key order, each encoded as
//!   `kind: u8, ts: varint, key: len-prefixed, value: len-prefixed`, followed
//!   by a CRC-32 of the block body.
//! * **Index block** — properties (cell count, min/max user key, max ts) plus
//!   one `(first internal key, offset, len)` entry per data block.
//! * **Bloom block** — bloom filter over user keys (see [`crate::bloom`]).
//! * **Footer** — fixed-size: offsets/lengths of index and bloom, a CRC of
//!   the footer body, and a magic number.

use crate::bloom::{Bloom, BloomBuilder};
use crate::cache::BlockCache;
use crate::metrics::Metrics;
use crate::types::{cmp_internal, Cell, CellKind, InternalKey, LsmError, Result, Timestamp};
use crate::util::{
    crc32, get_len_prefixed, get_u32, get_u64, get_varint, put_len_prefixed, put_u32, put_u64,
    put_varint,
};
use bytes::Bytes;
use std::cmp::Ordering;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: u64 = 0xD1FF_1DE8_5574_AB1E;
const FOOTER_LEN: usize = 8 * 4 + 4 + 8; // 4 u64 fields + crc + magic

/// Tuning knobs for table construction.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Target uncompressed size of one data block.
    pub block_size: usize,
    /// Bloom filter budget.
    pub bloom_bits_per_key: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self { block_size: 4096, bloom_bits_per_key: 10 }
    }
}

/// Summary of a finished table.
#[derive(Debug, Clone)]
pub struct TableProperties {
    /// Number of cells (versions) stored.
    pub cell_count: u64,
    /// Smallest user key.
    pub min_key: Bytes,
    /// Largest user key.
    pub max_key: Bytes,
    /// Largest cell timestamp (used by compaction GC heuristics).
    pub max_ts: Timestamp,
    /// Total file size in bytes.
    pub file_size: u64,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Streaming SSTable writer. Cells must be appended in strictly increasing
/// internal-key order.
pub struct TableBuilder {
    file: BufWriter<File>,
    path: PathBuf,
    opts: TableOptions,
    block: Vec<u8>,
    block_first_key: Option<InternalKey>,
    index: Vec<(InternalKey, u64, u32)>,
    bloom: BloomBuilder,
    last_key: Option<InternalKey>,
    offset: u64,
    cell_count: u64,
    min_key: Option<Bytes>,
    max_key: Option<Bytes>,
    max_ts: Timestamp,
}

impl TableBuilder {
    /// Begin writing a table at `path`.
    pub fn create(path: impl Into<PathBuf>, opts: TableOptions) -> Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(Self {
            file: BufWriter::new(file),
            path,
            bloom: BloomBuilder::new(opts.bloom_bits_per_key),
            opts,
            block: Vec::new(),
            block_first_key: None,
            index: Vec::new(),
            last_key: None,
            offset: 0,
            cell_count: 0,
            min_key: None,
            max_key: None,
            max_ts: 0,
        })
    }

    /// Append the next cell. Returns an error if ordering is violated.
    pub fn add(&mut self, cell: &Cell) -> Result<()> {
        if let Some(last) = &self.last_key {
            if *last >= cell.key {
                return Err(LsmError::InvalidOperation(format!(
                    "cells out of order: {:?} then {:?}",
                    last, cell.key
                )));
            }
        }
        if self.block_first_key.is_none() {
            self.block_first_key = Some(cell.key.clone());
        }
        self.block.push(cell.key.kind.to_u8());
        put_varint(&mut self.block, cell.key.ts);
        put_len_prefixed(&mut self.block, &cell.key.user_key);
        put_len_prefixed(&mut self.block, &cell.value);

        self.bloom.add(&cell.key.user_key);
        self.cell_count += 1;
        self.max_ts = self.max_ts.max(cell.key.ts);
        if self.min_key.is_none() {
            self.min_key = Some(cell.key.user_key.clone());
        }
        self.max_key = Some(cell.key.user_key.clone());
        self.last_key = Some(cell.key.clone());

        if self.block.len() >= self.opts.block_size {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let crc = crc32(&self.block);
        let mut body = std::mem::take(&mut self.block);
        put_u32(&mut body, crc);
        let first = self.block_first_key.take().expect("non-empty block has first key");
        self.index.push((first, self.offset, body.len() as u32));
        self.file.write_all(&body)?;
        self.offset += body.len() as u64;
        Ok(())
    }

    /// Flush remaining data, write index/bloom/footer, fsync, and return the
    /// table properties. The builder is consumed.
    pub fn finish(mut self) -> Result<TableProperties> {
        if self.cell_count == 0 {
            return Err(LsmError::InvalidOperation("empty table".into()));
        }
        self.finish_block()?;

        // Index block: properties header then per-block entries.
        let mut index = Vec::new();
        put_u64(&mut index, self.cell_count);
        put_len_prefixed(&mut index, self.min_key.as_ref().unwrap());
        put_len_prefixed(&mut index, self.max_key.as_ref().unwrap());
        put_u64(&mut index, self.max_ts);
        put_varint(&mut index, self.index.len() as u64);
        for (first, off, len) in &self.index {
            index.push(first.kind.to_u8());
            put_varint(&mut index, first.ts);
            put_len_prefixed(&mut index, &first.user_key);
            put_u64(&mut index, *off);
            put_u32(&mut index, *len);
        }
        let index_crc = crc32(&index);
        put_u32(&mut index, index_crc);
        let index_off = self.offset;
        self.file.write_all(&index)?;
        self.offset += index.len() as u64;

        let bloom = self.bloom.build().encode();
        let bloom_off = self.offset;
        self.file.write_all(&bloom)?;
        self.offset += bloom.len() as u64;

        let mut footer = Vec::with_capacity(FOOTER_LEN);
        put_u64(&mut footer, index_off);
        put_u64(&mut footer, index.len() as u64);
        put_u64(&mut footer, bloom_off);
        put_u64(&mut footer, bloom.len() as u64);
        let fcrc = crc32(&footer);
        put_u32(&mut footer, fcrc);
        put_u64(&mut footer, MAGIC);
        self.file.write_all(&footer)?;
        self.offset += footer.len() as u64;

        self.file.flush()?;
        self.file.get_ref().sync_data()?;

        Ok(TableProperties {
            cell_count: self.cell_count,
            min_key: self.min_key.unwrap(),
            max_key: self.max_key.unwrap(),
            max_ts: self.max_ts,
            file_size: self.offset,
        })
    }

    /// Path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cells added so far.
    pub fn cell_count(&self) -> u64 {
        self.cell_count
    }
}

// ---------------------------------------------------------------------------
// Decoded data block
// ---------------------------------------------------------------------------

/// A decoded, immutable data block: the block body as **one** shared byte
/// buffer plus a per-cell offset array.
///
/// The seed decoded every block into a `Vec<Cell>`, paying two
/// `Bytes::copy_from_slice` allocations per cell up front and a linear scan
/// per lookup. A `Block` instead validates the encoding once, remembers
/// where each cell starts, and hands out cells on demand: key/value `Bytes`
/// are O(1) refcounted windows into the block buffer (`Bytes::slice`), and
/// point lookups binary-search the offset array with borrowed-slice key
/// comparisons — no allocation on the lookup path at all.
#[derive(Debug)]
pub struct Block {
    /// Block body (cell encodings only; the trailing CRC is stripped).
    data: Bytes,
    /// Byte offset of each cell encoding within `data`, ascending.
    offsets: Vec<u32>,
    /// Per-cell key prefix (see [`key_prefix`]), same order as `offsets`.
    /// Seeks scan this contiguous array instead of binary-searching the
    /// block body: on a cold block the body parses are serially-dependent
    /// DRAM misses, while a sequential prefix scan streams through the
    /// hardware prefetcher. Only prefix-tied cells are parsed.
    prefixes: Vec<u128>,
}

/// Parse the key parts of the cell encoded at `off`. Caller guarantees the
/// encoding was validated by [`Block::decode`].
fn parse_key_at(d: &[u8], off: usize) -> (&[u8], Timestamp, CellKind) {
    let kind = CellKind::from_u8(d[off]).expect("validated at decode");
    let off = off + 1;
    let (ts, n) = get_varint(&d[off..]).expect("validated at decode");
    let off = off + n;
    let (key, _) = get_len_prefixed(&d[off..]).expect("validated at decode");
    (key, ts, kind)
}

impl Block {
    /// Validate and index a raw block read from disk (body + trailing CRC).
    /// Consumes the buffer; the block shares it without further copies.
    pub fn decode(buf: Vec<u8>) -> std::result::Result<Block, String> {
        if buf.len() < 4 {
            return Err("short block".into());
        }
        let body_len = buf.len() - 4;
        let crc = get_u32(&buf, body_len).unwrap();
        if crc32(&buf[..body_len]) != crc {
            return Err("checksum mismatch".into());
        }
        let body = &buf[..body_len];
        let mut offsets = Vec::new();
        let mut prefixes = Vec::new();
        let mut off = 0usize;
        while off < body.len() {
            offsets.push(off as u32);
            CellKind::from_u8(body[off]).ok_or_else(|| "bad cell kind".to_string())?;
            off += 1;
            let (_, n) = get_varint(&body[off..]).ok_or_else(|| "short ts".to_string())?;
            off += n;
            let (key, n) =
                get_len_prefixed(&body[off..]).ok_or_else(|| "short key".to_string())?;
            prefixes.push(key_prefix(key));
            off += n;
            let (_, n) =
                get_len_prefixed(&body[off..]).ok_or_else(|| "short value".to_string())?;
            off += n;
        }
        Ok(Block { data: Bytes::from(buf).slice(..body_len), offsets, prefixes })
    }

    /// Build a block in memory from already-sorted cells (tests and cache
    /// benchmarks; the storage path always goes through [`TableBuilder`]).
    pub fn from_cells(cells: &[Cell]) -> Block {
        let mut body = Vec::new();
        for c in cells {
            body.push(c.key.kind.to_u8());
            put_varint(&mut body, c.key.ts);
            put_len_prefixed(&mut body, &c.key.user_key);
            put_len_prefixed(&mut body, &c.value);
        }
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        Block::decode(body).expect("self-encoded block is valid")
    }

    /// Number of cells in the block.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True if the block holds no cells.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Approximate resident size, for cache accounting.
    pub fn size_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * (4 + 16) + 64
    }

    /// Borrowed key parts of cell `i`: `(user_key, ts, kind)`.
    pub fn key_parts(&self, i: usize) -> (&[u8], Timestamp, CellKind) {
        parse_key_at(self.data.as_ref(), self.offsets[i] as usize)
    }

    /// Materialize cell `i`. Key and value are zero-copy windows into the
    /// block buffer.
    pub fn cell(&self, i: usize) -> Cell {
        let d = self.data.as_ref();
        let mut off = self.offsets[i] as usize;
        let kind = CellKind::from_u8(d[off]).expect("validated at decode");
        off += 1;
        let (ts, n) = get_varint(&d[off..]).expect("validated at decode");
        off += n;
        let (k, n) = get_len_prefixed(&d[off..]).expect("validated at decode");
        let key_range = off + n - k.len()..off + n;
        off += n;
        let (v, n) = get_len_prefixed(&d[off..]).expect("validated at decode");
        let val_range = off + n - v.len()..off + n;
        Cell {
            key: InternalKey {
                user_key: self.data.slice(key_range),
                ts,
                kind,
            },
            value: self.data.slice(val_range),
        }
    }

    /// Index of the first cell whose internal key is `>=` the target, or
    /// `len()` if all cells are smaller.
    ///
    /// Strict prefix inequality implies the same strict user-key order
    /// (zero-padded fixed-width compare), so the sequential prefix scan
    /// resolves every cell except those tied with the target's prefix;
    /// only the tie range is parsed for the full `(key, ts, kind)` compare.
    pub fn seek(&self, user_key: &[u8], ts: Timestamp, kind: CellKind) -> usize {
        let target = key_prefix(user_key);
        let n = self.prefixes.len();
        let mut lo = 0usize;
        while lo < n && self.prefixes[lo] < target {
            lo += 1;
        }
        let mut hi = lo;
        while hi < n && self.prefixes[hi] == target {
            hi += 1;
        }
        let d = self.data.as_ref();
        lo + self.offsets[lo..hi].partition_point(|&o| {
            let parts = parse_key_at(d, o as usize);
            cmp_internal(parts, (user_key, ts, kind)) == Ordering::Less
        })
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct IndexEntry {
    /// First 16 bytes of `first.user_key`, zero-padded, as a big-endian
    /// integer. Strict inequality of two prefixes implies the same strict
    /// order of the full keys, so the index binary search only dereferences
    /// the out-of-line `Bytes` key on prefix ties — most search steps stay
    /// within this (cache-resident) struct.
    prefix: u128,
    first: InternalKey,
    offset: u64,
    len: u32,
}

/// Zero-padded big-endian prefix of `key`; see [`IndexEntry::prefix`].
fn key_prefix(key: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    let n = key.len().min(16);
    buf[..n].copy_from_slice(&key[..n]);
    u128::from_be_bytes(buf)
}

/// Random-access reader over a finished table. Cheap to clone via `Arc`.
pub struct Table {
    file: File,
    path: PathBuf,
    /// Caller-supplied id (the engine's file number, used for manifests).
    id: u64,
    /// Globally unique block-cache namespace. File numbers restart per
    /// engine directory, and a block cache may be shared across many
    /// engines (HBase shares one per region server), so cache keys must
    /// not be derived from the file number.
    cache_ns: u64,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    /// Inline prefixes of `props.min_key` / `props.max_key`, so the
    /// per-table range check on the read path usually resolves without
    /// dereferencing either `Bytes`.
    min_prefix: u128,
    max_prefix: u128,
    props: TableProperties,
    cache: Option<Arc<BlockCache>>,
    /// Engine metrics for block-cache hit/miss/eviction accounting; `None`
    /// for tables opened outside an engine (tools, tests).
    metrics: Option<Arc<Metrics>>,
}

/// Source of globally unique cache namespaces.
static NEXT_CACHE_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("path", &self.path)
            .field("id", &self.id)
            .field("blocks", &self.index.len())
            .field("cells", &self.props.cell_count)
            .finish()
    }
}

impl Table {
    /// Open a table file, validating footer and index checksums.
    pub fn open(
        path: impl Into<PathBuf>,
        id: u64,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Self> {
        let path = path.into();
        let file = File::open(&path)?;
        let file_size = file.metadata()?.len();
        let corrupt =
            |m: String| LsmError::Corruption(format!("{}: {m}", path.display()));
        if (file_size as usize) < FOOTER_LEN {
            return Err(corrupt("file shorter than footer".into()));
        }
        let mut footer = vec![0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, file_size - FOOTER_LEN as u64)?;
        let magic = get_u64(&footer, FOOTER_LEN - 8).unwrap();
        if magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:#x}")));
        }
        let fcrc = get_u32(&footer, 32).unwrap();
        if crc32(&footer[..32]) != fcrc {
            return Err(corrupt("footer checksum mismatch".into()));
        }
        let index_off = get_u64(&footer, 0).unwrap();
        let index_len = get_u64(&footer, 8).unwrap();
        let bloom_off = get_u64(&footer, 16).unwrap();
        let bloom_len = get_u64(&footer, 24).unwrap();
        if index_off + index_len > file_size || bloom_off + bloom_len > file_size {
            return Err(corrupt("index/bloom extent out of bounds".into()));
        }

        let mut index_buf = vec![0u8; index_len as usize];
        file.read_exact_at(&mut index_buf, index_off)?;
        if index_buf.len() < 4 {
            return Err(corrupt("index block too small".into()));
        }
        let body_len = index_buf.len() - 4;
        let icrc = get_u32(&index_buf, body_len).unwrap();
        if crc32(&index_buf[..body_len]) != icrc {
            return Err(corrupt("index checksum mismatch".into()));
        }
        let body = &index_buf[..body_len];
        let mut off = 0usize;
        let cell_count = get_u64(body, off).ok_or_else(|| corrupt("short props".into()))?;
        off += 8;
        let (min_key, n) =
            get_len_prefixed(&body[off..]).ok_or_else(|| corrupt("short min key".into()))?;
        let min_key = Bytes::copy_from_slice(min_key);
        off += n;
        let (max_key, n) =
            get_len_prefixed(&body[off..]).ok_or_else(|| corrupt("short max key".into()))?;
        let max_key = Bytes::copy_from_slice(max_key);
        off += n;
        let max_ts = get_u64(body, off).ok_or_else(|| corrupt("short max ts".into()))?;
        off += 8;
        let (nblocks, n) =
            get_varint(&body[off..]).ok_or_else(|| corrupt("short block count".into()))?;
        off += n;
        let mut index = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            let kind = CellKind::from_u8(body[off])
                .ok_or_else(|| corrupt("bad index kind".into()))?;
            off += 1;
            let (ts, n) =
                get_varint(&body[off..]).ok_or_else(|| corrupt("short index ts".into()))?;
            off += n;
            let (ukey, n) = get_len_prefixed(&body[off..])
                .ok_or_else(|| corrupt("short index key".into()))?;
            let ukey = Bytes::copy_from_slice(ukey);
            off += n;
            let boff = get_u64(body, off).ok_or_else(|| corrupt("short index off".into()))?;
            off += 8;
            let blen = get_u32(body, off).ok_or_else(|| corrupt("short index len".into()))?;
            off += 4;
            index.push(IndexEntry {
                prefix: key_prefix(&ukey),
                first: InternalKey { user_key: ukey, ts, kind },
                offset: boff,
                len: blen,
            });
        }

        let mut bloom_buf = vec![0u8; bloom_len as usize];
        file.read_exact_at(&mut bloom_buf, bloom_off)?;
        let bloom =
            Bloom::decode(&bloom_buf).ok_or_else(|| corrupt("bad bloom block".into()))?;

        Ok(Self {
            file,
            path,
            id,
            cache_ns: NEXT_CACHE_NS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            index,
            bloom,
            min_prefix: key_prefix(&min_key),
            max_prefix: key_prefix(&max_key),
            props: TableProperties { cell_count, min_key, max_key, max_ts, file_size },
            cache,
            metrics: None,
        })
    }

    /// Attach engine metrics so block-cache traffic from this table is
    /// surfaced through [`Metrics`]. Builder-style; used by the engine when
    /// it opens or creates tables.
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Table properties recorded at build time.
    pub fn properties(&self) -> &TableProperties {
        &self.props
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Unique id (block-cache namespace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True if the bloom filter rules out `user_key`.
    pub fn definitely_absent(&self, user_key: &[u8]) -> bool {
        !self.bloom.may_contain(user_key)
    }

    /// True if `user_key` is outside this table's `[min, max]` key range.
    pub fn outside_key_range(&self, user_key: &[u8]) -> bool {
        let p = key_prefix(user_key);
        // Strict prefix inequality implies the same strict key order, so
        // these bounds are conclusive; only prefix ties need the full keys.
        if p < self.min_prefix || p > self.max_prefix {
            return true;
        }
        user_key < self.props.min_key.as_ref() || user_key > self.props.max_key.as_ref()
    }

    fn read_block(&self, idx: usize) -> Result<Arc<Block>> {
        let entry = &self.index[idx];
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(self.cache_ns, entry.offset) {
                if let Some(m) = &self.metrics {
                    Metrics::bump(&m.block_cache_hits);
                }
                return Ok(block);
            }
            if let Some(m) = &self.metrics {
                Metrics::bump(&m.block_cache_misses);
            }
        }
        let mut buf = vec![0u8; entry.len as usize];
        self.file.read_exact_at(&mut buf, entry.offset)?;
        let block = Block::decode(buf).map_err(|m| {
            LsmError::Corruption(format!("{}: block: {m}", self.path.display()))
        })?;
        let block = Arc::new(block);
        if let Some(cache) = &self.cache {
            let evicted = cache.insert(self.cache_ns, entry.offset, Arc::clone(&block));
            if evicted > 0 {
                if let Some(m) = &self.metrics {
                    Metrics::add(&m.block_cache_evictions, evicted);
                }
            }
        }
        Ok(block)
    }

    /// Index of the block that could contain the target key parts, i.e. the
    /// last block whose first key is `<=` the target (or block 0).
    fn block_for_parts(&self, user_key: &[u8], ts: Timestamp, kind: CellKind) -> usize {
        let target_prefix = key_prefix(user_key);
        // partition_point: number of blocks with first <= target. The
        // inline prefix decides all but prefix-tied steps without touching
        // the out-of-line key.
        let pp = self.index.partition_point(|e| match e.prefix.cmp(&target_prefix) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => {
                cmp_internal(
                    (e.first.user_key.as_ref(), e.first.ts, e.first.kind),
                    (user_key, ts, kind),
                ) != Ordering::Greater
            }
        });
        pp.saturating_sub(1)
    }

    fn block_for(&self, target: &InternalKey) -> usize {
        self.block_for_parts(target.user_key.as_ref(), target.ts, target.kind)
    }

    /// Latest cell for `user_key` visible at `ts`, tombstones included.
    /// Allocation-free until a hit is materialized: the seek key is borrowed
    /// and each candidate block is binary-searched in place.
    pub fn get_versioned(&self, user_key: &[u8], ts: Timestamp) -> Result<Option<Cell>> {
        if self.outside_key_range(user_key) || self.definitely_absent(user_key) {
            return Ok(None);
        }
        self.probe_versioned(user_key, ts)
    }

    /// Like [`Table::get_versioned`], but skips the key-range and bloom
    /// pre-filters. For callers (the engine) that have already consulted
    /// them — the bloom probe costs several cache misses, so paying it twice
    /// per read is measurable on the warm hot path.
    pub fn probe_versioned(&self, user_key: &[u8], ts: Timestamp) -> Result<Option<Cell>> {
        // Seek kind Delete: sorts first at equal (key, ts), covering both
        // kinds — same convention as `InternalKey::seek_to`.
        let mut idx = self.block_for_parts(user_key, ts, CellKind::Delete);
        // The first cell >= seek may be at the start of the following block.
        loop {
            let block = self.read_block(idx)?;
            let pos = block.seek(user_key, ts, CellKind::Delete);
            if pos < block.len() {
                let (k, _, _) = block.key_parts(pos);
                if k == user_key {
                    return Ok(Some(block.cell(pos)));
                }
                return Ok(None);
            }
            idx += 1;
            if idx >= self.index.len() {
                return Ok(None);
            }
        }
    }

    /// Iterator over all cells from the first internal key `>= seek`
    /// (or from the beginning when `seek` is `None`).
    pub fn iter_from(&self, seek: Option<&InternalKey>) -> TableIter<'_> {
        let (block, pos) = match seek {
            None => (0, 0),
            Some(k) => (self.block_for(k), 0),
        };
        let mut it = TableIter {
            table: self,
            block,
            data: None,
            pos,
            error: None,
        };
        if let Some(k) = seek {
            it.skip_to(k);
        }
        it
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }
}

/// Forward iterator over a table's cells in internal-key order. Holds one
/// decoded [`Block`] at a time; yielded cells are zero-copy slices of it.
pub struct TableIter<'a> {
    table: &'a Table,
    block: usize,
    data: Option<Arc<Block>>,
    pos: usize,
    error: Option<LsmError>,
}

impl<'a> TableIter<'a> {
    fn load_block(&mut self) -> bool {
        while self.data.is_none() {
            if self.block >= self.table.index.len() {
                return false;
            }
            match self.table.read_block(self.block) {
                Ok(b) => {
                    self.data = Some(b);
                    self.pos = 0;
                }
                Err(e) => {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        true
    }

    fn skip_to(&mut self, seek: &InternalKey) {
        loop {
            if !self.load_block() {
                return;
            }
            let block = self.data.as_ref().unwrap();
            let pos = block.seek(seek.user_key.as_ref(), seek.ts, seek.kind);
            if pos < block.len() {
                self.pos = pos;
                return;
            }
            self.data = None;
            self.block += 1;
        }
    }

    /// An I/O or corruption error encountered during iteration, if any.
    pub fn take_error(&mut self) -> Option<LsmError> {
        self.error.take()
    }
}

impl<'a> Iterator for TableIter<'a> {
    type Item = Cell;

    fn next(&mut self) -> Option<Cell> {
        loop {
            if !self.load_block() {
                return None;
            }
            let block = self.data.as_ref().unwrap();
            if self.pos < block.len() {
                let c = block.cell(self.pos);
                self.pos += 1;
                return Some(c);
            }
            self.data = None;
            self.block += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir_lite::TempDir;

    fn build_table(dir: &TempDir, cells: &[Cell], opts: TableOptions) -> Table {
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, opts).unwrap();
        for c in cells {
            b.add(c).unwrap();
        }
        b.finish().unwrap();
        Table::open(&path, 1, None).unwrap()
    }

    fn many_cells(n: usize) -> Vec<Cell> {
        (0..n).map(|i| Cell::put(format!("key{i:06}"), 100, format!("value-{i}"))).collect()
    }

    #[test]
    fn build_and_get_roundtrip() {
        let dir = TempDir::new("sst").unwrap();
        let t = build_table(&dir, &many_cells(1000), TableOptions::default());
        assert_eq!(t.properties().cell_count, 1000);
        assert!(t.block_count() > 1, "should span multiple blocks");
        for i in (0..1000).step_by(37) {
            let c = t.get_versioned(format!("key{i:06}").as_bytes(), u64::MAX).unwrap().unwrap();
            assert_eq!(c.value, Bytes::from(format!("value-{i}")));
        }
        assert!(t.get_versioned(b"missing", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn versioned_get_respects_snapshot() {
        let dir = TempDir::new("sst").unwrap();
        let cells = vec![
            Cell::put("k", 30, "v30"),
            Cell::put("k", 20, "v20"),
            Cell::put("k", 10, "v10"),
        ];
        let t = build_table(&dir, &cells, TableOptions::default());
        assert_eq!(t.get_versioned(b"k", 35).unwrap().unwrap().value, Bytes::from("v30"));
        assert_eq!(t.get_versioned(b"k", 29).unwrap().unwrap().value, Bytes::from("v20"));
        assert_eq!(t.get_versioned(b"k", 10).unwrap().unwrap().value, Bytes::from("v10"));
        assert!(t.get_versioned(b"k", 9).unwrap().is_none());
    }

    #[test]
    fn tombstones_are_returned() {
        let dir = TempDir::new("sst").unwrap();
        let cells = vec![Cell::delete("k", 20), Cell::put("k", 10, "v")];
        let t = build_table(&dir, &cells, TableOptions::default());
        let c = t.get_versioned(b"k", 25).unwrap().unwrap();
        assert!(c.is_tombstone());
        assert_eq!(c.key.ts, 20);
    }

    #[test]
    fn get_crossing_block_boundary() {
        // Tiny blocks force nearly every key into its own block; the seek
        // target often lands at a block whose cells are all smaller.
        let dir = TempDir::new("sst").unwrap();
        let t = build_table(
            &dir,
            &many_cells(200),
            TableOptions { block_size: 16, bloom_bits_per_key: 10 },
        );
        assert!(t.block_count() >= 100);
        for i in 0..200 {
            let c = t.get_versioned(format!("key{i:06}").as_bytes(), u64::MAX).unwrap();
            assert!(c.is_some(), "key{i:06} must be found across block boundaries");
        }
    }

    #[test]
    fn iter_returns_everything_in_order() {
        let dir = TempDir::new("sst").unwrap();
        let cells = many_cells(500);
        let t = build_table(&dir, &cells, TableOptions { block_size: 256, bloom_bits_per_key: 10 });
        let got: Vec<Cell> = t.iter_from(None).collect();
        assert_eq!(got, cells);
    }

    #[test]
    fn iter_from_seek_position() {
        let dir = TempDir::new("sst").unwrap();
        let cells = many_cells(100);
        let t = build_table(&dir, &cells, TableOptions { block_size: 64, bloom_bits_per_key: 10 });
        let seek = InternalKey::seek_to(Bytes::from("key000050"), u64::MAX);
        let got: Vec<Cell> = t.iter_from(Some(&seek)).collect();
        assert_eq!(got.len(), 50);
        assert_eq!(got[0].key.user_key, Bytes::from("key000050"));
    }

    #[test]
    fn out_of_order_add_is_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let mut b = TableBuilder::create(dir.path().join("t.sst"), TableOptions::default()).unwrap();
        b.add(&Cell::put("b", 5, "x")).unwrap();
        assert!(b.add(&Cell::put("a", 5, "y")).is_err());
        // Same key, newer timestamp sorts *earlier* — also rejected:
        assert!(b.add(&Cell::put("b", 9, "z")).is_err());
        // Same key, older timestamp is fine:
        b.add(&Cell::put("b", 3, "w")).unwrap();
    }

    #[test]
    fn empty_table_is_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let b = TableBuilder::create(dir.path().join("t.sst"), TableOptions::default()).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn properties_reflect_contents() {
        let dir = TempDir::new("sst").unwrap();
        let cells =
            vec![Cell::put("aaa", 7, "1"), Cell::put("mmm", 99, "2"), Cell::put("zzz", 12, "3")];
        let t = build_table(&dir, &cells, TableOptions::default());
        let p = t.properties();
        assert_eq!(p.min_key, Bytes::from("aaa"));
        assert_eq!(p.max_key, Bytes::from("zzz"));
        assert_eq!(p.max_ts, 99);
        assert_eq!(p.cell_count, 3);
        assert!(p.file_size > 0);
        assert!(t.outside_key_range(b"zzzz"));
        assert!(t.outside_key_range(b"a"));
        assert!(!t.outside_key_range(b"nnn"));
    }

    #[test]
    fn corrupt_footer_magic_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, TableOptions::default()).unwrap();
        b.add(&Cell::put("k", 1, "v")).unwrap();
        b.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Table::open(&path, 1, None), Err(LsmError::Corruption(_))));
    }

    #[test]
    fn corrupt_data_block_detected_on_read() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, TableOptions::default()).unwrap();
        for c in many_cells(50) {
            b.add(&c).unwrap();
        }
        b.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // inside first data block
        std::fs::write(&path, &bytes).unwrap();
        let t = Table::open(&path, 1, None).unwrap();
        let err = t.get_versioned(b"key000000", u64::MAX).unwrap_err();
        assert!(matches!(err, LsmError::Corruption(_)));
    }

    #[test]
    fn truncated_file_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(Table::open(&path, 1, None), Err(LsmError::Corruption(_))));
    }

    #[test]
    fn block_roundtrip_and_binary_search() {
        let cells = vec![
            Cell::put("a", 9, "a9"),
            Cell::put("a", 2, "a2"),
            Cell::delete("b", 5),
            Cell::put("b", 5, "b5"),
            Cell::put("c", 1, "c1"),
        ];
        let block = Block::from_cells(&cells);
        assert_eq!(block.len(), 5);
        assert!(!block.is_empty());
        for (i, want) in cells.iter().enumerate() {
            assert_eq!(&block.cell(i), want, "cell {i}");
            let (k, ts, kind) = block.key_parts(i);
            assert_eq!(k, want.key.user_key.as_ref());
            assert_eq!(ts, want.key.ts);
            assert_eq!(kind, want.key.kind);
        }
        // seek returns the first cell >= the target in internal-key order.
        assert_eq!(block.seek(b"a", u64::MAX, CellKind::Delete), 0);
        assert_eq!(block.seek(b"a", 5, CellKind::Delete), 1, "a@5 -> a@2");
        assert_eq!(block.seek(b"b", 5, CellKind::Delete), 2, "tombstone first");
        assert_eq!(block.seek(b"b", 5, CellKind::Put), 3);
        assert_eq!(block.seek(b"c", 0, CellKind::Delete), 5, "past the end");
        assert_eq!(block.seek(b"zz", u64::MAX, CellKind::Delete), 5);
    }

    #[test]
    fn block_seek_agrees_with_linear_scan() {
        let cells = many_cells(300);
        let block = Block::from_cells(&cells);
        for probe in ["key000000", "key000137", "key000299", "key000300", "aaa"] {
            let want = cells
                .iter()
                .position(|c| c.key >= InternalKey::seek_to(Bytes::from(probe), u64::MAX))
                .unwrap_or(cells.len());
            assert_eq!(
                block.seek(probe.as_bytes(), u64::MAX, CellKind::Delete),
                want,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn block_decode_rejects_garbage() {
        assert!(Block::decode(vec![1, 2]).is_err(), "shorter than crc");
        let mut body = vec![9u8; 10]; // 9 is not a valid cell kind
        let crc = crate::util::crc32(&body);
        put_u32(&mut body, crc);
        assert!(Block::decode(body).is_err());
    }

    #[test]
    fn table_get_with_metrics_counts_cache_traffic() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, TableOptions::default()).unwrap();
        for c in many_cells(100) {
            b.add(&c).unwrap();
        }
        b.finish().unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let metrics = Arc::new(Metrics::new());
        let t = Table::open(&path, 7, Some(Arc::clone(&cache)))
            .unwrap()
            .with_metrics(Arc::clone(&metrics));
        t.get_versioned(b"key000010", u64::MAX).unwrap().unwrap();
        t.get_versioned(b"key000010", u64::MAX).unwrap().unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.block_cache_misses, 1);
        assert!(s.block_cache_hits >= 1);
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, TableOptions::default()).unwrap();
        for c in many_cells(100) {
            b.add(&c).unwrap();
        }
        b.finish().unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let t = Table::open(&path, 7, Some(Arc::clone(&cache))).unwrap();
        t.get_versioned(b"key000010", u64::MAX).unwrap().unwrap();
        let misses_after_first = cache.misses();
        t.get_versioned(b"key000010", u64::MAX).unwrap().unwrap();
        assert_eq!(cache.misses(), misses_after_first, "second read must hit cache");
        assert!(cache.hits() >= 1);
    }
}

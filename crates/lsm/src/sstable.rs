//! Immutable on-disk sorted table (the paper's *disk store* `C1..Cn`, HBase's
//! *HTable/HFile*).
//!
//! File layout:
//!
//! ```text
//! [data block]* [index block] [bloom block] [footer]
//! ```
//!
//! * **Data block** — cells in internal-key order, each encoded as
//!   `kind: u8, ts: varint, key: len-prefixed, value: len-prefixed`, followed
//!   by a CRC-32 of the block body.
//! * **Index block** — properties (cell count, min/max user key, max ts) plus
//!   one `(first internal key, offset, len)` entry per data block.
//! * **Bloom block** — bloom filter over user keys (see [`crate::bloom`]).
//! * **Footer** — fixed-size: offsets/lengths of index and bloom, a CRC of
//!   the footer body, and a magic number.

use crate::bloom::{Bloom, BloomBuilder};
use crate::cache::BlockCache;
use crate::types::{Cell, CellKind, InternalKey, LsmError, Result, Timestamp};
use crate::util::{
    crc32, get_len_prefixed, get_u32, get_u64, get_varint, put_len_prefixed, put_u32, put_u64,
    put_varint,
};
use bytes::Bytes;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: u64 = 0xD1FF_1DE8_5574_AB1E;
const FOOTER_LEN: usize = 8 * 4 + 4 + 8; // 4 u64 fields + crc + magic

/// Tuning knobs for table construction.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Target uncompressed size of one data block.
    pub block_size: usize,
    /// Bloom filter budget.
    pub bloom_bits_per_key: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self { block_size: 4096, bloom_bits_per_key: 10 }
    }
}

/// Summary of a finished table.
#[derive(Debug, Clone)]
pub struct TableProperties {
    /// Number of cells (versions) stored.
    pub cell_count: u64,
    /// Smallest user key.
    pub min_key: Bytes,
    /// Largest user key.
    pub max_key: Bytes,
    /// Largest cell timestamp (used by compaction GC heuristics).
    pub max_ts: Timestamp,
    /// Total file size in bytes.
    pub file_size: u64,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Streaming SSTable writer. Cells must be appended in strictly increasing
/// internal-key order.
pub struct TableBuilder {
    file: BufWriter<File>,
    path: PathBuf,
    opts: TableOptions,
    block: Vec<u8>,
    block_first_key: Option<InternalKey>,
    index: Vec<(InternalKey, u64, u32)>,
    bloom: BloomBuilder,
    last_key: Option<InternalKey>,
    offset: u64,
    cell_count: u64,
    min_key: Option<Bytes>,
    max_key: Option<Bytes>,
    max_ts: Timestamp,
}

impl TableBuilder {
    /// Begin writing a table at `path`.
    pub fn create(path: impl Into<PathBuf>, opts: TableOptions) -> Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(Self {
            file: BufWriter::new(file),
            path,
            bloom: BloomBuilder::new(opts.bloom_bits_per_key),
            opts,
            block: Vec::new(),
            block_first_key: None,
            index: Vec::new(),
            last_key: None,
            offset: 0,
            cell_count: 0,
            min_key: None,
            max_key: None,
            max_ts: 0,
        })
    }

    /// Append the next cell. Returns an error if ordering is violated.
    pub fn add(&mut self, cell: &Cell) -> Result<()> {
        if let Some(last) = &self.last_key {
            if *last >= cell.key {
                return Err(LsmError::InvalidOperation(format!(
                    "cells out of order: {:?} then {:?}",
                    last, cell.key
                )));
            }
        }
        if self.block_first_key.is_none() {
            self.block_first_key = Some(cell.key.clone());
        }
        self.block.push(cell.key.kind.to_u8());
        put_varint(&mut self.block, cell.key.ts);
        put_len_prefixed(&mut self.block, &cell.key.user_key);
        put_len_prefixed(&mut self.block, &cell.value);

        self.bloom.add(&cell.key.user_key);
        self.cell_count += 1;
        self.max_ts = self.max_ts.max(cell.key.ts);
        if self.min_key.is_none() {
            self.min_key = Some(cell.key.user_key.clone());
        }
        self.max_key = Some(cell.key.user_key.clone());
        self.last_key = Some(cell.key.clone());

        if self.block.len() >= self.opts.block_size {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let crc = crc32(&self.block);
        let mut body = std::mem::take(&mut self.block);
        put_u32(&mut body, crc);
        let first = self.block_first_key.take().expect("non-empty block has first key");
        self.index.push((first, self.offset, body.len() as u32));
        self.file.write_all(&body)?;
        self.offset += body.len() as u64;
        Ok(())
    }

    /// Flush remaining data, write index/bloom/footer, fsync, and return the
    /// table properties. The builder is consumed.
    pub fn finish(mut self) -> Result<TableProperties> {
        if self.cell_count == 0 {
            return Err(LsmError::InvalidOperation("empty table".into()));
        }
        self.finish_block()?;

        // Index block: properties header then per-block entries.
        let mut index = Vec::new();
        put_u64(&mut index, self.cell_count);
        put_len_prefixed(&mut index, self.min_key.as_ref().unwrap());
        put_len_prefixed(&mut index, self.max_key.as_ref().unwrap());
        put_u64(&mut index, self.max_ts);
        put_varint(&mut index, self.index.len() as u64);
        for (first, off, len) in &self.index {
            index.push(first.kind.to_u8());
            put_varint(&mut index, first.ts);
            put_len_prefixed(&mut index, &first.user_key);
            put_u64(&mut index, *off);
            put_u32(&mut index, *len);
        }
        let index_crc = crc32(&index);
        put_u32(&mut index, index_crc);
        let index_off = self.offset;
        self.file.write_all(&index)?;
        self.offset += index.len() as u64;

        let bloom = self.bloom.build().encode();
        let bloom_off = self.offset;
        self.file.write_all(&bloom)?;
        self.offset += bloom.len() as u64;

        let mut footer = Vec::with_capacity(FOOTER_LEN);
        put_u64(&mut footer, index_off);
        put_u64(&mut footer, index.len() as u64);
        put_u64(&mut footer, bloom_off);
        put_u64(&mut footer, bloom.len() as u64);
        let fcrc = crc32(&footer);
        put_u32(&mut footer, fcrc);
        put_u64(&mut footer, MAGIC);
        self.file.write_all(&footer)?;
        self.offset += footer.len() as u64;

        self.file.flush()?;
        self.file.get_ref().sync_data()?;

        Ok(TableProperties {
            cell_count: self.cell_count,
            min_key: self.min_key.unwrap(),
            max_key: self.max_key.unwrap(),
            max_ts: self.max_ts,
            file_size: self.offset,
        })
    }

    /// Path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cells added so far.
    pub fn cell_count(&self) -> u64 {
        self.cell_count
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct IndexEntry {
    first: InternalKey,
    offset: u64,
    len: u32,
}

/// Random-access reader over a finished table. Cheap to clone via `Arc`.
pub struct Table {
    file: File,
    path: PathBuf,
    /// Caller-supplied id (the engine's file number, used for manifests).
    id: u64,
    /// Globally unique block-cache namespace. File numbers restart per
    /// engine directory, and a block cache may be shared across many
    /// engines (HBase shares one per region server), so cache keys must
    /// not be derived from the file number.
    cache_ns: u64,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    props: TableProperties,
    cache: Option<Arc<BlockCache>>,
}

/// Source of globally unique cache namespaces.
static NEXT_CACHE_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("path", &self.path)
            .field("id", &self.id)
            .field("blocks", &self.index.len())
            .field("cells", &self.props.cell_count)
            .finish()
    }
}

impl Table {
    /// Open a table file, validating footer and index checksums.
    pub fn open(
        path: impl Into<PathBuf>,
        id: u64,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Self> {
        let path = path.into();
        let file = File::open(&path)?;
        let file_size = file.metadata()?.len();
        let corrupt =
            |m: String| LsmError::Corruption(format!("{}: {m}", path.display()));
        if (file_size as usize) < FOOTER_LEN {
            return Err(corrupt("file shorter than footer".into()));
        }
        let mut footer = vec![0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, file_size - FOOTER_LEN as u64)?;
        let magic = get_u64(&footer, FOOTER_LEN - 8).unwrap();
        if magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:#x}")));
        }
        let fcrc = get_u32(&footer, 32).unwrap();
        if crc32(&footer[..32]) != fcrc {
            return Err(corrupt("footer checksum mismatch".into()));
        }
        let index_off = get_u64(&footer, 0).unwrap();
        let index_len = get_u64(&footer, 8).unwrap();
        let bloom_off = get_u64(&footer, 16).unwrap();
        let bloom_len = get_u64(&footer, 24).unwrap();
        if index_off + index_len > file_size || bloom_off + bloom_len > file_size {
            return Err(corrupt("index/bloom extent out of bounds".into()));
        }

        let mut index_buf = vec![0u8; index_len as usize];
        file.read_exact_at(&mut index_buf, index_off)?;
        if index_buf.len() < 4 {
            return Err(corrupt("index block too small".into()));
        }
        let body_len = index_buf.len() - 4;
        let icrc = get_u32(&index_buf, body_len).unwrap();
        if crc32(&index_buf[..body_len]) != icrc {
            return Err(corrupt("index checksum mismatch".into()));
        }
        let body = &index_buf[..body_len];
        let mut off = 0usize;
        let cell_count = get_u64(body, off).ok_or_else(|| corrupt("short props".into()))?;
        off += 8;
        let (min_key, n) =
            get_len_prefixed(&body[off..]).ok_or_else(|| corrupt("short min key".into()))?;
        let min_key = Bytes::copy_from_slice(min_key);
        off += n;
        let (max_key, n) =
            get_len_prefixed(&body[off..]).ok_or_else(|| corrupt("short max key".into()))?;
        let max_key = Bytes::copy_from_slice(max_key);
        off += n;
        let max_ts = get_u64(body, off).ok_or_else(|| corrupt("short max ts".into()))?;
        off += 8;
        let (nblocks, n) =
            get_varint(&body[off..]).ok_or_else(|| corrupt("short block count".into()))?;
        off += n;
        let mut index = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            let kind = CellKind::from_u8(body[off])
                .ok_or_else(|| corrupt("bad index kind".into()))?;
            off += 1;
            let (ts, n) =
                get_varint(&body[off..]).ok_or_else(|| corrupt("short index ts".into()))?;
            off += n;
            let (ukey, n) = get_len_prefixed(&body[off..])
                .ok_or_else(|| corrupt("short index key".into()))?;
            let ukey = Bytes::copy_from_slice(ukey);
            off += n;
            let boff = get_u64(body, off).ok_or_else(|| corrupt("short index off".into()))?;
            off += 8;
            let blen = get_u32(body, off).ok_or_else(|| corrupt("short index len".into()))?;
            off += 4;
            index.push(IndexEntry {
                first: InternalKey { user_key: ukey, ts, kind },
                offset: boff,
                len: blen,
            });
        }

        let mut bloom_buf = vec![0u8; bloom_len as usize];
        file.read_exact_at(&mut bloom_buf, bloom_off)?;
        let bloom =
            Bloom::decode(&bloom_buf).ok_or_else(|| corrupt("bad bloom block".into()))?;

        Ok(Self {
            file,
            path,
            id,
            cache_ns: NEXT_CACHE_NS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            index,
            bloom,
            props: TableProperties { cell_count, min_key, max_key, max_ts, file_size },
            cache,
        })
    }

    /// Table properties recorded at build time.
    pub fn properties(&self) -> &TableProperties {
        &self.props
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Unique id (block-cache namespace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True if the bloom filter rules out `user_key`.
    pub fn definitely_absent(&self, user_key: &[u8]) -> bool {
        !self.bloom.may_contain(user_key)
    }

    /// True if `user_key` is outside this table's `[min, max]` key range.
    pub fn outside_key_range(&self, user_key: &[u8]) -> bool {
        user_key < self.props.min_key.as_ref() || user_key > self.props.max_key.as_ref()
    }

    fn read_block(&self, idx: usize) -> Result<Arc<Vec<Cell>>> {
        let entry = &self.index[idx];
        if let Some(cache) = &self.cache {
            if let Some(cells) = cache.get(self.cache_ns, entry.offset) {
                return Ok(cells);
            }
        }
        let mut buf = vec![0u8; entry.len as usize];
        self.file.read_exact_at(&mut buf, entry.offset)?;
        let corrupt =
            |m: &str| LsmError::Corruption(format!("{}: block: {m}", self.path.display()));
        if buf.len() < 4 {
            return Err(corrupt("short block"));
        }
        let body_len = buf.len() - 4;
        let crc = get_u32(&buf, body_len).unwrap();
        if crc32(&buf[..body_len]) != crc {
            return Err(corrupt("checksum mismatch"));
        }
        let mut cells = Vec::new();
        let mut off = 0usize;
        let body = &buf[..body_len];
        while off < body.len() {
            let kind =
                CellKind::from_u8(body[off]).ok_or_else(|| corrupt("bad cell kind"))?;
            off += 1;
            let (ts, n) = get_varint(&body[off..]).ok_or_else(|| corrupt("short ts"))?;
            off += n;
            let (ukey, n) =
                get_len_prefixed(&body[off..]).ok_or_else(|| corrupt("short key"))?;
            let ukey = Bytes::copy_from_slice(ukey);
            off += n;
            let (val, n) =
                get_len_prefixed(&body[off..]).ok_or_else(|| corrupt("short value"))?;
            let val = Bytes::copy_from_slice(val);
            off += n;
            cells.push(Cell {
                key: InternalKey { user_key: ukey, ts, kind },
                value: val,
            });
        }
        let cells = Arc::new(cells);
        if let Some(cache) = &self.cache {
            cache.insert(self.cache_ns, entry.offset, Arc::clone(&cells));
        }
        Ok(cells)
    }

    /// Index of the block that could contain `target`, i.e. the last block
    /// whose first key is `<= target` (or block 0).
    fn block_for(&self, target: &InternalKey) -> usize {
        // partition_point: number of blocks with first <= target.
        let pp = self.index.partition_point(|e| e.first <= *target);
        pp.saturating_sub(1)
    }

    /// Latest cell for `user_key` visible at `ts`, tombstones included.
    pub fn get_versioned(&self, user_key: &[u8], ts: Timestamp) -> Result<Option<Cell>> {
        if self.outside_key_range(user_key) || self.definitely_absent(user_key) {
            return Ok(None);
        }
        let seek = InternalKey::seek_to(Bytes::copy_from_slice(user_key), ts);
        let mut idx = self.block_for(&seek);
        // The first cell >= seek may be at the start of the following block.
        loop {
            let cells = self.read_block(idx)?;
            if let Some(pos) = cells.iter().position(|c| c.key >= seek) {
                let c = &cells[pos];
                if c.key.user_key.as_ref() == user_key {
                    return Ok(Some(c.clone()));
                }
                return Ok(None);
            }
            idx += 1;
            if idx >= self.index.len() {
                return Ok(None);
            }
        }
    }

    /// Iterator over all cells from the first internal key `>= seek`
    /// (or from the beginning when `seek` is `None`).
    pub fn iter_from(&self, seek: Option<&InternalKey>) -> TableIter<'_> {
        let (block, pos) = match seek {
            None => (0, 0),
            Some(k) => (self.block_for(k), 0),
        };
        let mut it = TableIter {
            table: self,
            block,
            cells: None,
            pos,
            error: None,
        };
        if let Some(k) = seek {
            it.skip_to(k);
        }
        it
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }
}

/// Forward iterator over a table's cells in internal-key order.
pub struct TableIter<'a> {
    table: &'a Table,
    block: usize,
    cells: Option<Arc<Vec<Cell>>>,
    pos: usize,
    error: Option<LsmError>,
}

impl<'a> TableIter<'a> {
    fn load_block(&mut self) -> bool {
        while self.cells.is_none() {
            if self.block >= self.table.index.len() {
                return false;
            }
            match self.table.read_block(self.block) {
                Ok(c) => {
                    self.cells = Some(c);
                    self.pos = 0;
                }
                Err(e) => {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        true
    }

    fn skip_to(&mut self, seek: &InternalKey) {
        loop {
            if !self.load_block() {
                return;
            }
            let cells = self.cells.as_ref().unwrap();
            if let Some(pos) = cells.iter().position(|c| c.key >= *seek) {
                self.pos = pos;
                return;
            }
            self.cells = None;
            self.block += 1;
        }
    }

    /// An I/O or corruption error encountered during iteration, if any.
    pub fn take_error(&mut self) -> Option<LsmError> {
        self.error.take()
    }
}

impl<'a> Iterator for TableIter<'a> {
    type Item = Cell;

    fn next(&mut self) -> Option<Cell> {
        loop {
            if !self.load_block() {
                return None;
            }
            let cells = self.cells.as_ref().unwrap();
            if self.pos < cells.len() {
                let c = cells[self.pos].clone();
                self.pos += 1;
                return Some(c);
            }
            self.cells = None;
            self.block += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir_lite::TempDir;

    fn build_table(dir: &TempDir, cells: &[Cell], opts: TableOptions) -> Table {
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, opts).unwrap();
        for c in cells {
            b.add(c).unwrap();
        }
        b.finish().unwrap();
        Table::open(&path, 1, None).unwrap()
    }

    fn many_cells(n: usize) -> Vec<Cell> {
        (0..n).map(|i| Cell::put(format!("key{i:06}"), 100, format!("value-{i}"))).collect()
    }

    #[test]
    fn build_and_get_roundtrip() {
        let dir = TempDir::new("sst").unwrap();
        let t = build_table(&dir, &many_cells(1000), TableOptions::default());
        assert_eq!(t.properties().cell_count, 1000);
        assert!(t.block_count() > 1, "should span multiple blocks");
        for i in (0..1000).step_by(37) {
            let c = t.get_versioned(format!("key{i:06}").as_bytes(), u64::MAX).unwrap().unwrap();
            assert_eq!(c.value, Bytes::from(format!("value-{i}")));
        }
        assert!(t.get_versioned(b"missing", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn versioned_get_respects_snapshot() {
        let dir = TempDir::new("sst").unwrap();
        let cells = vec![
            Cell::put("k", 30, "v30"),
            Cell::put("k", 20, "v20"),
            Cell::put("k", 10, "v10"),
        ];
        let t = build_table(&dir, &cells, TableOptions::default());
        assert_eq!(t.get_versioned(b"k", 35).unwrap().unwrap().value, Bytes::from("v30"));
        assert_eq!(t.get_versioned(b"k", 29).unwrap().unwrap().value, Bytes::from("v20"));
        assert_eq!(t.get_versioned(b"k", 10).unwrap().unwrap().value, Bytes::from("v10"));
        assert!(t.get_versioned(b"k", 9).unwrap().is_none());
    }

    #[test]
    fn tombstones_are_returned() {
        let dir = TempDir::new("sst").unwrap();
        let cells = vec![Cell::delete("k", 20), Cell::put("k", 10, "v")];
        let t = build_table(&dir, &cells, TableOptions::default());
        let c = t.get_versioned(b"k", 25).unwrap().unwrap();
        assert!(c.is_tombstone());
        assert_eq!(c.key.ts, 20);
    }

    #[test]
    fn get_crossing_block_boundary() {
        // Tiny blocks force nearly every key into its own block; the seek
        // target often lands at a block whose cells are all smaller.
        let dir = TempDir::new("sst").unwrap();
        let t = build_table(
            &dir,
            &many_cells(200),
            TableOptions { block_size: 16, bloom_bits_per_key: 10 },
        );
        assert!(t.block_count() >= 100);
        for i in 0..200 {
            let c = t.get_versioned(format!("key{i:06}").as_bytes(), u64::MAX).unwrap();
            assert!(c.is_some(), "key{i:06} must be found across block boundaries");
        }
    }

    #[test]
    fn iter_returns_everything_in_order() {
        let dir = TempDir::new("sst").unwrap();
        let cells = many_cells(500);
        let t = build_table(&dir, &cells, TableOptions { block_size: 256, bloom_bits_per_key: 10 });
        let got: Vec<Cell> = t.iter_from(None).collect();
        assert_eq!(got, cells);
    }

    #[test]
    fn iter_from_seek_position() {
        let dir = TempDir::new("sst").unwrap();
        let cells = many_cells(100);
        let t = build_table(&dir, &cells, TableOptions { block_size: 64, bloom_bits_per_key: 10 });
        let seek = InternalKey::seek_to(Bytes::from("key000050"), u64::MAX);
        let got: Vec<Cell> = t.iter_from(Some(&seek)).collect();
        assert_eq!(got.len(), 50);
        assert_eq!(got[0].key.user_key, Bytes::from("key000050"));
    }

    #[test]
    fn out_of_order_add_is_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let mut b = TableBuilder::create(dir.path().join("t.sst"), TableOptions::default()).unwrap();
        b.add(&Cell::put("b", 5, "x")).unwrap();
        assert!(b.add(&Cell::put("a", 5, "y")).is_err());
        // Same key, newer timestamp sorts *earlier* — also rejected:
        assert!(b.add(&Cell::put("b", 9, "z")).is_err());
        // Same key, older timestamp is fine:
        b.add(&Cell::put("b", 3, "w")).unwrap();
    }

    #[test]
    fn empty_table_is_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let b = TableBuilder::create(dir.path().join("t.sst"), TableOptions::default()).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn properties_reflect_contents() {
        let dir = TempDir::new("sst").unwrap();
        let cells =
            vec![Cell::put("aaa", 7, "1"), Cell::put("mmm", 99, "2"), Cell::put("zzz", 12, "3")];
        let t = build_table(&dir, &cells, TableOptions::default());
        let p = t.properties();
        assert_eq!(p.min_key, Bytes::from("aaa"));
        assert_eq!(p.max_key, Bytes::from("zzz"));
        assert_eq!(p.max_ts, 99);
        assert_eq!(p.cell_count, 3);
        assert!(p.file_size > 0);
        assert!(t.outside_key_range(b"zzzz"));
        assert!(t.outside_key_range(b"a"));
        assert!(!t.outside_key_range(b"nnn"));
    }

    #[test]
    fn corrupt_footer_magic_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, TableOptions::default()).unwrap();
        b.add(&Cell::put("k", 1, "v")).unwrap();
        b.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Table::open(&path, 1, None), Err(LsmError::Corruption(_))));
    }

    #[test]
    fn corrupt_data_block_detected_on_read() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, TableOptions::default()).unwrap();
        for c in many_cells(50) {
            b.add(&c).unwrap();
        }
        b.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // inside first data block
        std::fs::write(&path, &bytes).unwrap();
        let t = Table::open(&path, 1, None).unwrap();
        let err = t.get_versioned(b"key000000", u64::MAX).unwrap_err();
        assert!(matches!(err, LsmError::Corruption(_)));
    }

    #[test]
    fn truncated_file_rejected() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(Table::open(&path, 1, None), Err(LsmError::Corruption(_))));
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, TableOptions::default()).unwrap();
        for c in many_cells(100) {
            b.add(&c).unwrap();
        }
        b.finish().unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let t = Table::open(&path, 7, Some(Arc::clone(&cache))).unwrap();
        t.get_versioned(b"key000010", u64::MAX).unwrap().unwrap();
        let misses_after_first = cache.misses();
        t.get_versioned(b"key000010", u64::MAX).unwrap().unwrap();
        assert_eq!(cache.misses(), misses_after_first, "second read must hit cache");
        assert!(cache.hits() >= 1);
    }
}

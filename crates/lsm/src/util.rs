//! Low-level encoding helpers: CRC-32 checksums and varints.
//!
//! Implemented locally because the workspace deliberately limits external
//! dependencies (see DESIGN.md §5).

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32: feed `state` from a previous call (start with
/// `0xFFFF_FFFF`, finish by XOR-ing with `0xFFFF_FFFF`).
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let table = crc_table();
    for &b in data {
        let idx = ((state ^ b as u32) & 0xFF) as usize;
        state = (state >> 8) ^ table[idx];
    }
    state
}

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// Append a LEB128 varint encoding of `v` to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint from the front of `buf`, returning the value and
/// the number of bytes consumed, or `None` if the buffer is truncated or the
/// encoding overflows 64 bits.
pub fn get_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        let part = (byte & 0x7F) as u64;
        // Reject encodings whose high bits would be shifted out.
        if shift == 63 && part > 1 {
            return None;
        }
        v |= part << shift;
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Append a length-prefixed byte slice (varint length then bytes).
pub fn put_len_prefixed(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Decode a length-prefixed slice from the front of `buf`, returning the
/// slice and bytes consumed.
pub fn get_len_prefixed(buf: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint(buf)?;
    let len = len as usize;
    if buf.len() < n + len {
        return None;
    }
    Some((&buf[n..n + len], n + len))
}

/// Fixed-width little-endian u32 append.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Fixed-width little-endian u64 append.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian u32 at `off`.
pub fn get_u32(buf: &[u8], off: usize) -> Option<u32> {
    buf.get(off..off + 4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
}

/// Read a little-endian u64 at `off`.
pub fn get_u64(buf: &[u8], off: usize) -> Option<u64> {
    buf.get(off..off + 8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
}

/// Fast non-cryptographic hasher (the multiply-rotate scheme rustc uses for
/// its interner maps). The default `SipHash` costs more than the bucket
/// probe it guards on short keys; memtable point lookups are hot enough for
/// that to show up, and none of our hash maps are exposed to untrusted
/// key-flooding.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// `BuildHasher` producing [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_le_bytes(tail) | ((bytes.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data = b"hello, log-structured world";
        let oneshot = crc32(data);
        let mut st = 0xFFFF_FFFF;
        st = crc32_update(st, &data[..7]);
        st = crc32_update(st, &data[7..]);
        assert_eq!(st ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (got, n) = get_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_truncated_is_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        buf.pop();
        assert!(get_varint(&buf).is_none());
        assert!(get_varint(&[]).is_none());
    }

    #[test]
    fn varint_overflow_is_none() {
        // 11 continuation bytes would exceed 64 bits.
        let buf = [0xFFu8; 11];
        assert!(get_varint(&buf).is_none());
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_len_prefixed(&mut buf, b"abc");
        put_len_prefixed(&mut buf, b"");
        let (a, n) = get_len_prefixed(&buf).unwrap();
        assert_eq!(a, b"abc");
        let (b, m) = get_len_prefixed(&buf[n..]).unwrap();
        assert_eq!(b, b"");
        assert_eq!(n + m, buf.len());
    }

    #[test]
    fn len_prefixed_truncated_is_none() {
        let mut buf = Vec::new();
        put_len_prefixed(&mut buf, b"abcdef");
        assert!(get_len_prefixed(&buf[..3]).is_none());
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        use std::hash::{Hash, Hasher};
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            b.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(b"user00000001"), h(b"user00000001"));
        assert_ne!(h(b"user00000001"), h(b"user00000002"));
        assert_ne!(h(b""), h(b"\0"));
        // Different lengths of zero bytes must not collide.
        assert_ne!(h(b"\0\0"), h(b"\0\0\0"));
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u32(&buf, 0), Some(0xDEAD_BEEF));
        assert_eq!(get_u64(&buf, 4), Some(0x0123_4567_89AB_CDEF));
        assert_eq!(get_u32(&buf, 9), None);
    }
}

//! Multi-threaded stress test of the group-commit write path: concurrent
//! durable writers (single puts and batched puts) must keep completing —
//! and every *acknowledged* put must survive a crash — while flushes,
//! a compaction and validating readers run against the same tree. This is
//! the acceptance test for WAL group commit: acks are only issued after a
//! leader's fsync covers the writer's staged record, so a post-crash WAL
//! replay must reproduce every acked cell exactly.

use bytes::Bytes;
use diff_index_lsm::{LsmOptions, LsmTree};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tempdir_lite::TempDir;

const WRITERS: usize = 8;
/// Must be a multiple of `BATCH` so batched writers ack every op.
const OPS_PER_WRITER: u64 = 320;
/// Writers with an odd id use `put_batch` in chunks of this size.
const BATCH: u64 = 8;

fn key(writer: usize, op: u64) -> Bytes {
    Bytes::from(format!("w{writer}-{op:06}"))
}

fn value(writer: usize, op: u64) -> Bytes {
    Bytes::from(format!("v-{writer}-{op:06}"))
}

fn ts(writer: usize, op: u64) -> u64 {
    writer as u64 * OPS_PER_WRITER + op + 1
}

fn durable_opts() -> LsmOptions {
    LsmOptions {
        wal_sync: true,
        auto_flush: false,
        auto_compact: false,
        compaction_trigger: 0,
        memtable_flush_bytes: 64 * 1024 * 1024,
        ..LsmOptions::default()
    }
}

/// Abort the whole process if the test deadlocks instead of hanging CI.
fn spawn_watchdog(finished: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        for _ in 0..240 {
            std::thread::sleep(Duration::from_millis(500));
            if finished.load(Ordering::Acquire) {
                return;
            }
        }
        eprintln!("concurrent_write_stress: watchdog fired after 120 s — deadlock?");
        std::process::exit(101);
    });
}

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

#[test]
fn acked_puts_survive_crash_under_concurrent_maintenance() {
    let finished = Arc::new(AtomicBool::new(false));
    spawn_watchdog(Arc::clone(&finished));

    let dir = TempDir::new("write-stress").unwrap();
    let db = Arc::new(LsmTree::open(dir.path().join("db"), durable_opts()).unwrap());

    // acked[w] = number of operations writer w has been acked for; anything
    // below this mark must be durable from the moment it is published.
    let acked: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(0)).collect());
    let writers_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Writers: even ids put one row at a time, odd ids use put_batch —
        // both only publish an op as acked after the call returns, i.e.
        // after the group-commit fsync covering it.
        for w in 0..WRITERS {
            let db = Arc::clone(&db);
            let acked = Arc::clone(&acked);
            scope.spawn(move || {
                if w % 2 == 0 {
                    for op in 0..OPS_PER_WRITER {
                        db.put(key(w, op), ts(w, op), value(w, op)).unwrap();
                        acked[w].store(op + 1, Ordering::Release);
                    }
                } else {
                    for chunk in 0..(OPS_PER_WRITER / BATCH) {
                        let entries: Vec<(Bytes, u64, Bytes)> = (0..BATCH)
                            .map(|i| {
                                let op = chunk * BATCH + i;
                                (key(w, op), ts(w, op), value(w, op))
                            })
                            .collect();
                        db.put_batch(&entries).unwrap();
                        acked[w].store((chunk + 1) * BATCH, Ordering::Release);
                    }
                }
            });
        }

        // Maintenance: periodic flushes plus one compaction once at least
        // two SSTables exist, racing the writers.
        {
            let db = Arc::clone(&db);
            let done = Arc::clone(&writers_done);
            scope.spawn(move || {
                let mut flushes = 0;
                while !done.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(10));
                    if db.memtable_cells() > 0 {
                        db.flush().unwrap();
                        flushes += 1;
                    }
                    if flushes == 2 {
                        db.compact().unwrap();
                    }
                }
            });
        }

        // Readers: any op at or below a writer's published ack mark must be
        // visible with the exact value and timestamp it was acked with.
        for r in 0..2 {
            let db = Arc::clone(&db);
            let acked = Arc::clone(&acked);
            let done = Arc::clone(&writers_done);
            scope.spawn(move || {
                let mut seed = 0xC0FFEE ^ r as u64;
                while !done.load(Ordering::Acquire) {
                    let w = (lcg(&mut seed) as usize) % WRITERS;
                    let hi = acked[w].load(Ordering::Acquire);
                    if hi == 0 {
                        continue;
                    }
                    let op = lcg(&mut seed) % hi;
                    let got = db
                        .get_latest(&key(w, op))
                        .unwrap()
                        .unwrap_or_else(|| panic!("acked put w{w}/{op} not visible"));
                    assert_eq!(got.value, value(w, op), "wrong value for w{w}/{op}");
                    assert_eq!(got.ts, ts(w, op), "wrong ts for w{w}/{op}");
                }
            });
        }

        // Writer-join sentinel: flip `writers_done` when every writer has
        // published its final ack.
        {
            let acked = Arc::clone(&acked);
            let done = Arc::clone(&writers_done);
            scope.spawn(move || loop {
                if acked.iter().all(|a| a.load(Ordering::Acquire) == OPS_PER_WRITER) {
                    done.store(true, Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            });
        }
    });

    // Crash: memtable contents vanish, WAL and SSTables stay. Some acked
    // cells live only in the WAL tail at this point.
    let Ok(db) = Arc::try_unwrap(db) else { panic!("all threads joined, no Arc clones left") };
    assert!(db.metrics().snapshot().wal_fsyncs >= 1);
    db.simulate_crash();

    // Recovery: WAL replay must restore every acked put bit-for-bit.
    let db = LsmTree::open(dir.path().join("db"), durable_opts()).unwrap();
    for w in 0..WRITERS {
        for op in 0..OPS_PER_WRITER {
            let got = db
                .get_latest(&key(w, op))
                .unwrap()
                .unwrap_or_else(|| panic!("acked put w{w}/{op} lost in crash"));
            assert_eq!(got.value, value(w, op), "w{w}/{op} value corrupted by replay");
            assert_eq!(got.ts, ts(w, op), "w{w}/{op} ts corrupted by replay");
        }
    }
    finished.store(true, Ordering::Release);
}

//! Multi-threaded stress test of the snapshot read path: point gets and
//! scans must keep completing — with correct results — while a slow flush
//! and a compaction run in the background. This is the acceptance test for
//! the lock-free read path: readers work off atomically-swapped immutable
//! snapshots, so neither the memtable freeze, the SSTable build, nor the
//! table-set swap ever blocks them.

use bytes::Bytes;
use diff_index_lsm::{BlockCache, LsmOptions, LsmTree};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tempdir_lite::TempDir;

const KEYS: u64 = 40_000;
const READERS: usize = 4;

fn key(id: u64) -> Bytes {
    Bytes::from(format!("user{id:08}"))
}

fn value(gen: u64, id: u64) -> Bytes {
    Bytes::from(format!("value-{gen}-{id:08}"))
}

/// Timestamp for generation `gen` of key `id`; strictly increasing in `gen`.
fn ts(gen: u64, id: u64) -> u64 {
    gen * KEYS + id + 1
}

/// Cheap deterministic per-thread RNG (the readers must not share state).
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

/// Abort the whole process if the test deadlocks instead of hanging CI.
fn spawn_watchdog(finished: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        for _ in 0..240 {
            std::thread::sleep(Duration::from_millis(500));
            if finished.load(Ordering::Acquire) {
                return;
            }
        }
        eprintln!("concurrent_stress: watchdog fired after 120 s — deadlock?");
        std::process::exit(101);
    });
}

/// Expected newest value of `id` after generations 0..=2 everywhere and
/// generation 3 on ids divisible by 4.
fn newest(id: u64, gen3_applied: bool) -> Bytes {
    if gen3_applied && id.is_multiple_of(4) {
        value(3, id)
    } else {
        value(2, id)
    }
}

/// One reader loop: random gets plus periodic short scans, all validated,
/// until `done` flips. Returns how many operations completed strictly
/// before `done` was observed set.
fn reader_loop(db: &LsmTree, done: &AtomicBool, seed: u64, gen3_applied: bool) -> u64 {
    let mut seed = seed;
    let mut before_done = 0u64;
    let mut ops = 0u64;
    loop {
        let id = lcg(&mut seed) % KEYS;
        let got = db.get_latest(&key(id)).unwrap().expect("key must be visible");
        assert_eq!(
            got.value,
            newest(id, gen3_applied),
            "get of id {id} returned a wrong/partial view mid-maintenance"
        );
        ops += 1;
        if ops.is_multiple_of(64) {
            let start = lcg(&mut seed) % (KEYS - 60);
            let rows = db.scan(&key(start), None, u64::MAX, 50).unwrap();
            assert_eq!(rows.len(), 50, "scan starting at {start} lost rows");
            for (i, (k, v)) in rows.iter().enumerate() {
                let id = start + i as u64;
                assert_eq!(k, &key(id), "scan row {i} out of order");
                assert_eq!(v.value, newest(id, gen3_applied), "scan saw stale id {id}");
            }
        }
        if done.load(Ordering::Acquire) {
            return before_done;
        }
        before_done += 1;
    }
}

#[test]
fn reads_complete_while_flush_and_compaction_run() {
    let finished = Arc::new(AtomicBool::new(false));
    spawn_watchdog(Arc::clone(&finished));

    let dir = TempDir::new("stress").unwrap();
    let opts = LsmOptions {
        block_cache: Some(Arc::new(BlockCache::new(64 * 1024 * 1024))),
        auto_flush: false,
        auto_compact: false,
        compaction_trigger: 0,
        wal_sync: false,
        ..LsmOptions::default()
    };
    let db = Arc::new(LsmTree::open(dir.path().join("db"), opts).unwrap());

    // Generations 0 and 1: two full SSTables of older versions, so reads
    // traverse real tables while maintenance churns.
    for gen in 0..2 {
        for id in 0..KEYS {
            db.put(key(id), ts(gen, id), value(gen, id)).unwrap();
        }
        db.flush().unwrap();
    }
    // Generation 2: a large live memtable (KEYS cells) that makes the
    // upcoming flush slow enough to observe reads landing inside it.
    for id in 0..KEYS {
        db.put(key(id), ts(2, id), value(2, id)).unwrap();
    }
    assert!(db.memtable_cells() >= KEYS as usize);

    // -- Phase 1: concurrent reads during a slow flush ----------------------
    let flush_started = Arc::new(AtomicBool::new(false));
    let flush_done = Arc::new(AtomicBool::new(false));
    {
        let started = Arc::clone(&flush_started);
        db.add_pre_flush_hook(Box::new(move || {
            started.store(true, Ordering::Release);
        }));
    }
    let flusher = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&flush_done);
        std::thread::spawn(move || {
            db.flush().unwrap();
            done.store(true, Ordering::Release);
        })
    };
    let completed_during_flush = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|i| {
            let db = Arc::clone(&db);
            let started = Arc::clone(&flush_started);
            let done = Arc::clone(&flush_done);
            let counter = Arc::clone(&completed_during_flush);
            std::thread::spawn(move || {
                while !started.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                let n = reader_loop(&db, &done, 0x5EED + i as u64, false);
                counter.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();
    flusher.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        completed_during_flush.load(Ordering::Relaxed) >= 10,
        "expected at least 10 reads to complete strictly before the flush \
         finished, got {} — flush is blocking readers",
        completed_during_flush.load(Ordering::Relaxed)
    );
    assert_eq!(db.memtable_cells(), 0, "flush must have drained the memtable");

    // -- Phase 2: concurrent reads during compaction ------------------------
    // A fourth generation on 25% of keys, flushed, gives compaction real
    // merge work across four tables.
    for id in (0..KEYS).step_by(4) {
        db.put(key(id), ts(3, id), value(3, id)).unwrap();
    }
    db.flush().unwrap();
    assert!(db.table_count() >= 4);

    let compact_done = Arc::new(AtomicBool::new(false));
    let completed_during_compact = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|i| {
            let db = Arc::clone(&db);
            let done = Arc::clone(&compact_done);
            let counter = Arc::clone(&completed_during_compact);
            std::thread::spawn(move || {
                let n = reader_loop(&db, &done, 0xFACE + i as u64, true);
                counter.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();
    let compactor = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&compact_done);
        std::thread::spawn(move || {
            db.compact().unwrap();
            done.store(true, Ordering::Release);
        })
    };
    compactor.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        completed_during_compact.load(Ordering::Relaxed) >= 10,
        "expected at least 10 reads to complete strictly before compaction \
         finished, got {} — compaction is blocking readers",
        completed_during_compact.load(Ordering::Relaxed)
    );

    // -- Final consistency sweep -------------------------------------------
    let rows = db.scan(&key(0), None, u64::MAX, KEYS as usize).unwrap();
    assert_eq!(rows.len(), KEYS as usize);
    for (i, (k, v)) in rows.iter().enumerate() {
        let id = i as u64;
        assert_eq!(k, &key(id));
        assert_eq!(v.value, newest(id, true));
    }
    finished.store(true, Ordering::Release);
}

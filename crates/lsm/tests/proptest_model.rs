//! Property-based model checking of the LSM engine: under arbitrary
//! interleavings of puts, deletes, flushes, compactions and crash/reopen
//! cycles, the engine must behave exactly like a sorted map of
//! (key → newest visible version), for both point reads and scans, at the
//! latest snapshot and at historical snapshots.

use bytes::Bytes;
use diff_index_lsm::{BlockCache, LsmOptions, LsmTree, TableOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tempdir_lite::TempDir;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, value: u16 },
    Delete { key: u8 },
    Flush,
    Compact,
    CrashReopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<u16>()).prop_map(|(key, value)| Op::Put { key: key % 24, value }),
        2 => any::<u8>().prop_map(|key| Op::Delete { key: key % 24 }),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::CrashReopen),
    ]
}

fn opts() -> LsmOptions {
    LsmOptions {
        memtable_flush_bytes: 512, // tiny: frequent auto-flushes
        table: TableOptions { block_size: 128, bloom_bits_per_key: 10 },
        wal_sync: false,
        block_cache: Some(Arc::new(BlockCache::new(64 * 1024))),
        compaction_trigger: 3,
        version_retention: u64::MAX, // keep all versions: snapshots stay valid
        auto_flush: true,
        auto_compact: true,
    }
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key{k:03}").into_bytes()
}

/// Model: per key, all versions (ts → Option<value>; None = tombstone).
type Model = BTreeMap<Vec<u8>, BTreeMap<u64, Option<Bytes>>>;

fn model_get(model: &Model, key: &[u8], ts: u64) -> Option<Bytes> {
    model
        .get(key)?
        .range(..=ts)
        .next_back()
        .and_then(|(_, v)| v.clone())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let dir = TempDir::new("lsm-prop").unwrap();
        let mut db = LsmTree::open(dir.path(), opts()).unwrap();
        let mut model: Model = BTreeMap::new();
        let mut ts = 100u64;
        let mut snapshots: Vec<u64> = Vec::new();

        for op in &ops {
            match op {
                Op::Put { key, value } => {
                    ts += 1;
                    let k = key_bytes(*key);
                    let v = Bytes::from(format!("v{value}"));
                    db.put(k.clone(), ts, v.clone()).unwrap();
                    model.entry(k).or_default().insert(ts, Some(v));
                    if ts.is_multiple_of(7) {
                        snapshots.push(ts);
                    }
                }
                Op::Delete { key } => {
                    ts += 1;
                    let k = key_bytes(*key);
                    db.delete(k.clone(), ts).unwrap();
                    model.entry(k).or_default().insert(ts, None);
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => db.compact().unwrap(),
                Op::CrashReopen => {
                    db.simulate_crash();
                    db = LsmTree::open(dir.path(), opts()).unwrap();
                }
            }
        }

        // Point reads at the latest snapshot match the model.
        for k in 0..24u8 {
            let key = key_bytes(k);
            let got = db.get(&key, u64::MAX).unwrap().map(|v| v.value);
            let want = model_get(&model, &key, u64::MAX);
            prop_assert_eq!(got, want, "latest get({:?})", String::from_utf8_lossy(&key));
        }

        // Historical snapshot reads match too (multi-versioning).
        for &snap in snapshots.iter().take(5) {
            for k in 0..24u8 {
                let key = key_bytes(k);
                let got = db.get(&key, snap).unwrap().map(|v| v.value);
                let want = model_get(&model, &key, snap);
                prop_assert_eq!(got, want, "get({:?}, {})", String::from_utf8_lossy(&key), snap);
            }
        }

        // Full scan equals the model's visible view, in order.
        let scanned: Vec<(Bytes, Bytes)> = db
            .scan(b"", None, u64::MAX, usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, v.value))
            .collect();
        let expected: Vec<(Bytes, Bytes)> = model
            .iter()
            .filter_map(|(k, versions)| {
                model_get(&model, k, u64::MAX).map(|v| (Bytes::from(k.clone()), v))
                    .or({ let _ = versions; None })
            })
            .collect();
        prop_assert_eq!(scanned, expected, "full scan");

        // Bounded scan with a limit is a prefix of the full scan.
        let bounded = db.scan(b"key005", Some(b"key015"), u64::MAX, 4).unwrap();
        let expected_bounded: Vec<(Bytes, Bytes)> = model
            .range(key_bytes(5)..key_bytes(15))
            .filter_map(|(k, _)| model_get(&model, k, u64::MAX).map(|v| (Bytes::from(k.clone()), v)))
            .take(4)
            .collect();
        let got_bounded: Vec<(Bytes, Bytes)> =
            bounded.into_iter().map(|(k, v)| (k, v.value)).collect();
        prop_assert_eq!(got_bounded, expected_bounded, "bounded scan");
    }

    #[test]
    fn versioned_reads_see_exact_version(
        puts in prop::collection::vec((0u8..8, any::<u16>()), 1..40)
    ) {
        let dir = TempDir::new("lsm-prop2").unwrap();
        let db = LsmTree::open(dir.path(), opts()).unwrap();
        let mut history: Vec<(Vec<u8>, u64, Bytes)> = Vec::new();
        let mut ts = 10u64;
        for (k, v) in &puts {
            ts += 1;
            let key = key_bytes(*k);
            let val = Bytes::from(format!("{v}"));
            db.put(key.clone(), ts, val.clone()).unwrap();
            history.push((key, ts, val));
        }
        db.flush().unwrap();
        // Reading at each historical write's timestamp returns that write
        // (it was the newest version for its key at that instant).
        let mut newest: BTreeMap<(Vec<u8>, u64), bool> = BTreeMap::new();
        for (key, ts, _) in &history {
            newest.insert((key.clone(), *ts), true);
        }
        for (key, wts, val) in &history {
            let got = db.get(key, *wts).unwrap().unwrap();
            // The version visible at wts is the write at wts itself.
            prop_assert_eq!(got.ts, *wts);
            prop_assert_eq!(got.value, val.clone());
        }
    }
}

//! Minimal self-cleaning temporary directory, used by tests, examples and
//! benches across the workspace.
//!
//! We deliberately avoid pulling in the `tempfile` crate: the only thing the
//! workspace needs is "give me a fresh directory and delete it on drop".

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir that is removed (recursively) when
/// the value is dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory with a unique name carrying `prefix`.
    ///
    /// Uniqueness combines the process id, a process-wide counter and a
    /// nanosecond timestamp, so concurrent test binaries do not collide.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{n}-{nanos}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consume the guard without deleting the directory (for debugging).
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let t = TempDir::new("tdl-test").unwrap();
        let p = t.path().to_path_buf();
        assert!(p.is_dir());
        std::fs::write(p.join("f.txt"), b"x").unwrap();
        drop(t);
        assert!(!p.exists());
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("tdl").unwrap();
        let b = TempDir::new("tdl").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn into_path_keeps_dir() {
        let t = TempDir::new("tdl-keep").unwrap();
        let p = t.into_path();
        assert!(p.is_dir());
        std::fs::remove_dir_all(&p).unwrap();
    }
}

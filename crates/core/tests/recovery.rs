//! Failure recovery of the AUQ (§5.3 of the paper): drain-before-flush,
//! WAL-replay re-enqueue, and idempotent re-delivery — exercised against
//! real crashes of the cluster substrate.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use diff_index_lsm::{LsmOptions, TableOptions};
use tempdir_lite::TempDir;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn small_lsm() -> LsmOptions {
    LsmOptions {
        memtable_flush_bytes: 16 * 1024,
        table: TableOptions { block_size: 512, bloom_bits_per_key: 10 },
        compaction_trigger: 4,
        version_retention: u64::MAX,
        ..LsmOptions::default()
    }
}

fn setup(scheme: IndexScheme, servers: usize) -> (TempDir, Cluster, DiffIndex) {
    let dir = TempDir::new("recovery").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: servers, lsm: small_lsm() })
            .unwrap();
    cluster.create_table("item", servers * 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("title", "item", "item_title", scheme), servers * 2)
        .unwrap();
    (dir, cluster, di)
}

#[test]
fn drain_before_flush_leaves_no_dangling_tasks() {
    // The invariant PR(Flushed) = ∅: after a flush of the base table, every
    // AUQ task for flushed data has been delivered. We verify by flushing
    // and then checking the index WITHOUT quiescing.
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple, 1);
    for i in 0..50 {
        cluster
            .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("flushme"))])
            .unwrap();
    }
    cluster.flush_table("item").unwrap(); // pre_flush hook pauses & drains AUQ
    let hits = di.get_by_index("item", "title", b"flushme", 100).unwrap();
    assert_eq!(hits.len(), 50, "drain-before-flush must have delivered everything");
    let handle = di.index("item", "title").unwrap();
    assert_eq!(handle.auq().depth(), 0);
}

#[test]
fn auto_flush_under_write_pressure_also_drains() {
    // Memtable-threshold flushes (not just explicit ones) must run the same
    // pause-drain-resume protocol without deadlocking.
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple, 1);
    for i in 0..400 {
        cluster
            .put(
                "item",
                format!("item{i:03}").as_bytes(),
                &[(b("item_title"), Bytes::from(vec![b'x'; 128]))],
            )
            .unwrap();
    }
    let m = cluster.table_metrics("item").unwrap();
    assert!(m.flushes >= 1, "write pressure must have flushed");
    di.quiesce("item");
    let handle = di.index("item", "title").unwrap();
    let am = handle.auq().metrics();
    let hits = di.get_by_index("item", "title", &[b'x'; 128], 1000).unwrap();
    assert_eq!(
        hits.len(),
        400,
        "enqueued={} completed={} retries={} dropped={}",
        am.enqueued.load(std::sync::atomic::Ordering::Relaxed),
        am.completed.load(std::sync::atomic::Ordering::Relaxed),
        am.retries.load(std::sync::atomic::Ordering::Relaxed),
        am.dropped.load(std::sync::atomic::Ordering::Relaxed),
    );
}

#[test]
fn crash_with_undelivered_tasks_recovers_via_replay() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple, 2);
    // Write rows, let SOME index deliveries happen, then crash both the
    // data and the pending queue state on server 0.
    for i in 0..40 {
        cluster
            .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("precrash"))])
            .unwrap();
    }
    // Do NOT quiesce: tasks may be pending. Crash server 0 (its memtables
    // vanish; WAL survives).
    cluster.crash_server(0);
    cluster.recover().unwrap();
    // Recovery re-enqueued every replayed base put; after quiesce the index
    // must be complete for all rows on both servers.
    di.quiesce("item");
    let hits = di.get_by_index("item", "title", b"precrash", 100).unwrap();
    assert_eq!(hits.len(), 40, "index must be complete after recovery + quiesce");
}

#[test]
fn redelivery_after_recovery_is_idempotent() {
    // Deliver everything, then crash and recover: replay re-enqueues tasks
    // that were ALREADY delivered. LSM same-timestamp semantics make the
    // re-delivery invisible.
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple, 2);
    for i in 0..20 {
        cluster
            .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("idem"))])
            .unwrap();
    }
    di.quiesce("item"); // all delivered
    cluster.crash_server(0);
    cluster.recover().unwrap();
    di.quiesce("item"); // re-deliveries execute
    let hits = di.get_by_index("item", "title", b"idem", 100).unwrap();
    assert_eq!(hits.len(), 20, "re-delivery must not duplicate index entries");
}

#[test]
fn crash_after_flush_replays_nothing_and_index_intact() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple, 2);
    for i in 0..30 {
        cluster
            .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("safe"))])
            .unwrap();
    }
    cluster.flush_table("item").unwrap(); // drains AUQ + rolls WAL forward
    di.quiesce("item");
    di.index("item", "title").unwrap(); // keep handle alive
    cluster.crash_server(0);
    cluster.crash_server(1);
    // All servers down; bring the cluster back by recovering after
    // resurrecting one... recover() needs a survivor, so crash only one in
    // this scenario instead:
    let dir2 = TempDir::new("recovery2").unwrap();
    drop(dir2);
    // Re-create over the same directory (full restart).
    // (Fresh cluster object; index tables reopen from disk.)
    // Note: this mirrors an HBase full-cluster restart where all state
    // comes from HDFS.
    drop(di);
    drop(cluster);
    let (_d2, cluster2, di2) = {
        let dir = _d;
        let cluster =
            Cluster::new(dir.path(), ClusterOptions { num_servers: 2, lsm: small_lsm() }).unwrap();
        cluster.create_table("item", 4).unwrap();
        let di = DiffIndex::new(cluster.clone());
        di.create_index(
            IndexSpec::single("title", "item", "item_title", IndexScheme::AsyncSimple),
            4,
        )
        .unwrap();
        (dir, cluster, di)
    };
    let hits = di2.get_by_index("item", "title", b"safe", 100).unwrap();
    assert_eq!(hits.len(), 30);
    drop(cluster2);
}

#[test]
fn sync_full_crash_recovery_preserves_causality() {
    let (_d, cluster, di) = setup(IndexScheme::SyncFull, 2);
    for i in 0..25 {
        cluster
            .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("sync"))])
            .unwrap();
    }
    // Index was maintained synchronously; crash and recover must keep it.
    cluster.crash_server(0);
    cluster.recover().unwrap();
    di.quiesce("item");
    let hits = di.get_by_index("item", "title", b"sync", 100).unwrap();
    assert_eq!(hits.len(), 25);
}

#[test]
fn sync_insert_crash_recovery_with_read_repair() {
    let (_d, cluster, di) = setup(IndexScheme::SyncInsert, 2);
    for i in 0..10 {
        let row = format!("item{i}");
        cluster.put("item", row.as_bytes(), &[(b("item_title"), b("v1"))]).unwrap();
        cluster.put("item", row.as_bytes(), &[(b("item_title"), b("v2"))]).unwrap();
    }
    cluster.crash_server(0);
    cluster.recover().unwrap();
    di.quiesce("item");
    // v1 entries are stale; read-repair hides them even after recovery.
    assert!(di.get_by_index("item", "title", b"v1", 100).unwrap().is_empty());
    assert_eq!(di.get_by_index("item", "title", b"v2", 100).unwrap().len(), 10);
}

#[test]
fn writes_continue_after_recovery() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple, 2);
    cluster.put("item", b"before", &[(b("item_title"), b("old-world"))]).unwrap();
    cluster.crash_server(1);
    cluster.recover().unwrap();
    cluster.put("item", b"after", &[(b("item_title"), b("new-world"))]).unwrap();
    di.quiesce("item");
    assert_eq!(di.get_by_index("item", "title", b"old-world", 10).unwrap().len(), 1);
    assert_eq!(di.get_by_index("item", "title", b"new-world", 10).unwrap().len(), 1);
}

#[test]
fn repeated_crash_recover_cycles() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple, 3);
    let mut total = 0;
    for round in 0..3 {
        for i in 0..15 {
            cluster
                .put(
                    "item",
                    format!("r{round}-i{i:02}").as_bytes(),
                    &[(b("item_title"), b("multi"))],
                )
                .unwrap();
            total += 1;
        }
        cluster.crash_server(round as u32);
        cluster.recover().unwrap();
        cluster.restart_server(round as u32);
    }
    di.quiesce("item");
    let hits = di.get_by_index("item", "title", b"multi", 1000).unwrap();
    assert_eq!(hits.len(), total);
}

#[test]
fn double_replay_of_same_wal_segment_does_not_duplicate_entries() {
    // §5.3: recovery replays the WAL and re-enqueues index maintenance for
    // every replayed base op. Nothing is flushed between two consecutive
    // crash/recover cycles here, so the SAME WAL segment replays twice —
    // and because replayed maintenance reuses the base ops' original
    // timestamps, the second replay must not duplicate entries, resurrect
    // old entries (sync-full), or multiply stale entries (sync-insert).
    for scheme in [IndexScheme::SyncFull, IndexScheme::SyncInsert] {
        let (_d, cluster, di) = setup(scheme, 2);
        for i in 0..15 {
            cluster
                .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("first"))])
                .unwrap();
        }
        // Overwrite ten rows: sync-full deletes the old entry at t−δ,
        // sync-insert leaves exactly one stale entry per overwritten row.
        for i in 0..10 {
            cluster
                .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("second"))])
                .unwrap();
        }
        di.quiesce("item");
        let spec = std::sync::Arc::clone(&di.index("item", "title").unwrap().spec);
        let index_table = spec.index_table();
        let entries = |c: &Cluster| {
            c.scan_rows(&index_table, b"", None, u64::MAX, usize::MAX).unwrap().len()
        };
        let baseline = entries(&cluster);
        let expected = match scheme {
            IndexScheme::SyncFull => 15,      // old entries deleted
            IndexScheme::SyncInsert => 25,    // 15 live + 10 stale by design
            _ => unreachable!(),
        };
        assert_eq!(baseline, expected, "{scheme:?}: baseline entry count");

        // Two crash/recover cycles, alternating servers so the segment is
        // replayed again after moving back. Replayed maintenance runs the
        // full Algorithm-4 (BA3 may delete sync-insert's stale entries — a
        // legitimate repair), so the invariant is: the entry count never
        // GROWS past the baseline, and the 15 live entries never vanish.
        let mut prev = baseline;
        for sid in [0u32, 1] {
            cluster.crash_server(sid);
            cluster.recover().unwrap();
            cluster.restart_server(sid);
            di.quiesce("item");
            let now = entries(&cluster);
            assert!(
                now <= prev,
                "{scheme:?}: replay of server {sid} grew index {prev} -> {now} (duplicates)"
            );
            assert!(now >= 15, "{scheme:?}: replay of server {sid} lost live entries ({now})");
            prev = now;
        }

        // Read results stay exact.
        assert_eq!(di.get_by_index("item", "title", b"second", 100).unwrap().len(), 10);
        assert_eq!(di.get_by_index("item", "title", b"first", 100).unwrap().len(), 5);
        let report = diff_index_core::verify_index(&cluster, &spec).unwrap();
        assert_eq!(report.missing_count(), 0, "{scheme:?}: replay lost entries");
        match scheme {
            IndexScheme::SyncFull => assert!(report.is_clean(), "{:?}", report.divergences),
            IndexScheme::SyncInsert => assert!(
                report.stale_count() <= 10,
                "{scheme:?}: double replay multiplied stale entries ({})",
                report.stale_count()
            ),
            _ => unreachable!(),
        }
    }
}

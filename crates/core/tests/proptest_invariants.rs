//! Property-based invariants of Diff-Index:
//!
//! 1. index-row encoding round-trips and preserves tuple order;
//! 2. under arbitrary put/delete sequences (with random flushes and
//!    crash/recover cycles), every scheme converges to an index that is
//!    exactly the projection of the base table;
//! 3. a session always observes its own writes.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::encoding::{decode_index_row, index_row, value_prefix};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use diff_index_lsm::{LsmOptions, TableOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use tempdir_lite::TempDir;

// --- encoding properties ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn index_row_roundtrip(
        values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 1..4),
        row in prop::collection::vec(any::<u8>(), 0..20)
    ) {
        let vals: Vec<Bytes> = values.iter().map(|v| Bytes::from(v.clone())).collect();
        let key = index_row(&vals, &row);
        let (got_vals, got_row) = decode_index_row(&key, vals.len()).unwrap();
        prop_assert_eq!(got_vals, vals);
        prop_assert_eq!(got_row.as_ref(), row.as_slice());
    }

    #[test]
    fn index_row_order_matches_tuple_order(
        a_val in prop::collection::vec(any::<u8>(), 0..12),
        a_row in prop::collection::vec(any::<u8>(), 0..12),
        b_val in prop::collection::vec(any::<u8>(), 0..12),
        b_row in prop::collection::vec(any::<u8>(), 0..12)
    ) {
        let ka = index_row(&[Bytes::from(a_val.clone())], &a_row);
        let kb = index_row(&[Bytes::from(b_val.clone())], &b_row);
        let tuple_cmp = (a_val.clone(), a_row.clone()).cmp(&(b_val.clone(), b_row.clone()));
        prop_assert_eq!(ka.cmp(&kb), tuple_cmp,
            "encoding must sort exactly like the (value, row) tuple");
    }

    #[test]
    fn value_prefix_covers_exactly_that_value(
        val in prop::collection::vec(any::<u8>(), 0..12),
        other in prop::collection::vec(any::<u8>(), 0..12),
        row in prop::collection::vec(any::<u8>(), 0..12)
    ) {
        let p = value_prefix(&val);
        let same = index_row(&[Bytes::from(val.clone())], &row);
        prop_assert!(same.starts_with(&p));
        if other != val {
            let diff = index_row(&[Bytes::from(other.clone())], &row);
            prop_assert!(!diff.starts_with(&p),
                "prefix for {:?} must not cover value {:?}", val, other);
        }
    }
}

// --- convergence properties ---------------------------------------------------

#[derive(Debug, Clone)]
enum Action {
    Put { row: u8, value: u8 },
    PutBatch { rows: Vec<(u8, u8)> },
    Delete { row: u8 },
    Flush,
    CrashRecover { server: u8 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        8 => (any::<u8>(), any::<u8>()).prop_map(|(row, value)| Action::Put {
            row: row % 12,
            value: value % 6,
        }),
        2 => prop::collection::vec((any::<u8>(), any::<u8>()), 2..6).prop_map(|pairs| {
            // Distinct rows within a batch, so the final value per row is
            // defined by the batch contents alone.
            let mut rows: Vec<(u8, u8)> = Vec::new();
            for (r, v) in pairs {
                let r = r % 12;
                if !rows.iter().any(|(x, _)| *x == r) {
                    rows.push((r, v % 6));
                }
            }
            Action::PutBatch { rows }
        }),
        2 => any::<u8>().prop_map(|row| Action::Delete { row: row % 12 }),
        1 => Just(Action::Flush),
        1 => any::<u8>().prop_map(|server| Action::CrashRecover { server: server % 2 }),
    ]
}

/// Convergence cases scale with `PROPTEST_CASES` (each case builds a full
/// cluster, so run 1/16th of the cheap-property count, floor 12).
fn conv_config() -> ProptestConfig {
    let base = ProptestConfig::default();
    ProptestConfig { cases: (base.cases / 16).max(12), ..base }
}

fn small_lsm() -> LsmOptions {
    LsmOptions {
        memtable_flush_bytes: 2048,
        table: TableOptions { block_size: 256, bloom_bits_per_key: 10 },
        compaction_trigger: 3,
        version_retention: u64::MAX,
        ..LsmOptions::default()
    }
}

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn run_convergence(scheme: IndexScheme, actions: &[Action]) -> Result<(), TestCaseError> {
    let dir = TempDir::new("prop-conv").unwrap();
    let cluster = Cluster::new(
        dir.path(),
        ClusterOptions { num_servers: 2, lsm: small_lsm() },
    )
    .unwrap();
    cluster.create_table("t", 4).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("ix", "t", "c", scheme), 4).unwrap();

    // Ground truth: row -> current value.
    let mut truth: BTreeMap<String, String> = BTreeMap::new();
    for a in actions {
        match a {
            Action::Put { row, value } => {
                let r = format!("row{row:02}");
                let v = format!("val{value}");
                // A put may transiently fail if it routes to a crashed
                // server mid-sequence; we always recover first, so unwrap.
                cluster.put("t", r.as_bytes(), &[(b("c"), b(&v))]).unwrap();
                truth.insert(r, v);
            }
            Action::PutBatch { rows } => {
                let batch: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = rows
                    .iter()
                    .map(|(r, v)| {
                        (
                            Bytes::from(format!("row{r:02}")),
                            vec![(b("c"), b(&format!("val{v}")))],
                        )
                    })
                    .collect();
                cluster.put_batch("t", &batch).unwrap();
                for (r, v) in rows {
                    truth.insert(format!("row{r:02}"), format!("val{v}"));
                }
            }
            Action::Delete { row } => {
                let r = format!("row{row:02}");
                cluster.delete("t", r.as_bytes(), &[b("c")]).unwrap();
                truth.remove(&r);
            }
            Action::Flush => cluster.flush_table("t").unwrap(),
            Action::CrashRecover { server } => {
                cluster.crash_server(*server as u32);
                cluster.recover().unwrap();
                cluster.restart_server(*server as u32);
            }
        }
    }
    di.quiesce("t");
    assert_projection(&di, &truth)
}

/// The index must be exactly the projection of the base table: for every
/// value, get_by_index returns precisely the rows currently holding it.
fn assert_projection(
    di: &DiffIndex,
    truth: &BTreeMap<String, String>,
) -> Result<(), TestCaseError> {
    let mut expected: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (r, v) in truth {
        expected.entry(v.clone()).or_default().push(r.clone());
    }
    for value in 0..6u8 {
        let v = format!("val{value}");
        let hits = di.get_by_index("t", "ix", v.as_bytes(), 1000).unwrap();
        let mut got: Vec<String> =
            hits.iter().map(|h| String::from_utf8(h.row.to_vec()).unwrap()).collect();
        got.sort();
        let want = expected.get(&v).cloned().unwrap_or_default();
        prop_assert_eq!(got, want, "value {}", v);
    }
    Ok(())
}

proptest! {
    #![proptest_config(conv_config())]

    #[test]
    fn sync_full_converges(actions in prop::collection::vec(action_strategy(), 1..40)) {
        run_convergence(IndexScheme::SyncFull, &actions)?;
    }

    /// WAL group-commit interleavings: concurrent writers to the same
    /// region race through `stage → complete → wait_durable`, electing a
    /// sync leader per group; crash/recover between groups must replay
    /// every acked write exactly once (WAL fsync on, so durability is
    /// real, not buffered).
    #[test]
    fn group_commit_interleavings_converge(
        groups in prop::collection::vec(
            prop::collection::vec((0u8..24, 0u8..6), 1..8), 1..6),
        crash_mask in any::<u8>(),
    ) {
        let dir = TempDir::new("prop-gc").unwrap();
        let lsm = LsmOptions { wal_sync: true, ..small_lsm() };
        let cluster = Cluster::new(
            dir.path(),
            ClusterOptions { num_servers: 2, lsm },
        ).unwrap();
        cluster.create_table("t", 4).unwrap();
        let di = DiffIndex::new(cluster.clone());
        di.create_index(IndexSpec::single("ix", "t", "c", IndexScheme::SyncFull), 4).unwrap();

        let mut truth: BTreeMap<String, String> = BTreeMap::new();
        for (gi, group) in groups.iter().enumerate() {
            // Distinct rows per group so the concurrent outcome is defined.
            let mut batch: Vec<(u8, u8)> = Vec::new();
            for (r, v) in group {
                if !batch.iter().any(|(x, _)| x == r) {
                    batch.push((*r, *v));
                }
            }
            std::thread::scope(|s| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|(r, v)| {
                        let cluster = &cluster;
                        let row = format!("row{r:02}");
                        let val = format!("val{v}");
                        s.spawn(move || {
                            cluster.put("t", row.as_bytes(), &[(b("c"), b(&val))]).unwrap()
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
            for (r, v) in &batch {
                truth.insert(format!("row{r:02}"), format!("val{v}"));
            }
            if crash_mask & (1 << (gi % 8)) != 0 {
                let server = (gi % 2) as u32;
                cluster.crash_server(server);
                cluster.recover().unwrap();
                cluster.restart_server(server);
            }
        }
        di.quiesce("t");
        assert_projection(&di, &truth)?;
    }

    #[test]
    fn sync_insert_converges(actions in prop::collection::vec(action_strategy(), 1..40)) {
        run_convergence(IndexScheme::SyncInsert, &actions)?;
    }

    #[test]
    fn async_simple_converges(actions in prop::collection::vec(action_strategy(), 1..40)) {
        run_convergence(IndexScheme::AsyncSimple, &actions)?;
    }

    #[test]
    fn session_always_reads_its_own_writes(
        writes in prop::collection::vec((0u8..10, 0u8..5), 1..25)
    ) {
        let dir = TempDir::new("prop-sess").unwrap();
        let cluster = Cluster::new(
            dir.path(),
            ClusterOptions { num_servers: 2, lsm: small_lsm() },
        ).unwrap();
        cluster.create_table("t", 4).unwrap();
        let di = DiffIndex::new(cluster.clone());
        di.create_index(IndexSpec::single("ix", "t", "c", IndexScheme::AsyncSession), 4).unwrap();
        let session = di.session();
        let mut truth: BTreeMap<String, String> = BTreeMap::new();
        for (row, value) in &writes {
            let r = format!("row{row:02}");
            let v = format!("val{value}");
            session.put("t", r.as_bytes(), &[(b("c"), b(&v))]).unwrap();
            truth.insert(r.clone(), v.clone());
            // IMMEDIATELY readable in-session, no quiesce (read-your-writes).
            let hits = session.get_by_index("t", "ix", v.as_bytes(), 100).unwrap();
            prop_assert!(
                hits.iter().any(|h| h.row.as_ref() == r.as_bytes()),
                "session must see its own write {r}={v}"
            );
        }
        // Final in-session view is exactly the projection of truth.
        for value in 0..5u8 {
            let v = format!("val{value}");
            let hits = session.get_by_index("t", "ix", v.as_bytes(), 1000).unwrap();
            let mut got: Vec<String> =
                hits.iter().map(|h| String::from_utf8(h.row.to_vec()).unwrap()).collect();
            got.sort();
            let want: Vec<String> = truth
                .iter()
                .filter(|(_, tv)| **tv == v)
                .map(|(r, _)| r.clone())
                .collect();
            prop_assert_eq!(got, want, "final session view for {}", v);
        }
    }
}

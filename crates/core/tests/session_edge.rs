//! Edge cases of the session-consistency layer (§5.2): expiry, range
//! queries through the session merge, multi-session isolation, and
//! interaction with deletes.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexError, IndexScheme, IndexSpec, SessionConfig};
use std::time::Duration;
use tempdir_lite::TempDir;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn setup() -> (TempDir, Cluster, DiffIndex) {
    let dir = TempDir::new("sess-edge").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(
        IndexSpec::single("price", "item", "item_price", IndexScheme::AsyncSession),
        2,
    )
    .unwrap();
    (dir, cluster, di)
}

#[test]
fn idle_session_expires_and_is_garbage_collected() {
    let dir = TempDir::new("sess-exp").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::with_session_config(
        cluster.clone(),
        SessionConfig { max_idle: Duration::from_millis(50), max_bytes: 1 << 20 },
    );
    di.create_index(
        IndexSpec::single("price", "item", "item_price", IndexScheme::AsyncSession),
        2,
    )
    .unwrap();
    let s = di.session();
    s.put("item", b"r1", &[(b("item_price"), b("10"))]).unwrap();
    assert!(s.private_bytes() > 0);
    std::thread::sleep(Duration::from_millis(120));
    // The paper: "an application that issues a request under this session ID
    // after [the limit] will get a session expiration notification".
    assert!(matches!(
        s.get_by_index("item", "price", b"10", 10),
        Err(IndexError::SessionExpired)
    ));
    assert_eq!(s.private_bytes(), 0, "expired session state is garbage collected");
    // A NEW session works fine.
    let s2 = di.session();
    assert!(s2.get_by_index("item", "price", b"10", 10).is_ok());
}

#[test]
fn activity_keeps_session_alive() {
    let dir = TempDir::new("sess-alive").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::with_session_config(
        cluster.clone(),
        SessionConfig { max_idle: Duration::from_millis(150), max_bytes: 1 << 20 },
    );
    di.create_index(
        IndexSpec::single("price", "item", "item_price", IndexScheme::AsyncSession),
        2,
    )
    .unwrap();
    let s = di.session();
    for i in 0..6 {
        std::thread::sleep(Duration::from_millis(40));
        s.put("item", format!("r{i}").as_bytes(), &[(b("item_price"), b("5"))]).unwrap();
    }
    // > 150 ms total elapsed, but never idle that long: still alive.
    assert!(s.get_by_index("item", "price", b"5", 10).is_ok());
}

#[test]
fn session_range_queries_merge_private_state() {
    let (_d, _cluster, di) = setup();
    let s = di.session();
    for (row, price) in [("a", "0010"), ("b", "0020"), ("c", "0030"), ("d", "0040")] {
        s.put("item", row.as_bytes(), &[(b("item_price"), b(price))]).unwrap();
    }
    // No quiesce: range must still see the session's own writes.
    let hits = s.range_by_index("item", "price", b"0015", b"0035", true, 100).unwrap();
    let mut rows: Vec<&str> = hits
        .iter()
        .map(|h| std::str::from_utf8(h.row.as_ref()).unwrap())
        .collect();
    rows.sort_unstable();
    assert_eq!(rows, vec!["b", "c"]);

    // After the index catches up the result must be identical (merged, not
    // duplicated).
    di.quiesce("item");
    let hits2 = s.range_by_index("item", "price", b"0015", b"0035", true, 100).unwrap();
    assert_eq!(hits2.len(), 2);
}

#[test]
fn sessions_are_isolated_from_each_other() {
    let (_d, _cluster, di) = setup();
    let alice = di.session();
    let bob = di.session();
    assert_ne!(alice.id(), bob.id());
    alice.put("item", b"r1", &[(b("item_price"), b("99"))]).unwrap();
    // Alice sees it; Bob (whose session has no private state for it and the
    // AUQ hasn't delivered) may not — and definitely must not see it via
    // *his* private table.
    let a = alice.get_by_index("item", "price", b"99", 10).unwrap();
    assert_eq!(a.len(), 1);
    assert_eq!(bob.private_bytes(), 0);
    // After delivery everyone converges.
    di.quiesce("item");
    let b_view = bob.get_by_index("item", "price", b"99", 10).unwrap();
    assert_eq!(b_view.len(), 1);
}

#[test]
fn session_overwrite_chain_tracks_only_latest() {
    let (_d, _cluster, di) = setup();
    let s = di.session();
    for price in ["10", "20", "30"] {
        s.put("item", b"r1", &[(b("item_price"), b(price))]).unwrap();
    }
    for stale in ["10", "20"] {
        assert!(
            s.get_by_index("item", "price", stale.as_bytes(), 10).unwrap().is_empty(),
            "session must hide its own superseded value {stale}"
        );
    }
    let hits = s.get_by_index("item", "price", b"30", 10).unwrap();
    assert_eq!(hits.len(), 1);
    // Convergence check after delivery.
    di.quiesce("item");
    let hits = s.get_by_index("item", "price", b"30", 10).unwrap();
    assert_eq!(hits.len(), 1);
    assert!(di.get_by_index("item", "price", b"10", 10).unwrap().is_empty());
}

#[test]
fn non_session_indexes_ignore_session_tracking() {
    // A session put on a table whose indexes are NOT async-session keeps no
    // private state (nothing to merge — those schemes are causal/eventual).
    let dir = TempDir::new("sess-none").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("t", "item", "c", IndexScheme::SyncFull), 2).unwrap();
    let s = di.session();
    s.put("item", b"r1", &[(b("c"), b("v"))]).unwrap();
    assert_eq!(s.private_bytes(), 0);
    // The sync-full index is of course immediately correct.
    assert_eq!(di.get_by_index("item", "t", b"v", 10).unwrap().len(), 1);
}

#[test]
fn untouched_columns_do_not_pollute_session_state() {
    let (_d, _cluster, di) = setup();
    let s = di.session();
    // Write a non-indexed column: no private entries should appear.
    s.put("item", b"r1", &[(b("other_col"), b("x"))]).unwrap();
    assert_eq!(s.private_bytes(), 0);
}

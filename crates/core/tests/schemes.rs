//! End-to-end semantics of the four Diff-Index schemes against the real
//! cluster + LSM substrate: correctness of index maintenance, read-repair,
//! session consistency, and the consistency levels of Figure 4.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
use diff_index_lsm::{LsmOptions, TableOptions};
use tempdir_lite::TempDir;

fn small_lsm() -> LsmOptions {
    LsmOptions {
        memtable_flush_bytes: 16 * 1024,
        table: TableOptions { block_size: 512, bloom_bits_per_key: 10 },
        compaction_trigger: 4,
        version_retention: u64::MAX,
        ..LsmOptions::default()
    }
}

fn setup(scheme: IndexScheme) -> (TempDir, Cluster, DiffIndex) {
    let dir = TempDir::new("diffidx").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 2, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 4).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("title", "item", "item_title", scheme), 4).unwrap();
    (dir, cluster, di)
}

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn put_title(cluster: &Cluster, row: &str, title: &str) -> u64 {
    cluster.put("item", row.as_bytes(), &[(b("item_title"), b(title))]).unwrap()
}

fn rows_of(hits: &[diff_index_core::IndexHit]) -> Vec<String> {
    let mut v: Vec<String> =
        hits.iter().map(|h| String::from_utf8(h.row.to_vec()).unwrap()).collect();
    v.sort();
    v
}

// --- sync-full -------------------------------------------------------------

#[test]
fn sync_full_index_is_immediately_consistent() {
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    put_title(&cluster, "item1", "red shirt");
    put_title(&cluster, "item2", "red shirt");
    put_title(&cluster, "item3", "blue pants");
    let hits = di.get_by_index("item", "title", b"red shirt", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1", "item2"]);
    let hits = di.get_by_index("item", "title", b"blue pants", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item3"]);
    assert!(di.get_by_index("item", "title", b"green hat", 100).unwrap().is_empty());
}

#[test]
fn sync_full_update_removes_old_entry_immediately() {
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    put_title(&cluster, "item1", "old title");
    put_title(&cluster, "item1", "new title");
    assert!(di.get_by_index("item", "title", b"old title", 100).unwrap().is_empty());
    let hits = di.get_by_index("item", "title", b"new title", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn sync_full_same_value_reput_keeps_entry() {
    // The δ subtlety of §4.3: when vnew == vold, the delete at tnew−δ must
    // not kill the entry that was just written at tnew.
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    put_title(&cluster, "item1", "same");
    put_title(&cluster, "item1", "same");
    let hits = di.get_by_index("item", "title", b"same", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn sync_full_delete_removes_entry() {
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    put_title(&cluster, "item1", "gone");
    cluster.delete("item", b"item1", &[b("item_title")]).unwrap();
    assert!(di.get_by_index("item", "title", b"gone", 100).unwrap().is_empty());
}

#[test]
fn sync_full_fans_out_su2_and_repair_in_parallel() {
    // Every sync-full put dispatches SU2 ∥ (SU3→SU4) on the fan-out pool —
    // two sub-operations per update — and the result must be identical to
    // the sequential algorithm (old entry gone, new entry present).
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    put_title(&cluster, "item1", "before");
    put_title(&cluster, "item1", "after");
    let auq = std::sync::Arc::clone(di.index("item", "title").unwrap().auq());
    let m = auq.metrics();
    use std::sync::atomic::Ordering;
    let dispatches = m.fanout_dispatches.load(Ordering::Relaxed);
    let tasks = m.fanout_tasks.load(Ordering::Relaxed);
    assert_eq!(dispatches, 2, "one fan-out dispatch per indexed put");
    assert_eq!(tasks, 2 * dispatches, "SU2 and SU3/SU4 arms per dispatch");
    assert!(di.get_by_index("item", "title", b"before", 100).unwrap().is_empty());
    assert_eq!(rows_of(&di.get_by_index("item", "title", b"after", 100).unwrap()), vec!["item1"]);
}

#[test]
fn sync_insert_does_not_fan_out() {
    // sync-insert has no repair arm; SU2 runs inline with zero dispatch
    // overhead.
    let (_d, cluster, di) = setup(IndexScheme::SyncInsert);
    put_title(&cluster, "item1", "solo");
    let auq = std::sync::Arc::clone(di.index("item", "title").unwrap().auq());
    use std::sync::atomic::Ordering;
    assert_eq!(auq.metrics().fanout_dispatches.load(Ordering::Relaxed), 0);
}

#[test]
fn index_entry_timestamp_equals_base_timestamp() {
    // The concurrency-control invariant of §4.3.
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    let ts = put_title(&cluster, "item1", "stamped");
    let hits = di.get_by_index("item", "title", b"stamped", 100).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].ts, ts);
}

// --- sync-insert -------------------------------------------------------------

#[test]
fn sync_insert_leaves_stale_entry_but_read_repairs() {
    let (_d, cluster, di) = setup(IndexScheme::SyncInsert);
    put_title(&cluster, "item1", "version-a");
    put_title(&cluster, "item1", "version-b");

    // The raw index table still holds BOTH entries (no sync delete)…
    let idx_table = di.index("item", "title").unwrap().spec.index_table();
    let raw = cluster
        .scan_rows_prefix(&idx_table, &diff_index_core::encoding::value_prefix(b"version-a"), u64::MAX, 10)
        .unwrap();
    assert_eq!(raw.len(), 1, "stale entry expected before read-repair");

    // …but getByIndex double-checks and hides it (Algorithm 2)…
    assert!(di.get_by_index("item", "title", b"version-a", 100).unwrap().is_empty());
    let hits = di.get_by_index("item", "title", b"version-b", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);

    // …and the stale entry is now physically gone (repaired).
    let raw = cluster
        .scan_rows_prefix(&idx_table, &diff_index_core::encoding::value_prefix(b"version-a"), u64::MAX, 10)
        .unwrap();
    assert!(raw.is_empty(), "read-repair must delete the stale entry");
}

#[test]
fn sync_insert_read_after_base_delete_repairs() {
    let (_d, cluster, di) = setup(IndexScheme::SyncInsert);
    put_title(&cluster, "item1", "doomed");
    cluster.delete("item", b"item1", &[b("item_title")]).unwrap();
    assert!(di.get_by_index("item", "title", b"doomed", 100).unwrap().is_empty());
}

#[test]
fn sync_insert_fresh_entries_are_correct() {
    let (_d, cluster, di) = setup(IndexScheme::SyncInsert);
    for i in 0..20 {
        put_title(&cluster, &format!("item{i}"), if i % 2 == 0 { "even" } else { "odd" });
    }
    let hits = di.get_by_index("item", "title", b"even", 100).unwrap();
    assert_eq!(hits.len(), 10);
    for h in &hits {
        assert_eq!(h.values[0], Bytes::from("even"));
    }
}

// --- async-simple ------------------------------------------------------------

#[test]
fn async_simple_is_eventually_consistent() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple);
    put_title(&cluster, "item1", "eventual");
    // After quiescing the AUQ the index must be complete and correct.
    di.quiesce("item");
    let hits = di.get_by_index("item", "title", b"eventual", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn async_simple_update_converges_to_single_entry() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple);
    for v in ["v1", "v2", "v3", "v4"] {
        put_title(&cluster, "item1", v);
    }
    di.quiesce("item");
    for v in ["v1", "v2", "v3"] {
        assert!(
            di.get_by_index("item", "title", v.as_bytes(), 100).unwrap().is_empty(),
            "old value {v} must be unindexed after convergence"
        );
    }
    let hits = di.get_by_index("item", "title", b"v4", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn async_simple_delete_converges() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple);
    put_title(&cluster, "item1", "temp");
    di.quiesce("item");
    cluster.delete("item", b"item1", &[b("item_title")]).unwrap();
    di.quiesce("item");
    assert!(di.get_by_index("item", "title", b"temp", 100).unwrap().is_empty());
}

#[test]
fn async_simple_heavy_write_batch_converges() {
    let (_d, cluster, di) = setup(IndexScheme::AsyncSimple);
    for i in 0..200 {
        put_title(&cluster, &format!("item{i:03}"), &format!("title{:02}", i % 10));
    }
    di.quiesce("item");
    for t in 0..10 {
        let hits =
            di.get_by_index("item", "title", format!("title{t:02}").as_bytes(), 1000).unwrap();
        assert_eq!(hits.len(), 20, "title{t:02} should index 20 items");
    }
}

// --- async-session -----------------------------------------------------------

#[test]
fn session_sees_own_writes_immediately() {
    let (_d, _cluster, di) = setup(IndexScheme::AsyncSession);
    let session = di.session();
    session.put("item", b"item1", &[(b("item_title"), b("mine"))]).unwrap();
    // No quiesce: the AUQ may not have delivered yet, but the session must
    // see its own write (read-your-writes, §3.3/§5.2).
    let hits = session.get_by_index("item", "title", b"mine", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn other_clients_are_only_eventually_consistent() {
    let (_d, _cluster, di) = setup(IndexScheme::AsyncSession);
    let user1 = di.session();
    user1.put("item", b"item1", &[(b("item_title"), b("review-a"))]).unwrap();
    // User 2 (plain read) may or may not see it yet; after quiesce they must.
    di.quiesce("item");
    let hits = di.get_by_index("item", "title", b"review-a", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn session_update_hides_old_value_immediately() {
    let (_d, _cluster, di) = setup(IndexScheme::AsyncSession);
    let s = di.session();
    s.put("item", b"item1", &[(b("item_title"), b("before"))]).unwrap();
    di.quiesce("item"); // server index now has "before"
    s.put("item", b"item1", &[(b("item_title"), b("after"))]).unwrap();
    // Even though the AUQ hasn't delivered the update, the session's private
    // delete marker must hide the stale server entry.
    let hits = s.get_by_index("item", "title", b"before", 100).unwrap();
    assert!(hits.is_empty(), "session must not see its own overwritten value");
    let hits = s.get_by_index("item", "title", b"after", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn session_merge_deduplicates_once_index_catches_up() {
    let (_d, _cluster, di) = setup(IndexScheme::AsyncSession);
    let s = di.session();
    s.put("item", b"item1", &[(b("item_title"), b("dup"))]).unwrap();
    di.quiesce("item");
    // Server now has the entry too; merged result must still be one hit.
    let hits = s.get_by_index("item", "title", b"dup", 100).unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn ended_session_rejects_operations() {
    let (_d, _cluster, di) = setup(IndexScheme::AsyncSession);
    let s = di.session();
    s.end();
    assert!(matches!(
        s.put("item", b"r", &[(b("item_title"), b("v"))]),
        Err(diff_index_core::IndexError::SessionExpired)
    ));
    assert!(matches!(
        s.get_by_index("item", "title", b"v", 10),
        Err(diff_index_core::IndexError::SessionExpired)
    ));
}

#[test]
fn session_memory_cap_disables_consistency_gracefully() {
    let dir = TempDir::new("diffidx").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 1, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::with_session_config(
        cluster.clone(),
        diff_index_core::SessionConfig {
            max_idle: std::time::Duration::from_secs(1800),
            max_bytes: 256, // tiny budget
        },
    );
    di.create_index(IndexSpec::single("title", "item", "item_title", IndexScheme::AsyncSession), 2)
        .unwrap();
    let s = di.session();
    for i in 0..50 {
        s.put("item", format!("item{i}").as_bytes(), &[(b("item_title"), b("t"))]).unwrap();
    }
    assert!(s.consistency_disabled(), "tiny budget must trip the memory monitor");
    // Session still usable — it just degrades to async-simple semantics.
    di.quiesce("item");
    let hits = s.get_by_index("item", "title", b"t", 100).unwrap();
    assert_eq!(hits.len(), 50);
}

// --- the paper's §3.3 scenario ------------------------------------------------

#[test]
fn section_3_3_review_scenario() {
    // User 1 posts a review for product A and immediately lists reviews for
    // A: must see their own review. User 2's listing is eventual.
    let dir = TempDir::new("diffidx").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 2, lsm: small_lsm() }).unwrap();
    cluster.create_table("reviews", 4).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(
        IndexSpec::single("by_product", "reviews", "ProductID", IndexScheme::AsyncSession),
        4,
    )
    .unwrap();

    // Pre-existing review by someone else, already indexed.
    cluster.put("reviews", b"rev-old", &[(b("ProductID"), b("productA"))]).unwrap();
    di.quiesce("reviews");

    let user1 = di.session();
    // 1. User 1 views reviews for product A.
    let before = user1.get_by_index("reviews", "by_product", b"productA", 100).unwrap();
    assert_eq!(before.len(), 1);
    // 2. User 1 posts a review for product A.
    user1.put("reviews", b"rev-new", &[(b("ProductID"), b("productA"))]).unwrap();
    // 3. User 1 lists reviews for A — must include their own, instantly.
    let after = user1.get_by_index("reviews", "by_product", b"productA", 100).unwrap();
    assert_eq!(rows_of(&after), vec!["rev-new", "rev-old"]);

    // User 2 eventually sees it too.
    di.quiesce("reviews");
    let user2_view = di.get_by_index("reviews", "by_product", b"productA", 100).unwrap();
    assert_eq!(rows_of(&user2_view), vec!["rev-new", "rev-old"]);
}

// --- shared behaviours ---------------------------------------------------------

#[test]
fn backfill_indexes_existing_rows() {
    let dir = TempDir::new("diffidx").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 2, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 4).unwrap();
    // Data exists BEFORE the index is created.
    for i in 0..30 {
        cluster
            .put("item", format!("item{i:02}").as_bytes(), &[(b("item_title"), b("preexisting"))])
            .unwrap();
    }
    let di = DiffIndex::new(cluster.clone());
    di.create_index(IndexSpec::single("title", "item", "item_title", IndexScheme::SyncFull), 4)
        .unwrap();
    let hits = di.get_by_index("item", "title", b"preexisting", 100).unwrap();
    assert_eq!(hits.len(), 30);
}

#[test]
fn range_query_by_index() {
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    for (row, price) in
        [("a", "price010"), ("b", "price020"), ("c", "price030"), ("d", "price040")]
    {
        cluster.put("item", row.as_bytes(), &[(b("item_title"), b(price))]).unwrap();
    }
    let hits = di.range_by_index("item", "title", b"price015", b"price035", true, 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["b", "c"]);
    let hits = di.range_by_index("item", "title", b"price010", b"price030", false, 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["a", "b"]);
    let hits = di.range_by_index("item", "title", b"price010", b"price030", true, 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["a", "b", "c"]);
}

#[test]
fn composite_index_roundtrip() {
    let dir = TempDir::new("diffidx").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 1, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 2).unwrap();
    let di = DiffIndex::new(cluster.clone());
    di.create_index(
        IndexSpec::composite(
            "cat_price",
            "item",
            vec![b("category"), b("price")],
            IndexScheme::SyncFull,
        ),
        2,
    )
    .unwrap();
    // Row indexed only once BOTH columns are present.
    cluster.put("item", b"i1", &[(b("category"), b("toys"))]).unwrap();
    assert!(di.get_by_index("item", "cat_price", b"toys", 100).unwrap().is_empty());
    cluster.put("item", b"i1", &[(b("price"), b("0099"))]).unwrap();
    let hits = di.get_by_index("item", "cat_price", b"toys", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["i1"]);
    assert_eq!(hits[0].values, vec![Bytes::from("toys"), Bytes::from("0099")]);

    // Updating one component moves the entry.
    cluster.put("item", b"i1", &[(b("category"), b("games"))]).unwrap();
    assert!(di.get_by_index("item", "cat_price", b"toys", 100).unwrap().is_empty());
    let hits = di.get_by_index("item", "cat_price", b"games", 100).unwrap();
    assert_eq!(rows_of(&hits), vec!["i1"]);
}

#[test]
fn drop_index_stops_maintenance() {
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    put_title(&cluster, "item1", "live");
    di.drop_index("item", "title").unwrap();
    assert!(di.get_by_index("item", "title", b"live", 10).is_err());
    // Further puts must not crash (observer detached).
    put_title(&cluster, "item2", "after-drop");
}

#[test]
fn duplicate_index_name_rejected() {
    let (_d, _cluster, di) = setup(IndexScheme::SyncFull);
    let err = di
        .create_index(IndexSpec::single("title", "item", "item_title", IndexScheme::SyncFull), 2)
        .unwrap_err();
    assert!(matches!(err, diff_index_core::IndexError::IndexExists(_)));
}

#[test]
fn two_indexes_different_schemes_coexist() {
    let (_d, cluster, di) = setup(IndexScheme::SyncFull);
    di.create_index(IndexSpec::single("price", "item", "item_price", IndexScheme::AsyncSimple), 4)
        .unwrap();
    cluster
        .put("item", b"item1", &[(b("item_title"), b("widget")), (b("item_price"), b("0042"))])
        .unwrap();
    // sync-full index: immediate.
    let hits = di.get_by_index("item", "title", b"widget", 10).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
    // async index: after quiesce.
    di.quiesce("item");
    let hits = di.get_by_index("item", "price", b"0042", 10).unwrap();
    assert_eq!(rows_of(&hits), vec!["item1"]);
}

#[test]
fn table2_io_costs_match_measured_counters() {
    // Measure (Base Put, Base Read, Index Put, Index Read) around one index
    // update and one index read, per scheme, and compare with the analytic
    // Table 2 (update row; deletes are counted within index_put as "1+1").
    for scheme in [IndexScheme::SyncFull, IndexScheme::SyncInsert, IndexScheme::AsyncSimple] {
        let (_d, cluster, di) = setup(scheme);
        let idx_table = di.index("item", "title").unwrap().spec.index_table();
        put_title(&cluster, "item1", "v1"); // make it an UPDATE below
        di.quiesce("item");

        let base0 = cluster.table_metrics("item").unwrap();
        let idx0 = cluster.table_metrics(&idx_table).unwrap();
        put_title(&cluster, "item1", "v2");
        di.quiesce("item");
        let base1 = cluster.table_metrics("item").unwrap();
        let idx1 = cluster.table_metrics(&idx_table).unwrap();

        let d_base = base1 - base0;
        let d_idx = idx1 - idx0;
        let expect = diff_index_core::update_cost(Some(scheme));
        assert_eq!(d_base.puts, expect.base_put as u64, "{scheme}: base puts");
        assert_eq!(d_base.gets, expect.base_read as u64, "{scheme}: base reads");
        assert_eq!(
            d_idx.puts + d_idx.deletes,
            expect.index_put as u64,
            "{scheme}: index puts+deletes"
        );

        // Read action.
        let base0 = cluster.table_metrics("item").unwrap();
        let idx0 = cluster.table_metrics(&idx_table).unwrap();
        let hits = di.get_by_index("item", "title", b"v2", 100).unwrap();
        let base1 = cluster.table_metrics("item").unwrap();
        let idx1 = cluster.table_metrics(&idx_table).unwrap();
        let k = hits.len() as u64;
        assert_eq!(k, 1);
        let d_base = base1 - base0;
        let d_idx = idx1 - idx0;
        let expect = diff_index_core::read_cost(scheme, k as u32);
        assert_eq!(d_idx.scans, expect.index_read as u64, "{scheme}: index reads");
        // sync-insert does K base gets (per indexed column); others none.
        assert_eq!(d_base.gets, expect.base_read as u64, "{scheme}: base double-checks");
    }
}

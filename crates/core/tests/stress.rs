//! Concurrency stress tests: many client threads writing and reading
//! through Diff-Index while flushes, compactions, AUQ drains and crash
//! recovery happen underneath. The invariant is always the same: after the
//! dust settles, the index equals the projection of the base table, with no
//! lost or duplicated entries.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use diff_index_core::{verify_index, DiffIndex, IndexScheme, IndexSpec};
use diff_index_lsm::{LsmOptions, TableOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tempdir_lite::TempDir;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn small_lsm() -> LsmOptions {
    LsmOptions {
        memtable_flush_bytes: 8 * 1024, // frequent flushes under load
        table: TableOptions { block_size: 512, bloom_bits_per_key: 10 },
        compaction_trigger: 4,
        version_retention: u64::MAX,
        ..LsmOptions::default()
    }
}

fn stress(scheme: IndexScheme, threads: usize, ops_per_thread: usize) {
    let dir = TempDir::new("stress").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 6).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let handle =
        di.create_index(IndexSpec::single("ix", "item", "c", scheme), 6).unwrap();
    let spec = Arc::clone(&handle.spec);

    let version = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cluster = cluster.clone();
            let di = di.clone();
            let version = Arc::clone(&version);
            scope.spawn(move || {
                for i in 0..ops_per_thread {
                    // Rows hashed over the byte space so all regions see load.
                    let key = (t * ops_per_thread + i) % 64;
                    let row = format!(
                        "{}row{key:03}",
                        char::from((key as u32 * 97 % 250 + 1) as u8)
                    );
                    let ver = version.fetch_add(1, Ordering::Relaxed);
                    let val = format!("val{:02}", ver % 8);
                    cluster.put("item", row.as_bytes(), &[(b("c"), b(&val))]).unwrap();
                    if i % 7 == 0 {
                        // Interleave reads (exercises read-repair under
                        // concurrency for sync-insert).
                        let _ = di.get_by_index("item", "ix", val.as_bytes(), 100).unwrap();
                    }
                    if i % 23 == 0 && t == 0 {
                        cluster.flush_table("item").unwrap();
                    }
                }
            });
        }
    });
    di.quiesce("item");

    // Strong check: full index-vs-base verification must be clean (after
    // read-repairing any sync-insert staleness away).
    if scheme == IndexScheme::SyncInsert {
        // Drain staleness through reads (what production would do), then
        // verify; cleanse would also work but reads are the honest path.
        for v in 0..8 {
            let _ = di.get_by_index("item", "ix", format!("val{v:02}").as_bytes(), 10_000).unwrap();
        }
    }
    let report = verify_index(&cluster, &spec).unwrap();
    assert!(
        report.is_clean(),
        "scheme {scheme}: {} stale, {} missing after stress",
        report.stale_count(),
        report.missing_count()
    );
}

#[test]
fn stress_sync_full() {
    stress(IndexScheme::SyncFull, 4, 120);
}

#[test]
fn stress_sync_insert() {
    stress(IndexScheme::SyncInsert, 4, 120);
}

#[test]
fn stress_async_simple() {
    stress(IndexScheme::AsyncSimple, 4, 120);
}

#[test]
fn stress_with_crashes_async() {
    let dir = TempDir::new("stress-crash").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 6).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let handle =
        di.create_index(IndexSpec::single("ix", "item", "c", IndexScheme::AsyncSimple), 6)
            .unwrap();
    let spec = Arc::clone(&handle.spec);

    // Writers retry on ServerDown (the crash window); a chaos thread
    // crashes and recovers servers concurrently.
    let stop = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..3usize {
            let cluster = cluster.clone();
            scope.spawn(move || {
                for i in 0..150usize {
                    let key = (t * 150 + i) % 48;
                    let row = format!(
                        "{}row{key:03}",
                        char::from((key as u32 * 101 % 250 + 1) as u8)
                    );
                    let val = format!("val{:02}", (t * 150 + i) % 5);
                    // Retry through crash windows.
                    for _ in 0..200 {
                        match cluster.put("item", row.as_bytes(), &[(b("c"), b(&val))]) {
                            Ok(_) => break,
                            Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
                        }
                    }
                }
            });
        }
        let cluster2 = cluster.clone();
        let stop2 = Arc::clone(&stop);
        scope.spawn(move || {
            for round in 0..4u32 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let victim = round % 3;
                cluster2.crash_server(victim);
                std::thread::sleep(std::time::Duration::from_millis(10));
                cluster2.recover().unwrap();
                cluster2.restart_server(victim);
            }
            stop2.store(1, Ordering::Relaxed);
        });
    });
    di.quiesce("item");
    let report = verify_index(&cluster, &spec).unwrap();
    assert!(
        report.is_clean(),
        "{} stale, {} missing after chaos",
        report.stale_count(),
        report.missing_count()
    );
    // Every row readable; base scan agrees with per-row gets.
    let rows = cluster.scan_rows("item", b"", None, u64::MAX, usize::MAX).unwrap();
    assert!(!rows.is_empty());
}

#[test]
fn stress_with_crashes_sync_full_batched() {
    // The write-path acceptance test: concurrent *batched* puts on a
    // sync-full index while servers crash and recover. Every acked batch
    // must be durable (WAL replay restores it) and, once the retry queue
    // drains, the index must exactly match the base projection.
    let dir = TempDir::new("stress-crash-sf").unwrap();
    let cluster =
        Cluster::new(dir.path(), ClusterOptions { num_servers: 3, lsm: small_lsm() }).unwrap();
    cluster.create_table("item", 6).unwrap();
    let di = DiffIndex::new(cluster.clone());
    let handle =
        di.create_index(IndexSpec::single("ix", "item", "c", IndexScheme::SyncFull), 6).unwrap();
    let spec = Arc::clone(&handle.spec);

    std::thread::scope(|scope| {
        for t in 0..3usize {
            let cluster = cluster.clone();
            scope.spawn(move || {
                for chunk in 0..30usize {
                    let batch: Vec<(Bytes, Vec<(Bytes, Bytes)>)> = (0..8usize)
                        .map(|j| {
                            let key = (t * 240 + chunk * 8 + j) % 48;
                            let row = format!(
                                "{}row{key:03}",
                                char::from((key as u32 * 101 % 250 + 1) as u8)
                            );
                            let val = format!("val{:02}", (chunk * 8 + j) % 5);
                            (b(&row), vec![(b("c"), b(&val))])
                        })
                        .collect();
                    // Retry the whole batch through crash windows; re-puts
                    // land at fresh timestamps, so retries are harmless.
                    for _ in 0..200 {
                        match cluster.put_batch("item", &batch) {
                            Ok(_) => break,
                            Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
                        }
                    }
                }
            });
        }
        let cluster2 = cluster.clone();
        scope.spawn(move || {
            for round in 0..4u32 {
                std::thread::sleep(std::time::Duration::from_millis(25));
                let victim = round % 3;
                cluster2.crash_server(victim);
                std::thread::sleep(std::time::Duration::from_millis(10));
                cluster2.recover().unwrap();
                cluster2.restart_server(victim);
            }
        });
    });
    // Sync maintenance that failed during crash windows degraded to the
    // AUQ; drain it, then the index must be exactly the base projection.
    di.quiesce("item");
    let report = verify_index(&cluster, &spec).unwrap();
    assert!(
        report.is_clean(),
        "{} stale, {} missing after batched sync-full chaos",
        report.stale_count(),
        report.missing_count()
    );
    // One more crash + recovery with everything settled: replay must be
    // idempotent and leave the index intact.
    cluster.crash_server(0);
    cluster.recover().unwrap();
    di.quiesce("item");
    let report = verify_index(&cluster, &spec).unwrap();
    assert!(
        report.is_clean(),
        "{} stale, {} missing after post-settle crash replay",
        report.stale_count(),
        report.missing_count()
    );
}

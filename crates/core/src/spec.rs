//! Index definitions: what is indexed, and with which maintenance scheme.

use bytes::Bytes;
use std::fmt;

/// The four Diff-Index maintenance schemes (§3.4, Figure 4), ordered from
/// strongest to weakest consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexScheme {
    /// All index-update tasks complete synchronously (Algorithm 1):
    /// `PI`, `RB`, `DI` before the put is acknowledged. Causal consistent.
    SyncFull,
    /// Insert the new index entry synchronously; stale entries are
    /// lazily repaired at read time (Algorithm 2). Causal consistent
    /// *with read-repair*.
    SyncInsert,
    /// Enqueue index work on the AUQ and acknowledge immediately
    /// (Algorithms 3–4). Eventually consistent.
    AsyncSimple,
    /// `AsyncSimple` plus a client-side session cache providing
    /// read-your-writes semantics (§5.2). Session consistent.
    AsyncSession,
}

impl IndexScheme {
    /// The consistency level this scheme provides (Figure 4).
    pub fn consistency(self) -> ConsistencyLevel {
        match self {
            IndexScheme::SyncFull => ConsistencyLevel::Causal,
            IndexScheme::SyncInsert => ConsistencyLevel::CausalWithReadRepair,
            IndexScheme::AsyncSimple => ConsistencyLevel::Eventual,
            IndexScheme::AsyncSession => ConsistencyLevel::Session,
        }
    }

    /// All four schemes, strongest first.
    pub fn all() -> [IndexScheme; 4] {
        [
            IndexScheme::SyncFull,
            IndexScheme::SyncInsert,
            IndexScheme::AsyncSimple,
            IndexScheme::AsyncSession,
        ]
    }

    /// Short name used in the paper's figures (`full`, `insert`, `async`,
    /// `session`).
    pub fn short_name(self) -> &'static str {
        match self {
            IndexScheme::SyncFull => "full",
            IndexScheme::SyncInsert => "insert",
            IndexScheme::AsyncSimple => "async",
            IndexScheme::AsyncSession => "session",
        }
    }
}

impl fmt::Display for IndexScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Consistency levels of the Diff-Index spectrum (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsistencyLevel {
    /// Once a put returns SUCCESS, data and index are both persisted.
    Causal,
    /// Causal as long as the reader double-checks index hits against the
    /// base table (which `get_by_index` does automatically).
    CausalWithReadRepair,
    /// A session observes its own writes; others are eventual.
    Session,
    /// The index catches up eventually.
    Eventual,
}

/// Definition of one secondary index.
///
/// The index is *global* (§3.1): its table is partitioned across the whole
/// cluster by index value, independently of the base table's partitioning.
/// It is *key-only* (§4, Remark): an index row's key is
/// `value₁ ⊕ … ⊕ valueₙ ⊕ base-row-key` and its value is null.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name, unique per base table.
    pub name: String,
    /// Base table this index covers.
    pub base_table: String,
    /// Indexed column(s). More than one makes this a composite index (§7,
    /// "support for composite index"); a base row is indexed iff *all*
    /// indexed columns are present.
    pub columns: Vec<Bytes>,
    /// Maintenance scheme, chosen per index (§3.4: "schemes can be chosen
    /// in a per index manner").
    pub scheme: IndexScheme,
}

impl IndexSpec {
    /// Single-column index.
    pub fn single(
        name: impl Into<String>,
        base_table: impl Into<String>,
        column: impl Into<Bytes>,
        scheme: IndexScheme,
    ) -> Self {
        Self {
            name: name.into(),
            base_table: base_table.into(),
            columns: vec![column.into()],
            scheme,
        }
    }

    /// Composite index over several columns (in the given significance
    /// order).
    pub fn composite(
        name: impl Into<String>,
        base_table: impl Into<String>,
        columns: Vec<Bytes>,
        scheme: IndexScheme,
    ) -> Self {
        assert!(!columns.is_empty(), "composite index needs at least one column");
        Self { name: name.into(), base_table: base_table.into(), columns, scheme }
    }

    /// Name of the backing index table.
    pub fn index_table(&self) -> String {
        format!("__idx__{}__{}", self.base_table, self.name)
    }

    /// True if a put/delete touching `columns` affects this index.
    pub fn touches(&self, columns: &[Bytes]) -> bool {
        self.columns.iter().any(|ic| columns.iter().any(|c| c == ic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_mapping_matches_figure_4() {
        assert_eq!(IndexScheme::SyncFull.consistency(), ConsistencyLevel::Causal);
        assert_eq!(
            IndexScheme::SyncInsert.consistency(),
            ConsistencyLevel::CausalWithReadRepair
        );
        assert_eq!(IndexScheme::AsyncSimple.consistency(), ConsistencyLevel::Eventual);
        assert_eq!(IndexScheme::AsyncSession.consistency(), ConsistencyLevel::Session);
    }

    #[test]
    fn short_names_match_paper_legends() {
        let names: Vec<&str> = IndexScheme::all().iter().map(|s| s.short_name()).collect();
        assert_eq!(names, vec!["full", "insert", "async", "session"]);
        assert_eq!(IndexScheme::SyncFull.to_string(), "full");
    }

    #[test]
    fn index_table_name_is_namespaced() {
        let s = IndexSpec::single("title", "item", "item_title", IndexScheme::SyncFull);
        assert_eq!(s.index_table(), "__idx__item__title");
    }

    #[test]
    fn touches_detects_overlap() {
        let s = IndexSpec::composite(
            "t",
            "b",
            vec![Bytes::from("a"), Bytes::from("b")],
            IndexScheme::SyncInsert,
        );
        assert!(s.touches(&[Bytes::from("b"), Bytes::from("z")]));
        assert!(!s.touches(&[Bytes::from("z")]));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_composite_panics() {
        IndexSpec::composite("t", "b", vec![], IndexScheme::SyncFull);
    }
}

//! The store abstraction the index layer runs against.
//!
//! Diff-Index's read path, sessions, and verification tools only need the
//! client surface of the data store — puts, deletes, point reads, row
//! scans. [`Store`] captures exactly that surface, so the same scheme code
//! drives either the in-process [`Cluster`] or a
//! `net::RemoteClient` talking to region servers over TCP; the paper's
//! client library is precisely this indirection (§2.2, Figure 3).
//!
//! Index *maintenance* (observers + AUQ) is deliberately not part of the
//! trait: coprocessors run server-side, next to the data, in both
//! deployments. Remote index administration (`CREATE INDEX` etc.) travels
//! as dedicated admin requests with default implementations that reject on
//! backends that do not forward them.

use crate::spec::IndexSpec;
use bytes::Bytes;
use diff_index_cluster::{
    Cluster, ClusterError, ColumnValue, PutOutcome, Result as ClusterResult, RowGroup,
};
use diff_index_lsm::VersionedValue;

/// Client-visible operations of a Diff-Index data store. Implemented by the
/// in-process [`Cluster`] and by `net::RemoteClient`; everything in `core`
/// that runs client-side consumes this instead of a concrete backend.
///
/// Semantics mirror the [`Cluster`] methods of the same names, including
/// observer dispatch on `put`/`put_batch`/`put_returning`/`delete` and the
/// no-observer contract of `raw_put`/`raw_delete` (§4.3: index entries
/// carry their base entry's timestamp).
pub trait Store: Send + Sync {
    /// Client put with a server-assigned timestamp; observers run.
    fn put(&self, table: &str, row: &[u8], columns: &[ColumnValue]) -> ClusterResult<u64>;

    /// Batched client put; returns per-row timestamps in input order.
    fn put_batch(&self, table: &str, rows: &[(Bytes, Vec<ColumnValue>)])
        -> ClusterResult<Vec<u64>>;

    /// Put that also returns the values it replaced (§5.2 session client).
    fn put_returning(
        &self,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
    ) -> ClusterResult<PutOutcome>;

    /// Client delete of the named columns.
    fn delete(&self, table: &str, row: &[u8], columns: &[Bytes]) -> ClusterResult<u64>;

    /// Put at an explicit timestamp, no observer dispatch (index writes).
    fn raw_put(
        &self,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
        ts: u64,
    ) -> ClusterResult<()>;

    /// Delete at an explicit timestamp, no observer dispatch.
    fn raw_delete(&self, table: &str, row: &[u8], columns: &[Bytes], ts: u64)
        -> ClusterResult<()>;

    /// Read one column of one row at snapshot `ts` (`u64::MAX` = latest).
    fn get(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> ClusterResult<Option<VersionedValue>>;

    /// Newest cell (tombstones included) for one column: `(ts, is_tombstone)`.
    fn get_cell_versioned(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> ClusterResult<Option<(u64, bool)>>;

    /// All columns of one row at snapshot `ts`.
    fn get_row(&self, table: &str, row: &[u8], ts: u64)
        -> ClusterResult<Vec<(Bytes, VersionedValue)>>;

    /// Scan whole rows in `[start_row, end_row)` (row-boundary semantics).
    fn scan_rows(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>>;

    /// Scan whole rows whose row key starts with `row_prefix`.
    fn scan_rows_prefix(
        &self,
        table: &str,
        row_prefix: &[u8],
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>>;

    /// Scan whole rows under plain byte-string order (index range reads).
    fn scan_rows_range(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>>;

    /// Create a table pre-split into `num_regions` regions.
    fn create_table(&self, name: &str, num_regions: usize) -> ClusterResult<()>;

    /// True if `table` exists.
    fn has_table(&self, table: &str) -> ClusterResult<bool>;

    /// Flush every region of `table`.
    fn flush_table(&self, table: &str) -> ClusterResult<()>;

    // -- index administration (forwarded over the wire) ----------------------

    /// `CREATE INDEX` executed where the observers can be attached — on the
    /// server for a remote backend. The in-process backend never calls
    /// this: `DiffIndex` drives observer registration directly.
    fn admin_create_index(&self, _spec: &IndexSpec, _num_regions: usize) -> ClusterResult<()> {
        Err(ClusterError::Unavailable("index admin not supported by this store backend".into()))
    }

    /// `DROP INDEX` forwarded to wherever the observer lives.
    fn admin_drop_index(&self, _base_table: &str, _name: &str) -> ClusterResult<()> {
        Err(ClusterError::Unavailable("index admin not supported by this store backend".into()))
    }

    /// Block until every AUQ behind `base_table`'s indexes is empty.
    fn admin_quiesce(&self, _base_table: &str) -> ClusterResult<()> {
        Err(ClusterError::Unavailable("index admin not supported by this store backend".into()))
    }
}

impl Store for Cluster {
    fn put(&self, table: &str, row: &[u8], columns: &[ColumnValue]) -> ClusterResult<u64> {
        Cluster::put(self, table, row, columns)
    }

    fn put_batch(
        &self,
        table: &str,
        rows: &[(Bytes, Vec<ColumnValue>)],
    ) -> ClusterResult<Vec<u64>> {
        Cluster::put_batch(self, table, rows)
    }

    fn put_returning(
        &self,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
    ) -> ClusterResult<PutOutcome> {
        Cluster::put_returning(self, table, row, columns)
    }

    fn delete(&self, table: &str, row: &[u8], columns: &[Bytes]) -> ClusterResult<u64> {
        Cluster::delete(self, table, row, columns)
    }

    fn raw_put(
        &self,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
        ts: u64,
    ) -> ClusterResult<()> {
        Cluster::raw_put(self, table, row, columns, ts)
    }

    fn raw_delete(
        &self,
        table: &str,
        row: &[u8],
        columns: &[Bytes],
        ts: u64,
    ) -> ClusterResult<()> {
        Cluster::raw_delete(self, table, row, columns, ts)
    }

    fn get(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> ClusterResult<Option<VersionedValue>> {
        Cluster::get(self, table, row, column, ts)
    }

    fn get_cell_versioned(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> ClusterResult<Option<(u64, bool)>> {
        Cluster::get_cell_versioned(self, table, row, column, ts)
    }

    fn get_row(
        &self,
        table: &str,
        row: &[u8],
        ts: u64,
    ) -> ClusterResult<Vec<(Bytes, VersionedValue)>> {
        Cluster::get_row(self, table, row, ts)
    }

    fn scan_rows(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>> {
        Cluster::scan_rows(self, table, start_row, end_row, ts, limit)
    }

    fn scan_rows_prefix(
        &self,
        table: &str,
        row_prefix: &[u8],
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>> {
        Cluster::scan_rows_prefix(self, table, row_prefix, ts, limit)
    }

    fn scan_rows_range(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>> {
        Cluster::scan_rows_range(self, table, start_row, end_row, ts, limit)
    }

    fn create_table(&self, name: &str, num_regions: usize) -> ClusterResult<()> {
        Cluster::create_table(self, name, num_regions)
    }

    fn has_table(&self, table: &str) -> ClusterResult<bool> {
        Ok(Cluster::has_table(self, table))
    }

    fn flush_table(&self, table: &str) -> ClusterResult<()> {
        Cluster::flush_table(self, table)
    }
}

//! The Diff-Index coprocessors (§7, Figure 6): `SyncFullObserver`,
//! `SyncInsertObserver` and `AsyncObserver`, attached to index-enabled base
//! tables. They intercept every base-table mutation and maintain the index
//! according to the chosen scheme.
//!
//! All three share the concurrency-control invariant of §4.3: **an index
//! entry always carries the same timestamp as the base entry it is
//! associated with**, and old-entry operations happen at `t − δ`.

use crate::auq::{new_index_values, read_index_values, Admission, Auq, AuqOptions, IndexTask};
use crate::encoding::index_row;
use crate::error::Result;
use crate::spec::IndexSpec;
use bytes::Bytes;
use diff_index_cluster::{Cluster, ColumnValue, ReplayedOp, TableObserver};
use diff_index_lsm::DELTA;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Key-only index entry payload: one empty column with an empty value.
fn null_cell() -> Vec<ColumnValue> {
    vec![(Bytes::new(), Bytes::new())]
}

/// Chaos-testing switch (process-global): when set, the synchronous repair
/// arm performs its pre-image read and old-entry delete at the base
/// timestamp `t` instead of `t − δ` — deliberately violating §4.3. The
/// read-back then observes the *new* value, concludes old == new, skips the
/// delete, and permanently leaks the stale old-value entry. The chaos
/// harness flips this on to prove its consistency checkers catch exactly
/// this class of bug deterministically. Never set outside chaos tests.
static VIOLATE_DELTA: AtomicBool = AtomicBool::new(false);

/// Enable or disable the deliberate §4.3 violation (chaos testing only).
pub fn set_violate_delta(enabled: bool) {
    VIOLATE_DELTA.store(enabled, Ordering::SeqCst);
}

/// True while the deliberate §4.3 violation is enabled.
pub fn violate_delta_enabled() -> bool {
    VIOLATE_DELTA.load(Ordering::SeqCst)
}

/// The timestamp old-entry operations should use: `ts − δ` per §4.3, or
/// (under the injected violation) `ts` itself.
fn old_entry_ts(ts: u64) -> u64 {
    if violate_delta_enabled() {
        ts
    } else {
        ts - DELTA
    }
}

/// Shared synchronous index-update steps SU2–SU4 of Algorithm 1. `do_repair`
/// controls whether SU3/SU4 (read old value, delete old entry) run —
/// `sync-full` does, `sync-insert` skips them. Failed operations are pushed
/// to the AUQ instead of rolling back the base put (§6.2).
///
/// With `do_repair`, SU2 and the SU3→SU4 chain touch *different* index rows
/// (new-value entry vs old-value entry) in what are typically different
/// index regions, so they run in parallel on the cluster's fan-out pool.
/// The §4.3 invariant is untouched by the reordering: both arms carry fixed
/// timestamps (`ts` and `ts − δ`) assigned before the dispatch, so the index
/// state after both arms land is identical regardless of execution order.
fn sync_update(
    cluster: &Cluster,
    spec: &Arc<IndexSpec>,
    auq: &Arc<Auq>,
    row: &[u8],
    columns: &[ColumnValue],
    ts: u64,
    do_repair: bool,
) -> Result<()> {
    // SU1 pre-computation shared by both arms: the index values after this
    // put (reads the stored row only for composite columns the put missed).
    let new_vals = new_index_values(cluster, spec, row, columns, ts)?;
    if !do_repair {
        // SU2 only — no repair arm, nothing to fan out.
        if let Some(vals) = &new_vals {
            let new_key = index_row(vals, row);
            if cluster.raw_put(&spec.index_table(), &new_key, &null_cell(), ts).is_err() {
                if let Admission::Rejected(n) =
                    auq.enqueue(IndexTask::PutIndex { index_row: new_key, ts })
                {
                    return Err(crate::error::IndexError::AuqFull { rejected: n });
                }
            }
        }
        return Ok(());
    }

    type Arm = Box<dyn FnOnce() -> Result<Vec<IndexTask>> + Send + 'static>;
    let row = Bytes::copy_from_slice(row);
    let mut arms: Vec<Arm> = Vec::with_capacity(2);
    {
        // SU2: put the new index entry, with the base timestamp.
        let cluster = cluster.clone();
        let spec = Arc::clone(spec);
        let new_vals = new_vals.clone();
        let row = row.clone();
        arms.push(Box::new(move || {
            if let Some(vals) = &new_vals {
                let new_key = index_row(vals, &row);
                if cluster.raw_put(&spec.index_table(), &new_key, &null_cell(), ts).is_err() {
                    return Ok(vec![IndexTask::PutIndex { index_row: new_key, ts }]);
                }
            }
            Ok(Vec::new())
        }));
    }
    {
        // SU3: read the pre-image — RB(k, tnew − δ).
        // SU4: delete the old entry at tnew − δ. The δ matters twice (§4.3):
        // reading at tnew would see the new value; deleting at tnew would
        // kill the entry just written when vold == vnew. Skipping the delete
        // when the values are equal avoids pointless work.
        let cluster = cluster.clone();
        let spec = Arc::clone(spec);
        arms.push(Box::new(move || {
            let old_ts = old_entry_ts(ts);
            let old_vals = read_index_values(&cluster, &spec, &row, old_ts)?;
            if let Some(old) = old_vals {
                if Some(&old) != new_vals.as_ref() {
                    let old_key = index_row(&old, &row);
                    if cluster
                        .raw_delete(&spec.index_table(), &old_key, &[Bytes::new()], old_ts)
                        .is_err()
                    {
                        return Ok(vec![IndexTask::DeleteIndex {
                            index_row: old_key,
                            ts: old_ts,
                        }]);
                    }
                }
            }
            Ok(Vec::new())
        }));
    }

    let metrics = auq.metrics();
    metrics.fanout_dispatches.fetch_add(1, Ordering::Relaxed);
    metrics.fanout_tasks.fetch_add(arms.len() as u64, Ordering::Relaxed);
    let results = cluster.fanout().run(arms);

    // Failed index ops degrade to the AUQ as one atomically admitted batch;
    // a read error in either arm surfaces after both arms have finished
    // (matching the sequential code, where SU2's enqueue preceded an SU3
    // read error).
    let mut retries = Vec::new();
    let mut first_err = None;
    for result in results {
        match result {
            Ok(mut tasks) => retries.append(&mut tasks),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Admission::Rejected(n) = auq.enqueue_many(retries) {
        if first_err.is_none() {
            first_err = Some(crate::error::IndexError::AuqFull { rejected: n });
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Synchronous handling of a base delete: remove the index entry of the
/// pre-image (used by `sync-full`; `sync-insert` leaves it for read-repair).
fn sync_delete(
    cluster: &Cluster,
    spec: &IndexSpec,
    auq: &Auq,
    row: &[u8],
    ts: u64,
) -> Result<()> {
    if let Some(old) = read_index_values(cluster, spec, row, ts - DELTA)? {
        let old_key = index_row(&old, row);
        if cluster
            .raw_delete(&spec.index_table(), &old_key, &[Bytes::new()], ts - DELTA)
            .is_err()
        {
            if let Admission::Rejected(n) =
                auq.enqueue(IndexTask::DeleteIndex { index_row: old_key, ts: ts - DELTA })
            {
                return Err(crate::error::IndexError::AuqFull { rejected: n });
            }
        }
    }
    Ok(())
}

macro_rules! replay_and_flush_impl {
    () => {
        fn pre_flush(&self, _cluster: &Cluster, _table: &str) {
            // Figure 5: pause intake, drain pending work, then let the base
            // memtable flush and roll its WAL forward — this keeps
            // PR(Flushed) = ∅ so the WAL stays a valid log for the AUQ.
            self.auq.pause_and_drain();
        }

        fn post_flush(&self, _cluster: &Cluster, _table: &str) {
            self.auq.resume();
        }

        fn pre_recovery(&self, _cluster: &Cluster, _table: &str) {
            // §5.3: the AUQ is blocked inside the recovery window. Workers
            // hold (tasks routed to dead regions would only burn retries
            // against ServerDown) while intake stays open so WAL-replay
            // re-enqueues land in the queue; any capacity bound is waived
            // under the hold so the handover cannot deadlock.
            self.auq.hold_for_recovery();
        }

        fn post_recovery(&self, _cluster: &Cluster, _table: &str) {
            // Regions are reassigned and replayed; queued tasks now drain
            // against their new owners — the AUQ handover.
            self.auq.release_recovery_hold();
        }

        fn post_replay(&self, _cluster: &Cluster, _table: &str, op: &ReplayedOp) -> Result2<()> {
            // §5.3: every replayed base op is re-enqueued, whether or not it
            // was delivered before the crash. Idempotent because the index
            // entry timestamp equals the base timestamp.
            match op {
                ReplayedOp::Put { row, column, value, ts } => {
                    if self.spec.columns.iter().any(|c| c.as_ref() == column.as_slice()) {
                        self.auq.enqueue(IndexTask::Maintain {
                            row: Bytes::copy_from_slice(row),
                            ts: *ts,
                            is_delete: false,
                            put_columns: vec![(
                                Bytes::copy_from_slice(column),
                                value.clone(),
                            )],
                        });
                    }
                }
                ReplayedOp::Delete { row, column, ts } => {
                    if self.spec.columns.iter().any(|c| c.as_ref() == column.as_slice()) {
                        self.auq.enqueue(IndexTask::Maintain {
                            row: Bytes::copy_from_slice(row),
                            ts: *ts,
                            is_delete: true,
                            put_columns: Vec::new(),
                        });
                    }
                }
            }
            Ok(())
        }
    };
}

use diff_index_cluster::Result as Result2;

/// Coprocessor for the `sync-full` scheme (Algorithm 1).
pub struct SyncFullObserver {
    spec: Arc<IndexSpec>,
    auq: Arc<Auq>,
}

/// Coprocessor for the `sync-insert` scheme (§4.2).
pub struct SyncInsertObserver {
    spec: Arc<IndexSpec>,
    auq: Arc<Auq>,
}

/// Coprocessor for `async-simple` and `async-session` (Algorithms 3–4);
/// session consistency is layered on the client side (§5.2), so the server
/// side of both schemes is identical.
pub struct AsyncObserver {
    spec: Arc<IndexSpec>,
    auq: Arc<Auq>,
}

impl SyncFullObserver {
    /// Build the observer (and its failure-retry AUQ) for `spec`.
    pub fn new(cluster: &Cluster, spec: Arc<IndexSpec>) -> Self {
        Self::with_workers(cluster, spec, 1)
    }

    /// Like [`SyncFullObserver::new`] with `workers` retry-queue threads.
    pub fn with_workers(cluster: &Cluster, spec: Arc<IndexSpec>, workers: usize) -> Self {
        Self::with_options(cluster, spec, AuqOptions { workers, ..AuqOptions::default() })
    }

    /// Full control over the retry queue: worker count, capacity bound and
    /// admission policy.
    pub fn with_options(cluster: &Cluster, spec: Arc<IndexSpec>, opts: AuqOptions) -> Self {
        let auq = Auq::start_with_options(cluster.downgrade(), Arc::clone(&spec), opts);
        Self { spec, auq }
    }

    /// The failure-retry queue.
    pub fn auq(&self) -> &Arc<Auq> {
        &self.auq
    }
}

impl SyncInsertObserver {
    /// Build the observer (and its failure-retry AUQ) for `spec`.
    pub fn new(cluster: &Cluster, spec: Arc<IndexSpec>) -> Self {
        Self::with_workers(cluster, spec, 1)
    }

    /// Like [`SyncInsertObserver::new`] with `workers` retry-queue threads.
    pub fn with_workers(cluster: &Cluster, spec: Arc<IndexSpec>, workers: usize) -> Self {
        Self::with_options(cluster, spec, AuqOptions { workers, ..AuqOptions::default() })
    }

    /// Full control over the retry queue: worker count, capacity bound and
    /// admission policy.
    pub fn with_options(cluster: &Cluster, spec: Arc<IndexSpec>, opts: AuqOptions) -> Self {
        let auq = Auq::start_with_options(cluster.downgrade(), Arc::clone(&spec), opts);
        Self { spec, auq }
    }

    /// The failure-retry queue.
    pub fn auq(&self) -> &Arc<Auq> {
        &self.auq
    }
}

impl AsyncObserver {
    /// Build the observer and its AUQ/APS for `spec`.
    pub fn new(cluster: &Cluster, spec: Arc<IndexSpec>) -> Self {
        Self::with_workers(cluster, spec, 1)
    }

    /// Like [`AsyncObserver::new`] with `workers` APS threads draining the
    /// queue in parallel — the knob behind the paper's observation that APS
    /// throughput bounds index staleness (§8.4, Figure 11).
    pub fn with_workers(cluster: &Cluster, spec: Arc<IndexSpec>, workers: usize) -> Self {
        Self::with_options(cluster, spec, AuqOptions { workers, ..AuqOptions::default() })
    }

    /// Full control over the queue: worker count, capacity bound and
    /// admission policy — a bounded queue turns a wedged or lagging APS
    /// into backpressure (`Block`) or fast-fail (`Reject`) instead of
    /// unbounded memory growth.
    pub fn with_options(cluster: &Cluster, spec: Arc<IndexSpec>, opts: AuqOptions) -> Self {
        let auq = Auq::start_with_options(cluster.downgrade(), Arc::clone(&spec), opts);
        Self { spec, auq }
    }

    /// The asynchronous update queue.
    pub fn auq(&self) -> &Arc<Auq> {
        &self.auq
    }
}

impl TableObserver for SyncFullObserver {
    fn post_put(
        &self,
        cluster: &Cluster,
        _table: &str,
        row: &[u8],
        columns: &[ColumnValue],
        ts: u64,
    ) -> Result2<()> {
        if !self.spec.touches(&columns.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>()) {
            return Ok(());
        }
        sync_update(cluster, &self.spec, &self.auq, row, columns, ts, true)
            .map_err(into_cluster_err)
    }

    fn post_delete(
        &self,
        cluster: &Cluster,
        _table: &str,
        row: &[u8],
        columns: &[Bytes],
        ts: u64,
    ) -> Result2<()> {
        if !self.spec.touches(columns) {
            return Ok(());
        }
        sync_delete(cluster, &self.spec, &self.auq, row, ts).map_err(into_cluster_err)
    }

    replay_and_flush_impl!();
}

impl TableObserver for SyncInsertObserver {
    fn post_put(
        &self,
        cluster: &Cluster,
        _table: &str,
        row: &[u8],
        columns: &[ColumnValue],
        ts: u64,
    ) -> Result2<()> {
        if !self.spec.touches(&columns.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>()) {
            return Ok(());
        }
        // SU1–SU2 only: the old entry is left stale, to be repaired by the
        // read path (Algorithm 2).
        sync_update(cluster, &self.spec, &self.auq, row, columns, ts, false)
            .map_err(into_cluster_err)
    }

    fn post_delete(
        &self,
        _cluster: &Cluster,
        _table: &str,
        _row: &[u8],
        _columns: &[Bytes],
        _ts: u64,
    ) -> Result2<()> {
        // Nothing: the now-stale entry is repaired at read time.
        Ok(())
    }

    replay_and_flush_impl!();
}

impl TableObserver for AsyncObserver {
    fn post_put(
        &self,
        _cluster: &Cluster,
        _table: &str,
        row: &[u8],
        columns: &[ColumnValue],
        ts: u64,
    ) -> Result2<()> {
        // AU1 (Algorithm 3): the base put is already logged + in the
        // memtable; just enqueue and return, the client is acked right away.
        if !self.spec.touches(&columns.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>()) {
            return Ok(());
        }
        match self.auq.enqueue(IndexTask::Maintain {
            row: Bytes::copy_from_slice(row),
            ts,
            is_delete: false,
            put_columns: columns.to_vec(),
        }) {
            Admission::Admitted => Ok(()),
            Admission::Rejected(n) => {
                Err(into_cluster_err(crate::error::IndexError::AuqFull { rejected: n }))
            }
        }
    }

    fn post_delete(
        &self,
        _cluster: &Cluster,
        _table: &str,
        row: &[u8],
        columns: &[Bytes],
        ts: u64,
    ) -> Result2<()> {
        if !self.spec.touches(columns) {
            return Ok(());
        }
        match self.auq.enqueue(IndexTask::Maintain {
            row: Bytes::copy_from_slice(row),
            ts,
            is_delete: true,
            put_columns: Vec::new(),
        }) {
            Admission::Admitted => Ok(()),
            Admission::Rejected(n) => {
                Err(into_cluster_err(crate::error::IndexError::AuqFull { rejected: n }))
            }
        }
    }

    replay_and_flush_impl!();
}

fn into_cluster_err(e: crate::error::IndexError) -> diff_index_cluster::ClusterError {
    match e {
        crate::error::IndexError::Cluster(c) => c,
        other => diff_index_cluster::ClusterError::Unavailable(other.to_string()),
    }
}

impl Drop for SyncFullObserver {
    fn drop(&mut self) {
        self.auq.shutdown();
    }
}

impl Drop for SyncInsertObserver {
    fn drop(&mut self) {
        self.auq.shutdown();
    }
}

impl Drop for AsyncObserver {
    fn drop(&mut self) {
        self.auq.shutdown();
    }
}

//! # diff-index-core
//!
//! Reproduction of **Diff-Index: Differentiated Index in Distributed
//! Log-Structured Data Stores** (Tan, Tata, Tang, Fong — EDBT 2014): a
//! spectrum of global secondary-index maintenance schemes for distributed
//! LSM stores, trading index consistency against update/read latency under
//! the CAP theorem.
//!
//! The four schemes (§3.4, Figure 4):
//!
//! | scheme | update path | read path | consistency |
//! |---|---|---|---|
//! | [`IndexScheme::SyncFull`]   | `PB` + `PI`,`RB`,`DI` sync | 1 index read | causal |
//! | [`IndexScheme::SyncInsert`] | `PB` + `PI` sync | index read + K base checks (read-repair) | causal w/ read-repair |
//! | [`IndexScheme::AsyncSimple`]| `PB` + AUQ enqueue | 1 index read (maybe stale) | eventual |
//! | [`IndexScheme::AsyncSession`]| as async + session cache | merged with session state | session (read-your-writes) |
//!
//! ## Quick example
//!
//! ```
//! use diff_index_cluster::{Cluster, ClusterOptions};
//! use diff_index_core::{DiffIndex, IndexScheme, IndexSpec};
//! use bytes::Bytes;
//!
//! let dir = tempdir_lite::TempDir::new("doc").unwrap();
//! let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
//! cluster.create_table("reviews", 4).unwrap();
//! let di = DiffIndex::new(cluster.clone());
//! di.create_index(
//!     IndexSpec::single("by_product", "reviews", "product_id", IndexScheme::SyncFull),
//!     4,
//! ).unwrap();
//! cluster.put("reviews", b"rev1", &[(Bytes::from("product_id"), Bytes::from("p42"))]).unwrap();
//! let hits = di.get_by_index("reviews", "by_product", b"p42", 100).unwrap();
//! assert_eq!(hits[0].row, Bytes::from("rev1"));
//! ```

#![warn(missing_docs)]

pub mod admin;
pub mod advisor;
pub mod auq;
pub mod cost;
pub mod encoding;
pub mod error;
pub mod history;
pub mod observers;
pub mod read;
pub mod session;
pub mod spec;
pub mod store;
pub mod verify;

pub use admin::{DiffIndex, IndexHandle};
pub use auq::{Admission, AdmissionPolicy, Auq, AuqMetrics, AuqOptions, IndexTask};
pub use cost::{index_update_latency, read_cost, update_cost, IoCost};
pub use error::{IndexError, Result};
pub use history::{History, RecordingStore, WriteKind, WriteOutcome, WriteRecord};
pub use observers::{set_violate_delta, violate_delta_enabled};
pub use read::IndexHit;
pub use session::{Session, SessionConfig};
pub use advisor::{recommend, Recommendation, Requirements, WorkloadStats};
pub use spec::{ConsistencyLevel, IndexScheme, IndexSpec};
pub use store::Store;
pub use verify::{cleanse_index, verify_index, Divergence, VerifyReport};

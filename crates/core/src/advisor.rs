//! Scheme selection advisor.
//!
//! §3.4 ends with: *"Ideally Diff-Index should be able to adaptively choose
//! a scheme by understanding consistency requirements and observing
//! workload characteristics such as read/write ratio. Currently user
//! selection is required and we leave adaptive scheme selection for future
//! work."* — this module implements that future work: the five selection
//! principles of §3.4 codified over observed workload statistics.

use crate::spec::IndexScheme;
use std::sync::atomic::{AtomicU64, Ordering};

/// Application requirements for one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requirements {
    /// The application needs the index to reflect every acknowledged write
    /// (principles 1–3 apply; async schemes are out).
    pub needs_consistency: bool,
    /// The application needs read-your-writes within a client session
    /// (principle 5).
    pub needs_read_your_writes: bool,
}

/// Live workload counters, fed by the application or by instrumentation.
#[derive(Debug, Default)]
pub struct WorkloadStats {
    /// Index updates observed.
    pub updates: AtomicU64,
    /// Index reads observed.
    pub reads: AtomicU64,
}

impl WorkloadStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` updates.
    pub fn record_updates(&self, n: u64) {
        self.updates.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` index reads.
    pub fn record_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Fraction of operations that are updates (0.5 when no data).
    pub fn update_fraction(&self) -> f64 {
        let u = self.updates.load(Ordering::Relaxed) as f64;
        let r = self.reads.load(Ordering::Relaxed) as f64;
        if u + r == 0.0 {
            0.5
        } else {
            u / (u + r)
        }
    }
}

/// A recommendation with its §3.4 rationale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// The recommended scheme.
    pub scheme: IndexScheme,
    /// Which §3.4 principle drove the choice.
    pub principle: &'static str,
}

/// Apply the §3.4 principles to the observed workload:
///
/// 1. use `sync-full` or `sync-insert` when consistency is needed;
/// 2. use `sync-full` when read latency is critical;
/// 3. use `sync-insert` when update latency is critical;
/// 4. use `async-simple` when consistency is not a concern;
/// 5. use `async-session` when read-your-write semantics is needed.
///
/// "Critical" is inferred from the read/write ratio: a write-heavy workload
/// makes update latency critical, a read-heavy one read latency.
pub fn recommend(req: Requirements, stats: &WorkloadStats) -> Recommendation {
    if req.needs_read_your_writes && !req.needs_consistency {
        return Recommendation {
            scheme: IndexScheme::AsyncSession,
            principle: "(5) read-your-write semantics is needed",
        };
    }
    if !req.needs_consistency {
        return Recommendation {
            scheme: IndexScheme::AsyncSimple,
            principle: "(4) consistency is not a concern",
        };
    }
    // Consistency needed: choose between the synchronous schemes (1).
    if stats.update_fraction() >= 0.5 {
        Recommendation {
            scheme: IndexScheme::SyncInsert,
            principle: "(3) update latency is critical (write-heavy workload)",
        }
    } else {
        Recommendation {
            scheme: IndexScheme::SyncFull,
            principle: "(2) read latency is critical (read-heavy workload)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(updates: u64, reads: u64) -> WorkloadStats {
        let s = WorkloadStats::new();
        s.record_updates(updates);
        s.record_reads(reads);
        s
    }

    #[test]
    fn session_semantics_wins_when_requested() {
        let r = recommend(
            Requirements { needs_consistency: false, needs_read_your_writes: true },
            &stats(0, 0),
        );
        assert_eq!(r.scheme, IndexScheme::AsyncSession);
    }

    #[test]
    fn no_consistency_means_async_simple() {
        let r = recommend(
            Requirements { needs_consistency: false, needs_read_your_writes: false },
            &stats(1000, 1000),
        );
        assert_eq!(r.scheme, IndexScheme::AsyncSimple);
    }

    #[test]
    fn write_heavy_consistent_workload_gets_sync_insert() {
        let r = recommend(
            Requirements { needs_consistency: true, needs_read_your_writes: false },
            &stats(9000, 1000),
        );
        assert_eq!(r.scheme, IndexScheme::SyncInsert);
        assert!(r.principle.contains("update latency"));
    }

    #[test]
    fn read_heavy_consistent_workload_gets_sync_full() {
        let r = recommend(
            Requirements { needs_consistency: true, needs_read_your_writes: false },
            &stats(100, 9900),
        );
        assert_eq!(r.scheme, IndexScheme::SyncFull);
        assert!(r.principle.contains("read latency"));
    }

    #[test]
    fn consistency_plus_session_prefers_sync() {
        // Read-your-writes is implied by causal consistency; the stronger
        // requirement dominates.
        let r = recommend(
            Requirements { needs_consistency: true, needs_read_your_writes: true },
            &stats(100, 100),
        );
        assert!(matches!(r.scheme, IndexScheme::SyncFull | IndexScheme::SyncInsert));
    }

    #[test]
    fn empty_stats_default_is_sane() {
        let s = WorkloadStats::new();
        assert_eq!(s.update_fraction(), 0.5);
        let r = recommend(
            Requirements { needs_consistency: true, needs_read_your_writes: false },
            &s,
        );
        assert_eq!(r.scheme, IndexScheme::SyncInsert, "ties lean write-optimized (LSM)");
    }

    #[test]
    fn recommendation_shifts_as_workload_shifts() {
        let s = stats(10, 1000);
        let before = recommend(
            Requirements { needs_consistency: true, needs_read_your_writes: false },
            &s,
        );
        assert_eq!(before.scheme, IndexScheme::SyncFull);
        s.record_updates(100_000);
        let after = recommend(
            Requirements { needs_consistency: true, needs_read_your_writes: false },
            &s,
        );
        assert_eq!(after.scheme, IndexScheme::SyncInsert);
    }
}

//! The Asynchronous Update Queue (AUQ) and its Asynchronous Processing
//! Service (APS) — §5.1 and §5.3 of the paper.
//!
//! * `async-simple` / `async-session` enqueue *all* index maintenance here
//!   and acknowledge the client immediately (Algorithm 3); the APS worker
//!   drains the queue in the background (Algorithm 4).
//! * The synchronous schemes enqueue *failed* index operations here, which
//!   is how causal consistency degrades gracefully to eventual instead of
//!   rolling back the base put (§6.2, Atomicity/Durability).
//! * Failure recovery (Figure 5): `pause()` blocks new enqueues, the queue
//!   is drained before the base memtable flushes (so `PR(Flushed) = ∅`),
//!   then `resume()` reopens intake after the WAL rolls forward. During WAL
//!   replay every restored base put is re-enqueued; re-delivery is
//!   idempotent because index entries carry their base entry's timestamp.

use crate::encoding::index_row;
use crate::spec::IndexSpec;
use bytes::Bytes;
use diff_index_cluster::{Cluster, ColumnValue, WeakCluster};
use diff_index_lsm::DELTA;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on re-delivery attempts for a failing task. The paper retries
/// "until eventually success"; a bound keeps a permanently broken cluster
/// from spinning forever, and is generous enough to survive any transient
/// unavailability window (e.g. a crashed server awaiting recovery).
const MAX_RETRIES: u32 = 64;

/// What to do when a bounded queue is at capacity (backpressure policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the producer until workers free space — backpressure
    /// propagates to the writer, no task is ever turned away. The default.
    Block,
    /// Turn the overflowing batch away immediately
    /// ([`Admission::Rejected`]); the producer decides what to do with it.
    Reject,
}

/// Outcome of an enqueue attempt against a bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Every task of the batch was accepted.
    Admitted,
    /// The queue was full under [`AdmissionPolicy::Reject`]: the whole
    /// batch (this many tasks) was turned away. All-or-nothing, so a flush
    /// drain never observes half of one base operation's tasks.
    Rejected(usize),
}

/// Construction options for [`Auq::start_with_options`].
#[derive(Debug, Clone)]
pub struct AuqOptions {
    /// APS worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Queue capacity; `usize::MAX` = unbounded (the default). The bound is
    /// soft by one batch: a batch admitted into remaining space may
    /// overshoot, and §5.3 recovery handover is exempt (see
    /// [`Auq::hold_for_recovery`]).
    pub capacity: usize,
    /// What to do with a batch that finds the queue full.
    pub policy: AdmissionPolicy,
}

impl Default for AuqOptions {
    fn default() -> Self {
        Self { workers: 1, capacity: usize::MAX, policy: AdmissionPolicy::Block }
    }
}

/// One unit of deferred index work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexTask {
    /// Full asynchronous maintenance for one observed base operation
    /// (Algorithm 4: `RB`, `DI`, `PI`). Carries the written columns, as the
    /// paper's AUQ carries the put `⟨k, vnew, tnew⟩` itself — the new value
    /// does not need a second base read.
    Maintain {
        /// Base row that was written.
        row: Bytes,
        /// Timestamp of the base operation.
        ts: u64,
        /// True if the base operation was a delete.
        is_delete: bool,
        /// The columns the observed put wrote (empty for deletes).
        put_columns: Vec<ColumnValue>,
    },
    /// Retry of a failed synchronous index insert (`PI`).
    PutIndex {
        /// Fully built index row key.
        index_row: Bytes,
        /// Timestamp to write with (== base entry timestamp).
        ts: u64,
    },
    /// Retry of a failed synchronous index delete (`DI`).
    DeleteIndex {
        /// Fully built index row key.
        index_row: Bytes,
        /// Timestamp to delete at.
        ts: u64,
    },
}

struct State {
    queue: VecDeque<(IndexTask, u32)>,
    paused: bool,
    in_flight: usize,
    shutdown: bool,
    /// §5.3 recovery window: workers stop popping (queued tasks addressed
    /// to dead regions stop burning their retry budget) while intake stays
    /// open for WAL-replay re-enqueues; the whole backlog drains against
    /// the regions' new owners on release.
    held: bool,
}

/// Cumulative AUQ counters plus staleness (index-after-data time-lag)
/// statistics, the measurement behind Figure 11.
#[derive(Debug, Default)]
pub struct AuqMetrics {
    /// Tasks accepted into the queue.
    pub enqueued: AtomicU64,
    /// Tasks completed successfully.
    pub completed: AtomicU64,
    /// Execution failures that led to a retry.
    pub retries: AtomicU64,
    /// Tasks dropped after exhausting retries.
    pub dropped: AtomicU64,
    /// Sum of (completion wall time − base timestamp) in ms.
    pub lag_sum_ms: AtomicU64,
    /// Maximum observed lag in ms.
    pub lag_max_ms: AtomicU64,
    /// Synchronous index updates whose SU2 (new-entry put) and SU3/SU4
    /// (pre-image read + old-entry delete) arms were dispatched in parallel.
    pub fanout_dispatches: AtomicU64,
    /// Total parallel sub-operations those dispatches fanned out.
    pub fanout_tasks: AtomicU64,
    /// Tasks turned away by a full queue under [`AdmissionPolicy::Reject`].
    pub auq_rejections: AtomicU64,
    /// Deepest queue depth ever observed (after an admission).
    pub high_watermark: AtomicU64,
    /// §5.3 recovery windows this queue was held through (AUQ handover).
    pub recovery_holds: AtomicU64,
}

impl AuqMetrics {
    fn record_lag(&self, lag_ms: u64) {
        self.lag_sum_ms.fetch_add(lag_ms, Ordering::Relaxed);
        self.lag_max_ms.fetch_max(lag_ms, Ordering::Relaxed);
    }

    /// Mean index-after-data lag over completed `Maintain` tasks, in ms.
    pub fn mean_lag_ms(&self) -> f64 {
        let n = self.completed.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        self.lag_sum_ms.load(Ordering::Relaxed) as f64 / n as f64
    }
}

/// The queue plus its background workers, bound to one index.
pub struct Auq {
    state: Mutex<State>,
    cv: Condvar,
    cluster: WeakCluster,
    spec: Arc<IndexSpec>,
    metrics: Arc<AuqMetrics>,
    workers: usize,
    capacity: usize,
    policy: AdmissionPolicy,
    /// Chaos-testing switch: while set, APS workers stop pulling tasks
    /// (the queue keeps accepting), simulating a wedged processing service.
    /// A flush's `pause_and_drain` overrides the stall — the drain contract
    /// (`PR(Flushed) = ∅`, Figure 5) must hold even mid-chaos, or the base
    /// flush would deadlock behind an injected fault.
    stalled: AtomicBool,
}

impl std::fmt::Debug for Auq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("Auq")
            .field("index", &self.spec.name)
            .field("queued", &s.queue.len())
            .field("paused", &s.paused)
            .finish()
    }
}

impl Auq {
    /// Create the queue and start a single APS worker thread.
    pub fn start(cluster: WeakCluster, spec: Arc<IndexSpec>) -> Arc<Self> {
        Self::start_with_workers(cluster, spec, 1)
    }

    /// Create the queue and start `workers` APS worker threads (at least
    /// one). Tasks are pulled from the shared queue by whichever worker is
    /// free, so index maintenance for independent rows proceeds in parallel;
    /// §5.1's per-task protocol is unchanged. Note that tasks for the *same*
    /// row may then complete out of order — harmless, because every index
    /// entry carries its base entry's timestamp (§4.3), making delivery
    /// commutative.
    pub fn start_with_workers(
        cluster: WeakCluster,
        spec: Arc<IndexSpec>,
        workers: usize,
    ) -> Arc<Self> {
        Self::start_with_options(cluster, spec, AuqOptions { workers, ..AuqOptions::default() })
    }

    /// Create the queue with explicit worker count, capacity, and admission
    /// policy. An unbounded `capacity` (the default) reproduces the paper's
    /// AUQ exactly; a bound adds backpressure so a wedged APS cannot grow
    /// the queue without limit.
    pub fn start_with_options(
        cluster: WeakCluster,
        spec: Arc<IndexSpec>,
        opts: AuqOptions,
    ) -> Arc<Self> {
        let workers = opts.workers.max(1);
        let auq = Arc::new(Self {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                paused: false,
                in_flight: 0,
                shutdown: false,
                held: false,
            }),
            cv: Condvar::new(),
            cluster,
            spec,
            metrics: Arc::new(AuqMetrics::default()),
            workers,
            capacity: opts.capacity.max(1),
            policy: opts.policy,
            stalled: AtomicBool::new(false),
        });
        for i in 0..workers {
            let worker = Arc::clone(&auq);
            std::thread::Builder::new()
                .name(format!("aps-{}-{i}", worker.spec.name))
                .spawn(move || worker.aps_loop())
                .expect("spawn APS worker");
        }
        auq
    }

    /// Number of APS worker threads serving this queue.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queue capacity (`usize::MAX` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admission policy applied when the queue is full.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Counters and staleness statistics.
    pub fn metrics(&self) -> &Arc<AuqMetrics> {
        &self.metrics
    }

    /// Add a task. Blocks while the queue is paused for a flush drain —
    /// the paper's "block the AUQ from receiving new entries" (§5.3) — and,
    /// for a bounded queue under [`AdmissionPolicy::Block`], while the
    /// queue is at capacity. Under [`AdmissionPolicy::Reject`] a full queue
    /// answers [`Admission::Rejected`] instead.
    pub fn enqueue(&self, task: IndexTask) -> Admission {
        self.enqueue_many(std::iter::once(task))
    }

    /// Add a batch of tasks under one queue lock with a single worker
    /// wake-up. The blocking-while-paused contract matches [`Auq::enqueue`];
    /// the whole batch is admitted (or rejected) atomically, so a flush
    /// drain never splits the tasks of one base operation across a pause
    /// boundary. While a §5.3 recovery window is open
    /// ([`Auq::hold_for_recovery`]) the capacity bound is waived: handover
    /// re-enqueues must never deadlock against held workers.
    pub fn enqueue_many<I: IntoIterator<Item = IndexTask>>(&self, tasks: I) -> Admission {
        let batch: Vec<IndexTask> = tasks.into_iter().collect();
        if batch.is_empty() {
            return Admission::Admitted;
        }
        let mut s = self.state.lock();
        loop {
            if s.shutdown {
                return Admission::Admitted;
            }
            if s.paused {
                self.cv.wait(&mut s);
                continue;
            }
            if s.queue.len() < self.capacity || s.held {
                break;
            }
            match self.policy {
                AdmissionPolicy::Reject => {
                    let n = batch.len();
                    self.metrics.auq_rejections.fetch_add(n as u64, Ordering::Relaxed);
                    return Admission::Rejected(n);
                }
                AdmissionPolicy::Block => self.cv.wait(&mut s),
            }
        }
        let mut n = 0u64;
        for task in batch {
            s.queue.push_back((task, 0));
            n += 1;
        }
        self.metrics.enqueued.fetch_add(n, Ordering::Relaxed);
        self.metrics.high_watermark.fetch_max(s.queue.len() as u64, Ordering::Relaxed);
        self.cv.notify_all();
        Admission::Admitted
    }

    /// Pause intake and wait until every queued and in-flight task has been
    /// executed (Figure 5, "1. pause & drain"). The caller must later call
    /// [`Auq::resume`].
    pub fn pause_and_drain(&self) {
        let mut s = self.state.lock();
        s.paused = true;
        self.cv.notify_all();
        while !s.queue.is_empty() || s.in_flight > 0 {
            self.cv.wait(&mut s);
        }
    }

    /// Reopen intake after a flush (Figure 5 step 4).
    pub fn resume(&self) {
        let mut s = self.state.lock();
        s.paused = false;
        self.cv.notify_all();
    }

    /// Chaos-testing control: stall (`true`) or un-stall (`false`) the APS
    /// workers. While stalled, tasks accumulate but are not executed —
    /// except during a flush's `pause_and_drain`, which overrides the stall
    /// so the drain-before-flush protocol cannot deadlock. A harness MUST
    /// clear the stall before calling [`Auq::wait_idle`] or quiescing.
    pub fn set_stalled(&self, stalled: bool) {
        self.stalled.store(stalled, Ordering::SeqCst);
        let _s = self.state.lock();
        self.cv.notify_all();
    }

    /// True while [`Auq::set_stalled`] has the workers wedged.
    pub fn is_stalled(&self) -> bool {
        self.stalled.load(Ordering::SeqCst)
    }

    /// Open a §5.3 recovery window: wedge the workers (queued tasks would
    /// only burn retries against `ServerDown` until the new region owner is
    /// ready) while intake stays open — WAL-replay re-enqueues keep landing
    /// in the queue, and the capacity bound is waived so handover can never
    /// deadlock against the held workers. A flush's [`Auq::pause_and_drain`]
    /// overrides the hold, same as a stall.
    pub fn hold_for_recovery(&self) {
        let mut s = self.state.lock();
        s.held = true;
        self.metrics.recovery_holds.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Close the recovery window: workers resume draining the queue — now
    /// routed to the regions' new owners.
    pub fn release_recovery_hold(&self) {
        let mut s = self.state.lock();
        s.held = false;
        self.cv.notify_all();
    }

    /// True while a recovery window holds the workers.
    pub fn is_held(&self) -> bool {
        self.state.lock().held
    }

    /// Convenience for tests: wait until the queue is empty without pausing
    /// intake permanently.
    pub fn wait_idle(&self) {
        let mut s = self.state.lock();
        while !s.queue.is_empty() || s.in_flight > 0 {
            self.cv.wait(&mut s);
        }
    }

    /// Number of tasks waiting (not counting one being executed).
    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Stop the worker (remaining tasks are abandoned). Called on drop of
    /// the owning observer.
    pub fn shutdown(&self) {
        let mut s = self.state.lock();
        s.shutdown = true;
        self.cv.notify_all();
    }

    fn aps_loop(&self) {
        loop {
            let task = {
                let mut s = self.state.lock();
                loop {
                    if s.shutdown {
                        return;
                    }
                    // An injected stall or a recovery hold wedges the
                    // workers — unless a flush drain is waiting (paused),
                    // which takes precedence.
                    let wedged =
                        (self.stalled.load(Ordering::SeqCst) || s.held) && !s.paused;
                    if !wedged {
                        if let Some(t) = s.queue.pop_front() {
                            s.in_flight += 1;
                            break t;
                        }
                    }
                    // Nothing to do; also wake periodically so a cluster
                    // that has gone away lets us exit.
                    self.cv.wait_for(&mut s, Duration::from_millis(100));
                }
            };
            let (task, attempts) = task;
            let outcome = match self.cluster.upgrade() {
                Some(cluster) => self.execute(&cluster, &task),
                None => {
                    // Cluster is gone; nothing will ever succeed again.
                    let mut s = self.state.lock();
                    s.in_flight -= 1;
                    s.shutdown = true;
                    self.cv.notify_all();
                    return;
                }
            };
            let mut s = self.state.lock();
            s.in_flight -= 1;
            match outcome {
                Ok(()) => {
                    self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                    if let IndexTask::Maintain { ts, .. } = &task {
                        let lag = wall_ms().saturating_sub(*ts);
                        self.metrics.record_lag(lag);
                    }
                }
                Err(_) if attempts + 1 < MAX_RETRIES => {
                    self.metrics.retries.fetch_add(1, Ordering::Relaxed);
                    s.queue.push_back((task, attempts + 1));
                    // Back off before the next attempt so a transiently
                    // unavailable region (crashed server awaiting master
                    // recovery) gets time to come back. Capped so that a
                    // drain waiting on a doomed task is bounded.
                    let backoff = Duration::from_millis(
                        (5u64 << attempts.min(5)).min(150),
                    );
                    drop(s);
                    std::thread::sleep(backoff);
                    self.cv.notify_all();
                    continue;
                }
                Err(_) => {
                    self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.cv.notify_all();
        }
    }

    /// Execute one task against the cluster. `Maintain` is Algorithm 4:
    /// BA2 read the pre-image, BA3 delete the old index entry, BA4 insert
    /// the new one.
    fn execute(&self, cluster: &Cluster, task: &IndexTask) -> crate::error::Result<()> {
        let spec = &self.spec;
        let index_table = spec.index_table();
        match task {
            IndexTask::Maintain { row, ts, is_delete, put_columns } => {
                // BA2: value of the indexed columns right before this op.
                let old = read_index_values(cluster, spec, row, ts - DELTA)?;
                // New state: the values carried by the task, plus (for a
                // composite index only) stored values of columns the put
                // did not touch.
                let new = if *is_delete {
                    None
                } else {
                    new_index_values(cluster, spec, row, put_columns, *ts)?
                };
                // BA3: delete the old entry (unless the value is unchanged).
                if let Some(old_vals) = &old {
                    if new.as_ref() != Some(old_vals) {
                        let old_key = index_row(old_vals, row);
                        cluster.raw_delete(
                            &index_table,
                            &old_key,
                            &[Bytes::new()],
                            ts - DELTA,
                        )?;
                    }
                }
                // BA4: insert the new entry.
                if let Some(new_vals) = &new {
                    let new_key = index_row(new_vals, row);
                    cluster.raw_put(
                        &index_table,
                        &new_key,
                        &[(Bytes::new(), Bytes::new())],
                        *ts,
                    )?;
                }
                Ok(())
            }
            IndexTask::PutIndex { index_row, ts } => {
                cluster.raw_put(&index_table, index_row, &[(Bytes::new(), Bytes::new())], *ts)?;
                Ok(())
            }
            IndexTask::DeleteIndex { index_row, ts } => {
                cluster.raw_delete(&index_table, index_row, &[Bytes::new()], *ts)?;
                Ok(())
            }
        }
    }
}

impl Drop for Auq {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Compute the index values of `row` *after* a put that wrote
/// `put_columns` at `ts`: written columns come from the put itself, the
/// rest (composite indexes) from a snapshot read. `None` if the row is not
/// fully indexed afterwards.
pub fn new_index_values(
    store: &dyn crate::store::Store,
    spec: &IndexSpec,
    row: &[u8],
    put_columns: &[ColumnValue],
    ts: u64,
) -> crate::error::Result<Option<Vec<Bytes>>> {
    let mut vals = Vec::with_capacity(spec.columns.len());
    for col in &spec.columns {
        if let Some((_, v)) = put_columns.iter().find(|(c, _)| c == col) {
            vals.push(v.clone());
        } else {
            match store.get(&spec.base_table, row, col, ts)? {
                Some(v) => vals.push(v.value),
                None => return Ok(None),
            }
        }
    }
    Ok(Some(vals))
}

/// Read the values of every indexed column of `row` as of snapshot `ts`.
/// Returns `None` unless ALL indexed columns are present (a partially
/// populated row is not indexed).
pub fn read_index_values(
    store: &dyn crate::store::Store,
    spec: &IndexSpec,
    row: &[u8],
    ts: u64,
) -> crate::error::Result<Option<Vec<Bytes>>> {
    let mut vals = Vec::with_capacity(spec.columns.len());
    for col in &spec.columns {
        match store.get(&spec.base_table, row, col, ts)? {
            Some(v) => vals.push(v.value),
            None => return Ok(None),
        }
    }
    Ok(Some(vals))
}

fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::IndexScheme;
    use diff_index_cluster::{ClusterOptions, Cluster};
    use tempdir_lite::TempDir;

    fn setup() -> (TempDir, Cluster, Arc<IndexSpec>, Arc<Auq>) {
        let dir = TempDir::new("auq").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
        cluster.create_table("base", 2).unwrap();
        let spec = Arc::new(IndexSpec::single("byname", "base", "name", IndexScheme::AsyncSimple));
        cluster.create_table(&spec.index_table(), 2).unwrap();
        let auq = Auq::start(cluster.downgrade(), Arc::clone(&spec));
        (dir, cluster, spec, auq)
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn maintain_inserts_new_index_entry() {
        let (_d, cluster, spec, auq) = setup();
        let ts = cluster.put("base", b"r1", &[(b("name"), b("alice"))]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        auq.wait_idle();
        let key = index_row(&[b("alice")], b"r1");
        let got = cluster.get(&spec.index_table(), &key, b"", u64::MAX).unwrap();
        assert_eq!(got.unwrap().ts, ts, "index entry carries the base timestamp");
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn maintain_deletes_old_entry_on_update() {
        let (_d, cluster, spec, auq) = setup();
        let t1 = cluster.put("base", b"r1", &[(b("name"), b("alice"))]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts: t1, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        auq.wait_idle();
        let t2 = cluster.put("base", b"r1", &[(b("name"), b("bob"))]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts: t2, is_delete: false, put_columns: vec![(b("name"), b("bob"))] });
        auq.wait_idle();
        let idx = spec.index_table();
        let old_key = index_row(&[b("alice")], b"r1");
        let new_key = index_row(&[b("bob")], b"r1");
        assert!(cluster.get(&idx, &old_key, b"", u64::MAX).unwrap().is_none());
        assert!(cluster.get(&idx, &new_key, b"", u64::MAX).unwrap().is_some());
    }

    #[test]
    fn maintain_handles_base_delete() {
        let (_d, cluster, spec, auq) = setup();
        let t1 = cluster.put("base", b"r1", &[(b("name"), b("alice"))]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts: t1, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        auq.wait_idle();
        let t2 = cluster.delete("base", b"r1", &[b("name")]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts: t2, is_delete: true, put_columns: vec![] });
        auq.wait_idle();
        let old_key = index_row(&[b("alice")], b"r1");
        assert!(cluster.get(&spec.index_table(), &old_key, b"", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn unchanged_value_does_not_delete_fresh_entry() {
        // Re-putting the SAME value: DI must be skipped (or the paper's δ
        // protects it); the entry must survive.
        let (_d, cluster, spec, auq) = setup();
        let t1 = cluster.put("base", b"r1", &[(b("name"), b("alice"))]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts: t1, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        auq.wait_idle();
        let t2 = cluster.put("base", b"r1", &[(b("name"), b("alice"))]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts: t2, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        auq.wait_idle();
        let key = index_row(&[b("alice")], b"r1");
        let got = cluster.get(&spec.index_table(), &key, b"", u64::MAX).unwrap();
        assert!(got.is_some(), "index entry for unchanged value must survive");
    }

    #[test]
    fn redelivery_is_idempotent() {
        let (_d, cluster, spec, auq) = setup();
        let ts = cluster.put("base", b"r1", &[(b("name"), b("alice"))]).unwrap();
        for _ in 0..3 {
            auq.enqueue(IndexTask::Maintain { row: b("r1"), ts, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        }
        auq.wait_idle();
        let hits = cluster
            .scan_rows_prefix(&spec.index_table(), &crate::encoding::value_prefix(b"alice"), u64::MAX, 100)
            .unwrap();
        assert_eq!(hits.len(), 1, "same-timestamp re-delivery adds nothing");
    }

    #[test]
    fn pause_blocks_enqueue_until_resume() {
        let (_d, cluster, _spec, auq) = setup();
        let ts = cluster.put("base", b"r1", &[(b("name"), b("x"))]).unwrap();
        auq.pause_and_drain();
        let auq2 = Arc::clone(&auq);
        let handle = std::thread::spawn(move || {
            auq2.enqueue(IndexTask::Maintain { row: b("r1"), ts, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished(), "enqueue must block while paused");
        auq.resume();
        handle.join().unwrap();
        auq.wait_idle();
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_completes_all_pending_work() {
        let (_d, cluster, spec, auq) = setup();
        let mut expected = Vec::new();
        for i in 0..50 {
            let row = format!("row{i}");
            let val = format!("val{i}");
            let ts = cluster.put("base", row.as_bytes(), &[(b("name"), b(&val))]).unwrap();
            auq.enqueue(IndexTask::Maintain { row: b(&row), ts, is_delete: false, put_columns: vec![(b("name"), b(&val))] });
            expected.push((val, row));
        }
        auq.pause_and_drain();
        assert_eq!(auq.depth(), 0);
        for (val, row) in &expected {
            let key = index_row(&[b(val)], row.as_bytes());
            assert!(
                cluster.get(&spec.index_table(), &key, b"", u64::MAX).unwrap().is_some(),
                "drained queue must have delivered {val}"
            );
        }
        auq.resume();
    }

    #[test]
    fn multi_worker_drain_completes_all_pending_work() {
        let (_d, cluster, spec, _single) = setup();
        let auq = Auq::start_with_workers(cluster.downgrade(), Arc::clone(&spec), 4);
        assert_eq!(auq.workers(), 4);
        for i in 0..100 {
            let row = format!("row{i:03}");
            let val = format!("val{i:03}");
            let ts = cluster.put("base", row.as_bytes(), &[(b("name"), b(&val))]).unwrap();
            auq.enqueue(IndexTask::Maintain {
                row: b(&row),
                ts,
                is_delete: false,
                put_columns: vec![(b("name"), b(&val))],
            });
        }
        // pause_and_drain must wait for tasks in flight on EVERY worker, not
        // just an empty queue.
        auq.pause_and_drain();
        assert_eq!(auq.depth(), 0);
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 100);
        for i in 0..100 {
            let key = index_row(&[b(&format!("val{i:03}"))], format!("row{i:03}").as_bytes());
            assert!(
                cluster.get(&spec.index_table(), &key, b"", u64::MAX).unwrap().is_some(),
                "task {i} must have been delivered before drain returned"
            );
        }
        auq.resume();
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let (_d, cluster, spec, _single) = setup();
        let auq = Auq::start_with_workers(cluster.downgrade(), Arc::clone(&spec), 0);
        assert_eq!(auq.workers(), 1);
        let ts = cluster.put("base", b"r1", &[(b("name"), b("v"))]).unwrap();
        auq.enqueue(IndexTask::Maintain {
            row: b("r1"),
            ts,
            is_delete: false,
            put_columns: vec![(b("name"), b("v"))],
        });
        auq.wait_idle();
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn failing_tasks_retry_and_eventually_drop() {
        let (_d, cluster, _spec, auq) = setup();
        // Target table rows route fine, but the index table for this AUQ
        // exists — so force failure by crashing the only... simpler: point a
        // fresh AUQ at a spec whose index table does not exist.
        let bad_spec =
            Arc::new(IndexSpec::single("ghost", "base", "name", IndexScheme::AsyncSimple));
        let bad = Auq::start(cluster.downgrade(), bad_spec);
        let ts = cluster.put("base", b"r1", &[(b("name"), b("v"))]).unwrap();
        bad.enqueue(IndexTask::Maintain { row: b("r1"), ts, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        bad.wait_idle();
        assert_eq!(bad.metrics().dropped.load(Ordering::Relaxed), 1);
        assert!(bad.metrics().retries.load(Ordering::Relaxed) >= 1);
        drop(auq);
    }

    #[test]
    fn put_index_and_delete_index_retries() {
        let (_d, cluster, spec, auq) = setup();
        let key = index_row(&[b("v")], b"r9");
        auq.enqueue(IndexTask::PutIndex { index_row: key.clone(), ts: 500 });
        auq.wait_idle();
        assert_eq!(cluster.get(&spec.index_table(), &key, b"", u64::MAX).unwrap().unwrap().ts, 500);
        auq.enqueue(IndexTask::DeleteIndex { index_row: key.clone(), ts: 501 });
        auq.wait_idle();
        assert!(cluster.get(&spec.index_table(), &key, b"", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn lag_metrics_are_recorded() {
        let (_d, cluster, _spec, auq) = setup();
        let ts = cluster.put("base", b"r1", &[(b("name"), b("v"))]).unwrap();
        auq.enqueue(IndexTask::Maintain { row: b("r1"), ts, is_delete: false, put_columns: vec![(b("name"), b("alice"))] });
        auq.wait_idle();
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
        // Lag is wall-clock based; just check it is sane (< 10 s).
        assert!(auq.metrics().mean_lag_ms() < 10_000.0);
    }

    #[test]
    fn stalled_workers_resume_when_cleared() {
        let (_d, cluster, _spec, auq) = setup();
        auq.set_stalled(true);
        assert!(auq.is_stalled());
        let ts = cluster.put("base", b"r1", &[(b("name"), b("v"))]).unwrap();
        auq.enqueue(IndexTask::Maintain {
            row: b("r1"),
            ts,
            is_delete: false,
            put_columns: vec![(b("name"), b("v"))],
        });
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 0, "stalled");
        assert_eq!(auq.depth(), 1);
        auq.set_stalled(false);
        auq.wait_idle();
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pause_and_drain_overrides_stall() {
        let (_d, cluster, _spec, auq) = setup();
        let ts = cluster.put("base", b"r1", &[(b("name"), b("v"))]).unwrap();
        auq.set_stalled(true);
        auq.enqueue(IndexTask::Maintain {
            row: b("r1"),
            ts,
            is_delete: false,
            put_columns: vec![(b("name"), b("v"))],
        });
        // A flush drain must complete even while the workers are stalled,
        // or every flush under chaos would deadlock.
        auq.pause_and_drain();
        assert_eq!(auq.depth(), 0);
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
        auq.resume();
        auq.set_stalled(false);
    }

    #[test]
    fn shutdown_stops_worker() {
        let (_d, _cluster, _spec, auq) = setup();
        auq.shutdown();
        // Enqueue after shutdown is a no-op, not a hang.
        auq.enqueue(IndexTask::PutIndex { index_row: b("x"), ts: 1 });
        assert_eq!(auq.metrics().enqueued.load(Ordering::Relaxed), 0);
    }

    fn maintain_task(i: usize) -> IndexTask {
        IndexTask::Maintain {
            row: b(&format!("row{i}")),
            ts: 100 + i as u64,
            is_delete: false,
            put_columns: vec![(b("name"), b(&format!("val{i}")))],
        }
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let (_d, cluster, spec, _single) = setup();
        let auq = Auq::start_with_options(
            cluster.downgrade(),
            Arc::clone(&spec),
            AuqOptions { workers: 1, capacity: 4, policy: AdmissionPolicy::Reject },
        );
        assert_eq!(auq.capacity(), 4);
        auq.set_stalled(true);
        for i in 0..4 {
            assert_eq!(auq.enqueue(maintain_task(i)), Admission::Admitted);
        }
        // Single overflow task: turned away, queue untouched.
        assert_eq!(auq.enqueue(maintain_task(4)), Admission::Rejected(1));
        assert_eq!(auq.depth(), 4);
        // Batch rejection is all-or-nothing: no partial admission.
        let batch: Vec<_> = (5..8).map(maintain_task).collect();
        assert_eq!(auq.enqueue_many(batch), Admission::Rejected(3));
        assert_eq!(auq.depth(), 4);
        assert_eq!(auq.metrics().auq_rejections.load(Ordering::Relaxed), 4);
        assert_eq!(auq.metrics().high_watermark.load(Ordering::Relaxed), 4);
        // Once the APS drains, admission reopens.
        auq.set_stalled(false);
        auq.wait_idle();
        assert_eq!(auq.enqueue(maintain_task(8)), Admission::Admitted);
        auq.wait_idle();
    }

    #[test]
    fn bounded_queue_blocks_until_workers_drain() {
        let (_d, cluster, spec, _single) = setup();
        let auq = Auq::start_with_options(
            cluster.downgrade(),
            Arc::clone(&spec),
            AuqOptions { workers: 1, capacity: 2, policy: AdmissionPolicy::Block },
        );
        auq.set_stalled(true);
        assert_eq!(auq.enqueue(maintain_task(0)), Admission::Admitted);
        assert_eq!(auq.enqueue(maintain_task(1)), Admission::Admitted);
        let auq2 = Arc::clone(&auq);
        let handle = std::thread::spawn(move || auq2.enqueue(maintain_task(2)));
        std::thread::sleep(Duration::from_millis(80));
        assert!(!handle.is_finished(), "enqueue must block while the queue is at capacity");
        assert_eq!(auq.metrics().auq_rejections.load(Ordering::Relaxed), 0);
        auq.set_stalled(false);
        assert_eq!(handle.join().unwrap(), Admission::Admitted);
        auq.wait_idle();
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn recovery_hold_wedges_workers_but_intake_stays_open() {
        let (_d, _cluster, _spec, auq) = setup();
        auq.hold_for_recovery();
        assert!(auq.is_held());
        // Intake stays open inside the recovery window (§5.3 blocks the
        // *processing*, not the WAL-replay re-enqueues).
        assert_eq!(auq.enqueue(maintain_task(0)), Admission::Admitted);
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 0, "workers held");
        assert_eq!(auq.depth(), 1);
        auq.release_recovery_hold();
        assert!(!auq.is_held());
        auq.wait_idle();
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
        assert_eq!(auq.metrics().recovery_holds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn recovery_hold_waives_capacity_bound() {
        let (_d, cluster, spec, _single) = setup();
        let auq = Auq::start_with_options(
            cluster.downgrade(),
            Arc::clone(&spec),
            AuqOptions { workers: 1, capacity: 1, policy: AdmissionPolicy::Reject },
        );
        auq.hold_for_recovery();
        // Replay re-enqueues during the recovery window must never be
        // rejected (or block): the handover would lose acked writes (or
        // deadlock against the held workers).
        for i in 0..3 {
            assert_eq!(auq.enqueue(maintain_task(i)), Admission::Admitted);
        }
        assert_eq!(auq.depth(), 3);
        auq.release_recovery_hold();
        auq.wait_idle();
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pause_and_drain_overrides_recovery_hold() {
        let (_d, _cluster, _spec, auq) = setup();
        auq.hold_for_recovery();
        auq.enqueue(maintain_task(0));
        // A flush drain must complete even while a recovery hold is set, for
        // the same reason it overrides a stall.
        auq.pause_and_drain();
        assert_eq!(auq.depth(), 0);
        assert_eq!(auq.metrics().completed.load(Ordering::Relaxed), 1);
        auq.resume();
        auq.release_recovery_hold();
    }
}

//! The `DiffIndex` facade: index creation (with backfill), maintenance,
//! lookup, and session handout — the role of the client-side "utility for
//! index creation, maintenance and cleanse" plus the `getByIndex` API of §7.
//!
//! A `DiffIndex` runs over either backend of the [`Store`] abstraction:
//!
//! * **local** ([`DiffIndex::new`]): wraps an in-process [`Cluster`];
//!   `create_index` registers coprocessors and owns the AUQs directly.
//! * **remote** ([`DiffIndex::over_store`]): wraps any [`Store`] (e.g. a
//!   `net::RemoteClient`); index *reads* run client-side against the store,
//!   while index *administration* (`CREATE INDEX`, `DROP INDEX`, quiesce)
//!   is forwarded to the server hosting the observers. Remote handles carry
//!   no AUQ — the queue lives server-side.

use crate::error::{IndexError, Result};
use crate::observers::{AsyncObserver, SyncFullObserver, SyncInsertObserver};
use crate::read::{self, IndexHit};
use crate::session::{Session, SessionConfig};
use crate::spec::{IndexScheme, IndexSpec};
use crate::store::Store;
use crate::{auq::Auq, encoding::index_row};
use bytes::Bytes;
use diff_index_cluster::Cluster;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One installed index: its spec, plus — for locally administered indexes —
/// the AUQ behind it (every scheme has one: async schemes for all updates,
/// sync schemes for failure retries) and the observer registration token.
/// Remote handles are spec-only; their AUQ lives on the server.
pub struct IndexHandle {
    /// The index definition.
    pub spec: Arc<IndexSpec>,
    auq: Option<Arc<Auq>>,
    observer_token: u64,
}

impl IndexHandle {
    /// The asynchronous update queue, for locally administered indexes.
    ///
    /// # Panics
    /// On a remote handle (the AUQ lives on the server; use
    /// [`DiffIndex::quiesce`] to wait for it).
    pub fn auq(&self) -> &Arc<Auq> {
        self.auq.as_ref().expect("remote index handle has no local AUQ (it lives server-side)")
    }

    /// The AUQ if this index is administered locally, `None` if remote.
    pub fn try_auq(&self) -> Option<&Arc<Auq>> {
        self.auq.as_ref()
    }
}

impl std::fmt::Debug for IndexHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexHandle").field("spec", &self.spec).finish()
    }
}

struct Inner {
    store: Arc<dyn Store>,
    /// Present only for the in-process backend; owns observer registration.
    local: Option<Cluster>,
    /// base table -> handles.
    indexes: RwLock<HashMap<String, Vec<Arc<IndexHandle>>>>,
    session_config: SessionConfig,
}

/// Entry point for Diff-Index. Cheap to clone.
#[derive(Clone)]
pub struct DiffIndex {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for DiffIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffIndex").field("remote", &self.inner.local.is_none()).finish()
    }
}

impl DiffIndex {
    /// Wrap an in-process cluster.
    pub fn new(cluster: Cluster) -> Self {
        Self::with_session_config(cluster, SessionConfig::default())
    }

    /// Wrap an in-process cluster with custom session limits.
    pub fn with_session_config(cluster: Cluster, session_config: SessionConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                store: Arc::new(cluster.clone()),
                local: Some(cluster),
                indexes: RwLock::new(HashMap::new()),
                session_config,
            }),
        }
    }

    /// Wrap a remote (or otherwise abstract) store backend. Index reads run
    /// client-side against `store`; index administration is forwarded via
    /// the store's `admin_*` methods.
    pub fn over_store(store: Arc<dyn Store>) -> Self {
        Self::over_store_with_config(store, SessionConfig::default())
    }

    /// Local index administration over a decorated store: observers are
    /// registered on `cluster` in-process (as in [`DiffIndex::new`]), but
    /// every client read and write goes through `store` — which must be a
    /// wrapper around that same cluster, e.g. a
    /// [`RecordingStore`](crate::history::RecordingStore) capturing an
    /// operation history for consistency checking.
    pub fn local_over_store(cluster: Cluster, store: Arc<dyn Store>) -> Self {
        Self {
            inner: Arc::new(Inner {
                store,
                local: Some(cluster),
                indexes: RwLock::new(HashMap::new()),
                session_config: SessionConfig::default(),
            }),
        }
    }

    /// [`DiffIndex::over_store`] with custom session limits.
    pub fn over_store_with_config(store: Arc<dyn Store>, session_config: SessionConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                store,
                local: None,
                indexes: RwLock::new(HashMap::new()),
                session_config,
            }),
        }
    }

    /// The wrapped in-process cluster (for base-table CRUD and tests).
    ///
    /// # Panics
    /// On a remote `DiffIndex`; use [`DiffIndex::store`] there.
    pub fn cluster(&self) -> &Cluster {
        self.inner.local.as_ref().expect("remote DiffIndex has no in-process cluster handle")
    }

    /// The store backend this instance runs against.
    pub fn store(&self) -> &Arc<dyn Store> {
        &self.inner.store
    }

    /// True if this instance administers indexes in-process.
    pub fn is_local(&self) -> bool {
        self.inner.local.is_some()
    }

    /// `CREATE INDEX`: create the (global, key-only) index table with
    /// `num_regions` regions, attach the scheme's observer to the base
    /// table, and backfill entries for pre-existing base rows. On a remote
    /// backend the whole operation executes server-side; the returned
    /// handle records the spec for client-side reads.
    pub fn create_index(&self, spec: IndexSpec, num_regions: usize) -> Result<Arc<IndexHandle>> {
        if !self.inner.store.has_table(&spec.base_table)? {
            return Err(IndexError::Cluster(
                diff_index_cluster::ClusterError::NoSuchTable(spec.base_table.clone()),
            ));
        }
        {
            let indexes = self.inner.indexes.read();
            if let Some(list) = indexes.get(&spec.base_table) {
                if list.iter().any(|h| h.spec.name == spec.name) {
                    return Err(IndexError::IndexExists(spec.name));
                }
            }
        }
        let spec = Arc::new(spec);
        let handle = match &self.inner.local {
            Some(cluster) => {
                cluster.create_table(&spec.index_table(), num_regions)?;

                // Register the observer BEFORE backfilling so concurrent
                // writes are not missed; backfill re-writing an entry the
                // observer already wrote is idempotent (same timestamp).
                let (observer_token, auq) = match spec.scheme {
                    IndexScheme::SyncFull => {
                        let obs = Arc::new(SyncFullObserver::new(cluster, Arc::clone(&spec)));
                        let auq = Arc::clone(obs.auq());
                        (cluster.register_observer(&spec.base_table, obs)?, auq)
                    }
                    IndexScheme::SyncInsert => {
                        let obs = Arc::new(SyncInsertObserver::new(cluster, Arc::clone(&spec)));
                        let auq = Arc::clone(obs.auq());
                        (cluster.register_observer(&spec.base_table, obs)?, auq)
                    }
                    IndexScheme::AsyncSimple | IndexScheme::AsyncSession => {
                        let obs = Arc::new(AsyncObserver::new(cluster, Arc::clone(&spec)));
                        let auq = Arc::clone(obs.auq());
                        (cluster.register_observer(&spec.base_table, obs)?, auq)
                    }
                };

                self.backfill(&spec)?;
                Arc::new(IndexHandle { spec: Arc::clone(&spec), auq: Some(auq), observer_token })
            }
            None => {
                self.inner.store.admin_create_index(&spec, num_regions)?;
                Arc::new(IndexHandle { spec: Arc::clone(&spec), auq: None, observer_token: 0 })
            }
        };
        self.inner
            .indexes
            .write()
            .entry(spec.base_table.clone())
            .or_default()
            .push(Arc::clone(&handle));
        Ok(handle)
    }

    /// Build index entries for rows that existed before the index did.
    fn backfill(&self, spec: &IndexSpec) -> Result<()> {
        let store = self.inner.store.as_ref();
        let index_table = spec.index_table();
        let rows = store.scan_rows(&spec.base_table, b"", None, u64::MAX, usize::MAX)?;
        for (row, cols) in rows {
            let mut values = Vec::with_capacity(spec.columns.len());
            let mut entry_ts = 0u64;
            for ic in &spec.columns {
                match cols.iter().find(|(c, _)| c == ic) {
                    Some((_, v)) => {
                        values.push(v.value.clone());
                        entry_ts = entry_ts.max(v.ts);
                    }
                    None => {
                        values.clear();
                        break;
                    }
                }
            }
            if values.len() == spec.columns.len() {
                let key = index_row(&values, &row);
                store.raw_put(&index_table, &key, &[(Bytes::new(), Bytes::new())], entry_ts)?;
            }
        }
        Ok(())
    }

    /// `DROP INDEX`: detach the observer and forget the index. (The index
    /// table's files are left for the operator to remove, as HBase does.)
    pub fn drop_index(&self, base_table: &str, name: &str) -> Result<()> {
        let handle = {
            let mut indexes = self.inner.indexes.write();
            let list = indexes
                .get_mut(base_table)
                .ok_or_else(|| IndexError::NoSuchIndex(name.to_string()))?;
            let pos = list
                .iter()
                .position(|h| h.spec.name == name)
                .ok_or_else(|| IndexError::NoSuchIndex(name.to_string()))?;
            list.remove(pos)
        };
        match &self.inner.local {
            Some(cluster) => {
                cluster.unregister_observer(base_table, handle.observer_token)?;
                handle.auq().shutdown();
            }
            None => self.inner.store.admin_drop_index(base_table, name)?,
        }
        Ok(())
    }

    /// Look up an index handle.
    pub fn index(&self, base_table: &str, name: &str) -> Result<Arc<IndexHandle>> {
        self.inner
            .indexes
            .read()
            .get(base_table)
            .and_then(|l| l.iter().find(|h| h.spec.name == name).cloned())
            .ok_or_else(|| IndexError::NoSuchIndex(name.to_string()))
    }

    /// All indexes on `base_table`.
    pub fn indexes_of(&self, base_table: &str) -> Vec<Arc<IndexHandle>> {
        self.inner.indexes.read().get(base_table).cloned().unwrap_or_default()
    }

    /// `getByIndex`, exact match: base rows whose indexed column equals
    /// `value`, under the index's scheme-specific read semantics.
    pub fn get_by_index(
        &self,
        base_table: &str,
        index_name: &str,
        value: &[u8],
        limit: usize,
    ) -> Result<Vec<IndexHit>> {
        let handle = self.index(base_table, index_name)?;
        read::read_exact(self.inner.store.as_ref(), &handle.spec, value, limit)
    }

    /// `getByIndex`, range variant over the indexed column (Figure 9).
    pub fn range_by_index(
        &self,
        base_table: &str,
        index_name: &str,
        lo: &[u8],
        hi: &[u8],
        inclusive: bool,
        limit: usize,
    ) -> Result<Vec<IndexHit>> {
        let handle = self.index(base_table, index_name)?;
        read::read_range(self.inner.store.as_ref(), &handle.spec, lo, hi, inclusive, limit)
    }

    /// Fetch full base rows for previously returned hits.
    pub fn fetch_rows(
        &self,
        base_table: &str,
        index_name: &str,
        hits: &[IndexHit],
    ) -> Result<Vec<diff_index_cluster::RowGroup>> {
        let handle = self.index(base_table, index_name)?;
        read::fetch_rows(self.inner.store.as_ref(), &handle.spec, hits)
    }

    /// `get_session()` (§5.2): a client session with read-your-writes
    /// semantics over `async-session` indexes.
    pub fn session(&self) -> Session {
        Session::new(self.clone(), self.inner.session_config.clone())
    }

    /// Block until every AUQ of every index on `base_table` is empty —
    /// i.e. the indexes have caught up with the base (test/bench helper; a
    /// real deployment would just wait). On a remote backend this is one
    /// round-trip to the server owning the AUQs.
    pub fn quiesce(&self, base_table: &str) {
        if self.inner.local.is_some() {
            for h in self.indexes_of(base_table) {
                h.auq().wait_idle();
            }
        } else {
            let _ = self.inner.store.admin_quiesce(base_table);
        }
    }
}

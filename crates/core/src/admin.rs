//! The `DiffIndex` facade: index creation (with backfill), maintenance,
//! lookup, and session handout — the role of the client-side "utility for
//! index creation, maintenance and cleanse" plus the `getByIndex` API of §7.

use crate::error::{IndexError, Result};
use crate::observers::{AsyncObserver, SyncFullObserver, SyncInsertObserver};
use crate::read::{self, IndexHit};
use crate::session::{Session, SessionConfig};
use crate::spec::{IndexScheme, IndexSpec};
use crate::{auq::Auq, encoding::index_row};
use bytes::Bytes;
use diff_index_cluster::Cluster;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One installed index: its spec, the AUQ behind it (every scheme has one —
/// async schemes for all updates, sync schemes for failure retries), and the
/// observer registration token.
pub struct IndexHandle {
    /// The index definition.
    pub spec: Arc<IndexSpec>,
    /// Its asynchronous update queue.
    pub auq: Arc<Auq>,
    observer_token: u64,
}

impl std::fmt::Debug for IndexHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexHandle").field("spec", &self.spec).finish()
    }
}

struct Inner {
    cluster: Cluster,
    /// base table -> handles.
    indexes: RwLock<HashMap<String, Vec<Arc<IndexHandle>>>>,
    session_config: SessionConfig,
}

/// Entry point for Diff-Index. Cheap to clone.
#[derive(Clone)]
pub struct DiffIndex {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for DiffIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffIndex").finish()
    }
}

impl DiffIndex {
    /// Wrap a cluster.
    pub fn new(cluster: Cluster) -> Self {
        Self::with_session_config(cluster, SessionConfig::default())
    }

    /// Wrap a cluster with custom session limits.
    pub fn with_session_config(cluster: Cluster, session_config: SessionConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                cluster,
                indexes: RwLock::new(HashMap::new()),
                session_config,
            }),
        }
    }

    /// The wrapped cluster (for base-table CRUD).
    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// `CREATE INDEX`: create the (global, key-only) index table with
    /// `num_regions` regions, attach the scheme's observer to the base
    /// table, and backfill entries for pre-existing base rows.
    pub fn create_index(&self, spec: IndexSpec, num_regions: usize) -> Result<Arc<IndexHandle>> {
        let cluster = &self.inner.cluster;
        if !cluster.has_table(&spec.base_table) {
            return Err(IndexError::Cluster(
                diff_index_cluster::ClusterError::NoSuchTable(spec.base_table.clone()),
            ));
        }
        {
            let indexes = self.inner.indexes.read();
            if let Some(list) = indexes.get(&spec.base_table) {
                if list.iter().any(|h| h.spec.name == spec.name) {
                    return Err(IndexError::IndexExists(spec.name));
                }
            }
        }
        let spec = Arc::new(spec);
        cluster.create_table(&spec.index_table(), num_regions)?;

        // Register the observer BEFORE backfilling so concurrent writes are
        // not missed; backfill re-writing an entry the observer already
        // wrote is idempotent (same timestamp).
        let (observer_token, auq) = match spec.scheme {
            IndexScheme::SyncFull => {
                let obs = Arc::new(SyncFullObserver::new(cluster, Arc::clone(&spec)));
                let auq = Arc::clone(obs.auq());
                (cluster.register_observer(&spec.base_table, obs)?, auq)
            }
            IndexScheme::SyncInsert => {
                let obs = Arc::new(SyncInsertObserver::new(cluster, Arc::clone(&spec)));
                let auq = Arc::clone(obs.auq());
                (cluster.register_observer(&spec.base_table, obs)?, auq)
            }
            IndexScheme::AsyncSimple | IndexScheme::AsyncSession => {
                let obs = Arc::new(AsyncObserver::new(cluster, Arc::clone(&spec)));
                let auq = Arc::clone(obs.auq());
                (cluster.register_observer(&spec.base_table, obs)?, auq)
            }
        };

        self.backfill(&spec)?;

        let handle = Arc::new(IndexHandle { spec: Arc::clone(&spec), auq, observer_token });
        self.inner
            .indexes
            .write()
            .entry(spec.base_table.clone())
            .or_default()
            .push(Arc::clone(&handle));
        Ok(handle)
    }

    /// Build index entries for rows that existed before the index did.
    fn backfill(&self, spec: &IndexSpec) -> Result<()> {
        let cluster = &self.inner.cluster;
        let index_table = spec.index_table();
        let rows = cluster.scan_rows(&spec.base_table, b"", None, u64::MAX, usize::MAX)?;
        for (row, cols) in rows {
            let mut values = Vec::with_capacity(spec.columns.len());
            let mut entry_ts = 0u64;
            for ic in &spec.columns {
                match cols.iter().find(|(c, _)| c == ic) {
                    Some((_, v)) => {
                        values.push(v.value.clone());
                        entry_ts = entry_ts.max(v.ts);
                    }
                    None => {
                        values.clear();
                        break;
                    }
                }
            }
            if values.len() == spec.columns.len() {
                let key = index_row(&values, &row);
                cluster.raw_put(&index_table, &key, &[(Bytes::new(), Bytes::new())], entry_ts)?;
            }
        }
        Ok(())
    }

    /// `DROP INDEX`: detach the observer and forget the index. (The index
    /// table's files are left for the operator to remove, as HBase does.)
    pub fn drop_index(&self, base_table: &str, name: &str) -> Result<()> {
        let mut indexes = self.inner.indexes.write();
        let list = indexes
            .get_mut(base_table)
            .ok_or_else(|| IndexError::NoSuchIndex(name.to_string()))?;
        let pos = list
            .iter()
            .position(|h| h.spec.name == name)
            .ok_or_else(|| IndexError::NoSuchIndex(name.to_string()))?;
        let handle = list.remove(pos);
        self.inner.cluster.unregister_observer(base_table, handle.observer_token)?;
        handle.auq.shutdown();
        Ok(())
    }

    /// Look up an index handle.
    pub fn index(&self, base_table: &str, name: &str) -> Result<Arc<IndexHandle>> {
        self.inner
            .indexes
            .read()
            .get(base_table)
            .and_then(|l| l.iter().find(|h| h.spec.name == name).cloned())
            .ok_or_else(|| IndexError::NoSuchIndex(name.to_string()))
    }

    /// All indexes on `base_table`.
    pub fn indexes_of(&self, base_table: &str) -> Vec<Arc<IndexHandle>> {
        self.inner.indexes.read().get(base_table).cloned().unwrap_or_default()
    }

    /// `getByIndex`, exact match: base rows whose indexed column equals
    /// `value`, under the index's scheme-specific read semantics.
    pub fn get_by_index(
        &self,
        base_table: &str,
        index_name: &str,
        value: &[u8],
        limit: usize,
    ) -> Result<Vec<IndexHit>> {
        let handle = self.index(base_table, index_name)?;
        read::read_exact(&self.inner.cluster, &handle.spec, value, limit)
    }

    /// `getByIndex`, range variant over the indexed column (Figure 9).
    pub fn range_by_index(
        &self,
        base_table: &str,
        index_name: &str,
        lo: &[u8],
        hi: &[u8],
        inclusive: bool,
        limit: usize,
    ) -> Result<Vec<IndexHit>> {
        let handle = self.index(base_table, index_name)?;
        read::read_range(&self.inner.cluster, &handle.spec, lo, hi, inclusive, limit)
    }

    /// Fetch full base rows for previously returned hits.
    pub fn fetch_rows(
        &self,
        base_table: &str,
        index_name: &str,
        hits: &[IndexHit],
    ) -> Result<Vec<diff_index_cluster::RowGroup>> {
        let handle = self.index(base_table, index_name)?;
        read::fetch_rows(&self.inner.cluster, &handle.spec, hits)
    }

    /// `get_session()` (§5.2): a client session with read-your-writes
    /// semantics over `async-session` indexes.
    pub fn session(&self) -> Session {
        Session::new(self.clone(), self.inner.session_config.clone())
    }

    /// Block until every AUQ of every index on `base_table` is empty —
    /// i.e. the indexes have caught up with the base (test/bench helper; a
    /// real deployment would just wait).
    pub fn quiesce(&self, base_table: &str) {
        for h in self.indexes_of(base_table) {
            h.auq.wait_idle();
        }
    }
}

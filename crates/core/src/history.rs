//! Operation-history recording for consistency checking.
//!
//! A chaos harness needs the *client's* view of every write it issued —
//! what was attempted, and whether the store acked it — to later decide
//! which final states are legal. [`RecordingStore`] wraps any [`Store`]
//! and appends one [`WriteRecord`] per client write to a shared
//! [`History`]:
//!
//! * `Ok(ts)` from the backend → [`WriteOutcome::Acked`] — the write is
//!   durable and **must** survive any subsequent crash/recovery;
//! * `Err(_)` → [`WriteOutcome::Ambiguous`] — the write may or may not
//!   have been applied (e.g. the server crashed between the durable WAL
//!   append and the ack, §5.3), so a checker must accept both worlds.
//!
//! Reads and index-maintenance writes (`raw_put`/`raw_delete`) pass
//! through unrecorded: they never change what the client was promised.

use crate::spec::IndexSpec;
use crate::store::Store;
use bytes::Bytes;
use diff_index_cluster::{ColumnValue, PutOutcome, Result as ClusterResult, RowGroup};
use diff_index_lsm::VersionedValue;
use parking_lot::Mutex;
use std::sync::Arc;

/// What a recorded client write did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteKind {
    /// `put` / `put_batch` / `put_returning` of these columns.
    Put {
        /// The column/value pairs written.
        columns: Vec<ColumnValue>,
    },
    /// `delete` of these columns.
    Delete {
        /// The columns deleted.
        columns: Vec<Bytes>,
    },
}

/// Whether the client saw the write succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The backend returned the assigned timestamp: durably applied.
    Acked {
        /// Server-assigned timestamp of the write.
        ts: u64,
    },
    /// The backend returned an error: applied-or-not is unknowable.
    Ambiguous {
        /// Display form of the error the client saw.
        error: String,
    },
}

impl WriteOutcome {
    /// True if the client received an ack for this write.
    pub fn is_acked(&self) -> bool {
        matches!(self, WriteOutcome::Acked { .. })
    }
}

/// One client write as observed at the issuing client.
#[derive(Debug, Clone)]
pub struct WriteRecord {
    /// Global issue order (0-based). Writes are recorded in completion
    /// order, which equals issue order for a single-threaded client.
    pub seq: u64,
    /// Base table the write targeted.
    pub table: String,
    /// Row key.
    pub row: Bytes,
    /// Put or delete, with the affected columns.
    pub kind: WriteKind,
    /// Acked or ambiguous.
    pub outcome: WriteOutcome,
}

/// Append-only log of client writes, shared between a [`RecordingStore`]
/// and the checker that later replays it against a model.
#[derive(Debug, Default)]
pub struct History {
    records: Mutex<Vec<WriteRecord>>,
}

impl History {
    /// Fresh, empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, assigning it the next sequence number.
    pub fn record(&self, table: &str, row: &[u8], kind: WriteKind, outcome: WriteOutcome) {
        let mut records = self.records.lock();
        let seq = records.len() as u64;
        records.push(WriteRecord {
            seq,
            table: table.to_string(),
            row: Bytes::copy_from_slice(row),
            kind,
            outcome,
        });
    }

    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Clone out the full record list, in sequence order.
    pub fn snapshot(&self) -> Vec<WriteRecord> {
        self.records.lock().clone()
    }

    /// The last `n` records (for failure reports).
    pub fn tail(&self, n: usize) -> Vec<WriteRecord> {
        let records = self.records.lock();
        records[records.len().saturating_sub(n)..].to_vec()
    }
}

/// A [`Store`] decorator that records every client write into a
/// [`History`] and forwards everything to the wrapped backend.
pub struct RecordingStore {
    inner: Arc<dyn Store>,
    history: Arc<History>,
}

impl RecordingStore {
    /// Wrap `inner`, recording into a fresh history.
    pub fn new(inner: Arc<dyn Store>) -> Self {
        Self { inner, history: Arc::new(History::new()) }
    }

    /// The shared history this store records into.
    pub fn history(&self) -> &Arc<History> {
        &self.history
    }
}

impl std::fmt::Debug for RecordingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingStore").field("recorded", &self.history.len()).finish()
    }
}

fn outcome_of<T>(res: &ClusterResult<T>, ts_of: impl Fn(&T) -> u64) -> WriteOutcome {
    match res {
        Ok(v) => WriteOutcome::Acked { ts: ts_of(v) },
        Err(e) => WriteOutcome::Ambiguous { error: e.to_string() },
    }
}

impl Store for RecordingStore {
    fn put(&self, table: &str, row: &[u8], columns: &[ColumnValue]) -> ClusterResult<u64> {
        let res = self.inner.put(table, row, columns);
        self.history.record(
            table,
            row,
            WriteKind::Put { columns: columns.to_vec() },
            outcome_of(&res, |ts| *ts),
        );
        res
    }

    fn put_batch(
        &self,
        table: &str,
        rows: &[(Bytes, Vec<ColumnValue>)],
    ) -> ClusterResult<Vec<u64>> {
        let res = self.inner.put_batch(table, rows);
        for (i, (row, columns)) in rows.iter().enumerate() {
            let outcome = match &res {
                Ok(tss) => WriteOutcome::Acked { ts: tss[i] },
                Err(e) => WriteOutcome::Ambiguous { error: e.to_string() },
            };
            self.history.record(table, row, WriteKind::Put { columns: columns.clone() }, outcome);
        }
        res
    }

    fn put_returning(
        &self,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
    ) -> ClusterResult<PutOutcome> {
        let res = self.inner.put_returning(table, row, columns);
        self.history.record(
            table,
            row,
            WriteKind::Put { columns: columns.to_vec() },
            outcome_of(&res, |o| o.ts),
        );
        res
    }

    fn delete(&self, table: &str, row: &[u8], columns: &[Bytes]) -> ClusterResult<u64> {
        let res = self.inner.delete(table, row, columns);
        self.history.record(
            table,
            row,
            WriteKind::Delete { columns: columns.to_vec() },
            outcome_of(&res, |ts| *ts),
        );
        res
    }

    fn raw_put(
        &self,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
        ts: u64,
    ) -> ClusterResult<()> {
        self.inner.raw_put(table, row, columns, ts)
    }

    fn raw_delete(
        &self,
        table: &str,
        row: &[u8],
        columns: &[Bytes],
        ts: u64,
    ) -> ClusterResult<()> {
        self.inner.raw_delete(table, row, columns, ts)
    }

    fn get(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> ClusterResult<Option<VersionedValue>> {
        self.inner.get(table, row, column, ts)
    }

    fn get_cell_versioned(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> ClusterResult<Option<(u64, bool)>> {
        self.inner.get_cell_versioned(table, row, column, ts)
    }

    fn get_row(
        &self,
        table: &str,
        row: &[u8],
        ts: u64,
    ) -> ClusterResult<Vec<(Bytes, VersionedValue)>> {
        self.inner.get_row(table, row, ts)
    }

    fn scan_rows(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>> {
        self.inner.scan_rows(table, start_row, end_row, ts, limit)
    }

    fn scan_rows_prefix(
        &self,
        table: &str,
        row_prefix: &[u8],
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>> {
        self.inner.scan_rows_prefix(table, row_prefix, ts, limit)
    }

    fn scan_rows_range(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> ClusterResult<Vec<RowGroup>> {
        self.inner.scan_rows_range(table, start_row, end_row, ts, limit)
    }

    fn create_table(&self, name: &str, num_regions: usize) -> ClusterResult<()> {
        self.inner.create_table(name, num_regions)
    }

    fn has_table(&self, table: &str) -> ClusterResult<bool> {
        self.inner.has_table(table)
    }

    fn flush_table(&self, table: &str) -> ClusterResult<()> {
        self.inner.flush_table(table)
    }

    fn admin_create_index(&self, spec: &IndexSpec, num_regions: usize) -> ClusterResult<()> {
        self.inner.admin_create_index(spec, num_regions)
    }

    fn admin_drop_index(&self, base_table: &str, name: &str) -> ClusterResult<()> {
        self.inner.admin_drop_index(base_table, name)
    }

    fn admin_quiesce(&self, base_table: &str) -> ClusterResult<()> {
        self.inner.admin_quiesce(base_table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diff_index_cluster::{Cluster, ClusterOptions};

    #[test]
    fn records_acks_and_passes_reads_through() {
        let dir = tempdir_lite::TempDir::new("history").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
        cluster.create_table("t", 2).unwrap();
        let store = RecordingStore::new(Arc::new(cluster));

        let ts = store.put("t", b"r1", &[(Bytes::from("c"), Bytes::from("v"))]).unwrap();
        store.delete("t", b"r1", &[Bytes::from("c")]).unwrap();
        store
            .put_batch(
                "t",
                &[
                    (Bytes::from("r2"), vec![(Bytes::from("c"), Bytes::from("v2"))]),
                    (Bytes::from("r3"), vec![(Bytes::from("c"), Bytes::from("v3"))]),
                ],
            )
            .unwrap();
        // Reads and raw writes are not recorded.
        store.get("t", b"r2", b"c", u64::MAX).unwrap();
        store.raw_put("t", b"x", &[(Bytes::new(), Bytes::new())], 1).unwrap();

        let records = store.history().snapshot();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].outcome, WriteOutcome::Acked { ts });
        assert_eq!(records[0].seq, 0);
        assert!(matches!(records[1].kind, WriteKind::Delete { .. }));
        assert_eq!(records[3].row, Bytes::from("r3"));
        assert!(records.iter().all(|r| r.outcome.is_acked()));
    }

    #[test]
    fn failed_writes_are_ambiguous() {
        let dir = tempdir_lite::TempDir::new("history-err").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
        let store = RecordingStore::new(Arc::new(cluster));

        // No such table: the error is surfaced AND recorded as ambiguous.
        assert!(store.put("absent", b"r", &[(Bytes::from("c"), Bytes::from("v"))]).is_err());
        let records = store.history().snapshot();
        assert_eq!(records.len(), 1);
        assert!(!records[0].outcome.is_acked());
    }
}

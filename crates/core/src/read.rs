//! Index read path: `getByIndex` for exact-match and range queries, with
//! the `sync-insert` double-check-and-clean routine (Algorithm 2).

use crate::auq::read_index_values;
use crate::encoding::{decode_index_row, value_prefix, value_range};
use crate::error::Result;
use crate::spec::{IndexScheme, IndexSpec};
use crate::store::Store;
use bytes::Bytes;

/// One index hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexHit {
    /// The indexed value(s) this entry was filed under.
    pub values: Vec<Bytes>,
    /// The base-table row key.
    pub row: Bytes,
    /// Timestamp of the index entry (== timestamp of the base entry it was
    /// created for).
    pub ts: u64,
}

/// Exact-match index lookup: all base rows whose indexed (first) column
/// equals `value`. For `sync-insert`, stale entries are verified against the
/// base table and deleted (read-repair); for the other schemes the index is
/// returned as-is (Table 2 read rows).
pub fn read_exact(
    store: &dyn Store,
    spec: &IndexSpec,
    value: &[u8],
    limit: usize,
) -> Result<Vec<IndexHit>> {
    let prefix = value_prefix(value);
    let raw = scan_index(store, spec, &prefix, None, limit)?;
    apply_scheme_read(store, spec, raw, limit)
}

/// Range index lookup over the first indexed column: `lo <= v <= hi` when
/// `inclusive`, else `lo <= v < hi` (the paper's Figure 9 experiment).
pub fn read_range(
    store: &dyn Store,
    spec: &IndexSpec,
    lo: &[u8],
    hi: &[u8],
    inclusive: bool,
    limit: usize,
) -> Result<Vec<IndexHit>> {
    let (start, end) = value_range(lo, hi, inclusive);
    let raw = scan_index(store, spec, &start, Some(&end), limit)?;
    apply_scheme_read(store, spec, raw, limit)
}

/// SR1: scan the index table, decoding each key-only row into a hit.
fn scan_index(
    store: &dyn Store,
    spec: &IndexSpec,
    start: &[u8],
    end: Option<&[u8]>,
    limit: usize,
) -> Result<Vec<IndexHit>> {
    // Over-fetch under sync-insert: some hits may be repaired away.
    let fetch = if spec.scheme == IndexScheme::SyncInsert {
        limit.saturating_mul(2).max(limit.saturating_add(16))
    } else {
        limit
    };
    let rows = match end {
        None => store.scan_rows_prefix(&spec.index_table(), start, u64::MAX, fetch)?,
        Some(e) => store.scan_rows_range(&spec.index_table(), start, Some(e), u64::MAX, fetch)?,
    };
    let mut hits = Vec::with_capacity(rows.len());
    for (key, cols) in rows {
        let Some((values, row)) = decode_index_row(&key, spec.columns.len()) else {
            continue; // foreign junk in the index table: ignore
        };
        let ts = cols.first().map(|(_, v)| v.ts).unwrap_or(0);
        hits.push(IndexHit { values, row, ts });
    }
    Ok(hits)
}

/// SR2 (Algorithm 2), applied only for `sync-insert`: for every hit, read
/// the base row; keep the hit if the base still carries the indexed value,
/// otherwise delete the stale index entry.
fn apply_scheme_read(
    store: &dyn Store,
    spec: &IndexSpec,
    hits: Vec<IndexHit>,
    limit: usize,
) -> Result<Vec<IndexHit>> {
    if spec.scheme != IndexScheme::SyncInsert {
        let mut hits = hits;
        hits.truncate(limit);
        return Ok(hits);
    }
    let mut kept = Vec::with_capacity(hits.len());
    for hit in hits {
        let current = read_index_values(store, spec, &hit.row, u64::MAX)?;
        if current.as_ref() == Some(&hit.values) {
            kept.push(hit);
            if kept.len() >= limit {
                break;
            }
        } else {
            // Stale: delete 〈vindex ⊕ k, ts〉 from the index table.
            let stale_key = crate::encoding::index_row(&hit.values, &hit.row);
            store.raw_delete(&spec.index_table(), &stale_key, &[Bytes::new()], hit.ts)?;
        }
    }
    Ok(kept)
}

/// Convenience: fetch the full base rows for a set of hits.
pub fn fetch_rows(
    store: &dyn Store,
    spec: &IndexSpec,
    hits: &[IndexHit],
) -> Result<Vec<diff_index_cluster::RowGroup>> {
    let mut out = Vec::with_capacity(hits.len());
    for h in hits {
        let row = store.get_row(&spec.base_table, &h.row, u64::MAX)?;
        out.push((h.row.clone(), row));
    }
    Ok(out)
}

//! Index verification and cleansing — the "utility for index creation,
//! maintenance and cleanse" of §7.
//!
//! An index can drift from its base table: `sync-insert` leaves stale
//! entries by design, crashes can abandon AUQ work beyond the retry budget,
//! and operators occasionally just want proof. [`verify_index`] scans both
//! tables and reports every divergence; [`cleanse_index`] repairs them
//! (delete stale entries, insert missing ones) with the correct base
//! timestamps, preserving the §4.3 invariant.

use crate::auq::read_index_values;
use crate::encoding::{decode_index_row, index_row};
use crate::error::Result;
use crate::spec::IndexSpec;
use crate::store::Store;
use bytes::Bytes;
use std::collections::BTreeMap;

/// One divergence between index and base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The index holds an entry whose base row no longer carries that value.
    Stale {
        /// The stale index row key.
        index_row: Bytes,
        /// Base row it points at.
        base_row: Bytes,
        /// Timestamp of the stale entry.
        ts: u64,
    },
    /// A fully indexed base row has no index entry.
    Missing {
        /// The index row key that should exist.
        index_row: Bytes,
        /// Base row missing from the index.
        base_row: Bytes,
        /// Timestamp the entry should carry (max ts of the indexed columns).
        ts: u64,
    },
}

/// Outcome of a verification pass.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Index entries checked.
    pub entries_checked: u64,
    /// Base rows checked.
    pub rows_checked: u64,
    /// All divergences found.
    pub divergences: Vec<Divergence>,
}

impl VerifyReport {
    /// True if index and base agree exactly.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Number of stale entries found.
    pub fn stale_count(&self) -> usize {
        self.divergences.iter().filter(|d| matches!(d, Divergence::Stale { .. })).count()
    }

    /// Number of missing entries found.
    pub fn missing_count(&self) -> usize {
        self.divergences.iter().filter(|d| matches!(d, Divergence::Missing { .. })).count()
    }
}

/// Compare `spec`'s index table against its base table and report every
/// stale and missing entry. Read-only.
pub fn verify_index(store: &dyn Store, spec: &IndexSpec) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let index_table = spec.index_table();

    // Expected index rows from the base table.
    let mut expected: BTreeMap<Bytes, u64> = BTreeMap::new();
    let rows = store.scan_rows(&spec.base_table, b"", None, u64::MAX, usize::MAX)?;
    for (row, cols) in rows {
        report.rows_checked += 1;
        let mut values = Vec::with_capacity(spec.columns.len());
        let mut ts = 0u64;
        for ic in &spec.columns {
            match cols.iter().find(|(c, _)| c == ic) {
                Some((_, v)) => {
                    values.push(v.value.clone());
                    ts = ts.max(v.ts);
                }
                None => {
                    values.clear();
                    break;
                }
            }
        }
        if values.len() == spec.columns.len() {
            expected.insert(index_row(&values, &row), ts);
        }
    }

    // Actual index rows.
    let actual = store.scan_rows(&index_table, b"", None, u64::MAX, usize::MAX)?;
    let mut seen: BTreeMap<Bytes, u64> = BTreeMap::new();
    for (key, cols) in actual {
        report.entries_checked += 1;
        let ts = cols.first().map(|(_, v)| v.ts).unwrap_or(0);
        seen.insert(key.clone(), ts);
        if !expected.contains_key(&key) {
            if let Some((_, base_row)) = decode_index_row(&key, spec.columns.len()) {
                report.divergences.push(Divergence::Stale { index_row: key, base_row, ts });
            }
        }
    }
    for (key, ts) in expected {
        if !seen.contains_key(&key) {
            if let Some((_, base_row)) = decode_index_row(&key, spec.columns.len()) {
                report.divergences.push(Divergence::Missing { index_row: key, base_row, ts });
            }
        }
    }
    Ok(report)
}

/// Repair every divergence reported by [`verify_index`]: delete stale
/// entries (at their own timestamp, exactly as read-repair does) and insert
/// missing ones (at the base entry's timestamp). Returns the repair count.
pub fn cleanse_index(store: &dyn Store, spec: &IndexSpec) -> Result<usize> {
    let report = verify_index(store, spec)?;
    let index_table = spec.index_table();
    let n = report.divergences.len();
    for d in report.divergences {
        match d {
            Divergence::Stale { index_row, ts, .. } => {
                store.raw_delete(&index_table, &index_row, &[Bytes::new()], ts)?;
            }
            Divergence::Missing { index_row, base_row, ts } => {
                // Re-derive the values defensively (the base may have moved
                // on since the scan) and only insert if still current.
                if let Some(vals) = read_index_values(store, spec, &base_row, u64::MAX)? {
                    let current = crate::encoding::index_row(&vals, &base_row);
                    if current == index_row {
                        // Administrative repair must out-time whatever
                        // shadows the entry: the entry may be missing
                        // precisely because a stray tombstone is newer than
                        // the base timestamp, so a repair at the old ts
                        // would stay invisible. Normal maintenance never
                        // does this (§4.3); a later base update still
                        // supersedes the repaired entry because its
                        // timestamps are newer still.
                        let shadow = store
                            .get_cell_versioned(&index_table, &index_row, b"", u64::MAX)?
                            .map(|(sts, _)| sts)
                            .unwrap_or(0);
                        store.raw_put(
                            &index_table,
                            &index_row,
                            &[(Bytes::new(), Bytes::new())],
                            shadow.max(ts) + 1,
                        )?;
                    }
                }
            }
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::DiffIndex;
    use crate::spec::IndexScheme;
    use diff_index_cluster::{Cluster, ClusterOptions};
    use tempdir_lite::TempDir;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn setup(scheme: IndexScheme) -> (TempDir, Cluster, DiffIndex, std::sync::Arc<IndexSpec>) {
        let dir = TempDir::new("verify").unwrap();
        let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
        cluster.create_table("t", 2).unwrap();
        let di = DiffIndex::new(cluster.clone());
        let h = di.create_index(IndexSpec::single("ix", "t", "c", scheme), 2).unwrap();
        let spec = std::sync::Arc::clone(&h.spec);
        (dir, cluster, di, spec)
    }

    #[test]
    fn clean_index_verifies_clean() {
        let (_d, cluster, di, spec) = setup(IndexScheme::SyncFull);
        for i in 0..20 {
            cluster.put("t", format!("r{i}").as_bytes(), &[(b("c"), b("v"))]).unwrap();
        }
        di.quiesce("t");
        let r = verify_index(&cluster, &spec).unwrap();
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert_eq!(r.entries_checked, 20);
        assert_eq!(r.rows_checked, 20);
    }

    #[test]
    fn sync_insert_staleness_is_detected_and_cleansed() {
        let (_d, cluster, di, spec) = setup(IndexScheme::SyncInsert);
        cluster.put("t", b"r1", &[(b("c"), b("old"))]).unwrap();
        cluster.put("t", b"r1", &[(b("c"), b("new"))]).unwrap();
        di.quiesce("t");
        let r = verify_index(&cluster, &spec).unwrap();
        assert_eq!(r.stale_count(), 1);
        assert_eq!(r.missing_count(), 0);
        let fixed = cleanse_index(&cluster, &spec).unwrap();
        assert_eq!(fixed, 1);
        assert!(verify_index(&cluster, &spec).unwrap().is_clean());
    }

    #[test]
    fn missing_entry_is_detected_and_restored() {
        let (_d, cluster, di, spec) = setup(IndexScheme::SyncFull);
        let ts = cluster.put("t", b"r1", &[(b("c"), b("v"))]).unwrap();
        di.quiesce("t");
        // Sabotage: delete the index entry behind Diff-Index's back.
        let key = index_row(&[b("v")], b"r1");
        cluster.raw_delete(&spec.index_table(), &key, &[Bytes::new()], ts + 10).unwrap();
        let r = verify_index(&cluster, &spec).unwrap();
        assert_eq!(r.missing_count(), 1);
        cleanse_index(&cluster, &spec).unwrap();
        // The restored entry must be visible again...
        let hits = di.get_by_index("t", "ix", b"v", 10).unwrap();
        assert_eq!(hits.len(), 1);
        // NOTE: the sabotage tombstone was written at ts+10; cleanse
        // restores with a fresh read — verify clean now.
        assert!(verify_index(&cluster, &spec).unwrap().is_clean());
    }

    #[test]
    fn verify_counts_both_directions_at_once() {
        let (_d, cluster, di, spec) = setup(IndexScheme::SyncInsert);
        cluster.put("t", b"r1", &[(b("c"), b("a"))]).unwrap();
        cluster.put("t", b"r1", &[(b("c"), b("b"))]).unwrap(); // stale "a"
        let ts = cluster.put("t", b"r2", &[(b("c"), b("x"))]).unwrap();
        di.quiesce("t");
        let key = index_row(&[b("x")], b"r2");
        cluster.raw_delete(&spec.index_table(), &key, &[Bytes::new()], ts + 1).unwrap(); // missing "x"
        let r = verify_index(&cluster, &spec).unwrap();
        assert_eq!(r.stale_count(), 1);
        assert_eq!(r.missing_count(), 1);
        assert_eq!(cleanse_index(&cluster, &spec).unwrap(), 2);
        assert!(verify_index(&cluster, &spec).unwrap().is_clean());
    }

    #[test]
    fn empty_tables_are_clean() {
        let (_d, cluster, _di, spec) = setup(IndexScheme::SyncFull);
        let r = verify_index(&cluster, &spec).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.rows_checked, 0);
        assert_eq!(cleanse_index(&cluster, &spec).unwrap(), 0);
    }
}

//! Session consistency — the `async-session` scheme's client side (§5.2).
//!
//! The server side of `async-session` is identical to `async-simple`; the
//! read-your-writes guarantee comes from *client-local* state: the library
//! keeps, per session, a private in-memory table of the index entries and
//! delete markers implied by the session's own puts, and merges it into
//! every session read. Sessions expire after a configurable idle time, and
//! session consistency auto-disables if the private state exceeds a memory
//! budget (both behaviours described in §5.2).

use crate::admin::DiffIndex;
use crate::encoding::{decode_index_row, index_row, value_prefix, value_range};
use crate::error::{IndexError, Result};
use crate::read::IndexHit;
use crate::spec::IndexScheme;
use bytes::Bytes;
use diff_index_cluster::ColumnValue;
use diff_index_lsm::DELTA;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Session limits (§5.2: "a maximum limit for session duration … say 30
/// minutes" and "a mechanism to monitor the memory usage of a session").
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// A session idle longer than this is destroyed; the next call returns
    /// [`IndexError::SessionExpired`].
    pub max_idle: Duration,
    /// Private-state budget; exceeding it disables session consistency for
    /// the remainder of the session (reads degrade to `async-simple`).
    pub max_bytes: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self { max_idle: Duration::from_secs(30 * 60), max_bytes: 8 * 1024 * 1024 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrivateEntry {
    ts: u64,
    tombstone: bool,
}

struct SessionState {
    /// index table name -> (index row key -> entry).
    private: HashMap<String, BTreeMap<Bytes, PrivateEntry>>,
    bytes: usize,
    last_active: Instant,
    consistency_disabled: bool,
    ended: bool,
}

static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// A client session. Obtain via [`DiffIndex::session`]; call
/// [`Session::end`] when done (or let the idle timeout collect it).
pub struct Session {
    di: DiffIndex,
    id: u64,
    config: SessionConfig,
    state: Mutex<SessionState>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("id", &self.id).finish()
    }
}

impl Session {
    pub(crate) fn new(di: DiffIndex, config: SessionConfig) -> Self {
        Self {
            di,
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            config,
            state: Mutex::new(SessionState {
                private: HashMap::new(),
                bytes: 0,
                last_active: Instant::now(),
                consistency_disabled: false,
                ended: false,
            }),
        }
    }

    /// Session id (the paper's random session ID; unique per process).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True if the memory monitor has disabled session consistency.
    pub fn consistency_disabled(&self) -> bool {
        self.state.lock().consistency_disabled
    }

    fn touch(&self) -> Result<()> {
        let mut s = self.state.lock();
        if s.ended {
            return Err(IndexError::SessionExpired);
        }
        if s.last_active.elapsed() > self.config.max_idle {
            s.ended = true;
            s.private.clear();
            s.bytes = 0;
            return Err(IndexError::SessionExpired);
        }
        s.last_active = Instant::now();
        Ok(())
    }

    /// Session-consistent put: a regular put that also records, client-side,
    /// the index entries and delete markers it implies for every
    /// `async-session` index on the table.
    pub fn put(&self, table: &str, row: &[u8], columns: &[ColumnValue]) -> Result<u64> {
        self.touch()?;
        // The server returns the old values and the assigned timestamp.
        let outcome = self.di.store().put_returning(table, row, columns)?;
        let handles = self.di.indexes_of(table);
        let mut s = self.state.lock();
        if s.consistency_disabled {
            return Ok(outcome.ts);
        }
        for handle in handles {
            let spec = &handle.spec;
            if spec.scheme != IndexScheme::AsyncSession {
                continue;
            }
            let touched: Vec<Bytes> = columns.iter().map(|(c, _)| c.clone()).collect();
            if !spec.touches(&touched) {
                continue;
            }
            // Assemble old/new values per indexed column: written columns
            // come from the put outcome, others from a snapshot read.
            let mut old_vals = Vec::with_capacity(spec.columns.len());
            let mut new_vals = Vec::with_capacity(spec.columns.len());
            let mut old_complete = true;
            let mut new_complete = true;
            for ic in &spec.columns {
                if let Some((_, v)) = columns.iter().find(|(c, _)| c == ic) {
                    new_vals.push(v.clone());
                    match outcome.old_values.iter().find(|(c, _)| c == ic) {
                        Some((_, Some(ov))) => old_vals.push(ov.value.clone()),
                        _ => old_complete = false,
                    }
                } else {
                    match self.di.store().get(table, row, ic, outcome.ts - DELTA)? {
                        Some(v) => {
                            old_vals.push(v.value.clone());
                            new_vals.push(v.value);
                        }
                        None => {
                            old_complete = false;
                            new_complete = false;
                        }
                    }
                }
            }
            let mut added = 0usize;
            let table_map = s.private.entry(spec.index_table()).or_default();
            if old_complete && old_vals != new_vals {
                let old_key = index_row(&old_vals, row);
                added += old_key.len() + 16;
                table_map
                    .insert(old_key, PrivateEntry { ts: outcome.ts - DELTA, tombstone: true });
            }
            if new_complete {
                let new_key = index_row(&new_vals, row);
                added += new_key.len() + 16;
                table_map.insert(new_key, PrivateEntry { ts: outcome.ts, tombstone: false });
            }
            s.bytes += added;
        }
        if s.bytes > self.config.max_bytes {
            // §5.2: "automatically disable session-consistency when
            // out-of-memory is to occur".
            s.consistency_disabled = true;
            s.private.clear();
            s.bytes = 0;
        }
        Ok(outcome.ts)
    }

    /// Session-consistent exact-match `getFromIndex`: the server result
    /// merged with this session's private state, so the session always sees
    /// its own writes.
    pub fn get_by_index(
        &self,
        base_table: &str,
        index_name: &str,
        value: &[u8],
        limit: usize,
    ) -> Result<Vec<IndexHit>> {
        self.touch()?;
        let handle = self.di.index(base_table, index_name)?;
        let server = self.di.get_by_index(base_table, index_name, value, limit)?;
        let prefix = value_prefix(value);
        let end = diff_index_cluster::encoding::prefix_end(&prefix);
        self.merge(&handle.spec.index_table(), handle.spec.columns.len(), server, &prefix, end.as_deref(), limit)
    }

    /// Session-consistent range `getFromIndex` (first indexed column in
    /// `[lo, hi]` / `[lo, hi)`).
    pub fn range_by_index(
        &self,
        base_table: &str,
        index_name: &str,
        lo: &[u8],
        hi: &[u8],
        inclusive: bool,
        limit: usize,
    ) -> Result<Vec<IndexHit>> {
        self.touch()?;
        let handle = self.di.index(base_table, index_name)?;
        let server = self.di.range_by_index(base_table, index_name, lo, hi, inclusive, limit)?;
        let (start, end) = value_range(lo, hi, inclusive);
        self.merge(&handle.spec.index_table(), handle.spec.columns.len(), server, &start, Some(&end), limit)
    }

    fn merge(
        &self,
        index_table: &str,
        n_values: usize,
        server: Vec<IndexHit>,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<IndexHit>> {
        let s = self.state.lock();
        if s.consistency_disabled {
            return Ok(server);
        }
        // Key server hits by their index row for the merge.
        let mut merged: BTreeMap<Bytes, IndexHit> = server
            .into_iter()
            .map(|h| (index_row(&h.values, &h.row), h))
            .collect();
        if let Some(private) = s.private.get(index_table) {
            let range = private.range((
                std::ops::Bound::Included(Bytes::copy_from_slice(start)),
                match end {
                    Some(e) => std::ops::Bound::Excluded(Bytes::copy_from_slice(e)),
                    None => std::ops::Bound::Unbounded,
                },
            ));
            for (key, entry) in range {
                if entry.tombstone {
                    if let Some(existing) = merged.get(key) {
                        // The private delete marker hides entries at or
                        // before its timestamp; a NEWER server entry (some
                        // other client re-inserted the value) survives.
                        if existing.ts <= entry.ts {
                            merged.remove(key);
                        }
                    }
                } else if let Some((values, row)) = decode_index_row(key, n_values) {
                    let newer = merged.get(key).map(|h| h.ts < entry.ts).unwrap_or(true);
                    if newer {
                        merged.insert(key.clone(), IndexHit { values, row, ts: entry.ts });
                    }
                }
            }
        }
        Ok(merged.into_values().take(limit).collect())
    }

    /// `end_session()`: discard private state; subsequent calls fail with
    /// [`IndexError::SessionExpired`].
    pub fn end(&self) {
        let mut s = self.state.lock();
        s.ended = true;
        s.private.clear();
        s.bytes = 0;
    }

    /// Approximate bytes of private session state.
    pub fn private_bytes(&self) -> usize {
        self.state.lock().bytes
    }
}

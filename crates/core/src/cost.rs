//! Analytic I/O cost of each scheme — the paper's Table 2 and the latency
//! equations of §4/§5.
//!
//! The benchmark harness (`table2` binary) validates these numbers against
//! counters measured on the real engine, and the simulator uses them to
//! expand a client operation into per-server work.

use crate::spec::IndexScheme;

/// Operation counts for one action (Table 2 row). `K` (rows returned by an
/// index read) parameterizes the `sync-insert` read row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoCost {
    /// Puts into the base table.
    pub base_put: u32,
    /// Reads from the base table.
    pub base_read: u32,
    /// Puts into the index table (the paper folds index deletes into this
    /// column, writing "1+1").
    pub index_put: u32,
    /// Reads from the index table.
    pub index_read: u32,
    /// Of the counts above, how many `(base_read, index_put)` happen
    /// asynchronously — the bracketed "[ ]" entries of Table 2.
    pub async_base_read: u32,
    /// Asynchronous index puts/deletes.
    pub async_index_put: u32,
}

impl IoCost {
    /// Synchronous operations only — what the client latency is made of.
    pub fn synchronous_ops(&self) -> u32 {
        self.base_put + (self.base_read - self.async_base_read)
            + (self.index_put - self.async_index_put)
            + self.index_read
    }

    /// Total operations including background work (system load).
    pub fn total_ops(&self) -> u32 {
        self.base_put + self.base_read + self.index_put + self.index_read
    }
}

/// Table 2, "update" action: cost of one base put under each scheme.
pub fn update_cost(scheme: Option<IndexScheme>) -> IoCost {
    match scheme {
        // no-index baseline: update = 1 base put.
        None => IoCost { base_put: 1, ..IoCost::default() },
        // sync-full: PB + PI + RB + DI (Algorithm 1); "1+1" index puts.
        Some(IndexScheme::SyncFull) => IoCost {
            base_put: 1,
            base_read: 1,
            index_put: 2,
            ..IoCost::default()
        },
        // sync-insert: PB + PI only (SU3/SU4 skipped).
        Some(IndexScheme::SyncInsert) => IoCost {
            base_put: 1,
            index_put: 1,
            ..IoCost::default()
        },
        // async-simple / async-session: PB sync; RB + DI + PI async ("[ ]").
        Some(IndexScheme::AsyncSimple) | Some(IndexScheme::AsyncSession) => IoCost {
            base_put: 1,
            base_read: 1,
            index_put: 2,
            index_read: 0,
            async_base_read: 1,
            async_index_put: 2,
        },
    }
}

/// Table 2, "read" action: cost of one exact-match index read returning `k`
/// rows. (The no-index row of Table 2 has a dash: answering the query
/// without an index is a full scan, not a constant-cost action.)
pub fn read_cost(scheme: IndexScheme, k: u32) -> IoCost {
    match scheme {
        // One index-table read; no double-check needed.
        IndexScheme::SyncFull => IoCost { index_read: 1, ..IoCost::default() },
        // Algorithm 2: 1 index read, K base reads, up to K stale-entry
        // deletes (we count the worst case, as Table 2 does).
        IndexScheme::SyncInsert => IoCost {
            base_read: k,
            index_put: k,
            index_read: 1,
            ..IoCost::default()
        },
        // Async schemes read the (possibly stale) index directly.
        IndexScheme::AsyncSimple | IndexScheme::AsyncSession => {
            IoCost { index_read: 1, ..IoCost::default() }
        }
    }
}

/// §4.1 Equation 1 / §4.2 Equation 2 / §5.1, as latency compositions.
/// Given per-op latencies, returns the client-visible index-update latency
/// added on top of the base put for each scheme.
pub fn index_update_latency(
    scheme: IndexScheme,
    l_pi: f64,
    l_rb: f64,
    l_di: f64,
) -> f64 {
    match scheme {
        // L(sync-full) = L(PI) + L(RB) + L(DI)        (Equation 1)
        IndexScheme::SyncFull => l_pi + l_rb + l_di,
        // L(sync-insert) = L(PI)                      (Equation 2)
        IndexScheme::SyncInsert => l_pi,
        // async: only the AUQ enqueue is on the client path.
        IndexScheme::AsyncSimple | IndexScheme::AsyncSession => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_update_row_no_index() {
        let c = update_cost(None);
        assert_eq!((c.base_put, c.base_read, c.index_put, c.index_read), (1, 0, 0, 0));
    }

    #[test]
    fn table2_update_row_sync_full() {
        let c = update_cost(Some(IndexScheme::SyncFull));
        assert_eq!((c.base_put, c.base_read, c.index_put, c.index_read), (1, 1, 2, 0));
        assert_eq!(c.synchronous_ops(), 4, "all work is on the client path");
    }

    #[test]
    fn table2_update_row_sync_insert() {
        let c = update_cost(Some(IndexScheme::SyncInsert));
        assert_eq!((c.base_put, c.base_read, c.index_put, c.index_read), (1, 0, 1, 0));
        assert_eq!(c.synchronous_ops(), 2);
    }

    #[test]
    fn table2_update_row_async() {
        let c = update_cost(Some(IndexScheme::AsyncSimple));
        assert_eq!((c.base_put, c.base_read, c.index_put, c.index_read), (1, 1, 2, 0));
        assert_eq!(c.synchronous_ops(), 1, "only the base put is synchronous");
        assert_eq!(c.total_ops(), 4, "background work still happens");
    }

    #[test]
    fn table2_read_rows() {
        let f = read_cost(IndexScheme::SyncFull, 5);
        assert_eq!((f.base_read, f.index_read, f.index_put), (0, 1, 0));
        let i = read_cost(IndexScheme::SyncInsert, 5);
        assert_eq!((i.base_read, i.index_read, i.index_put), (5, 1, 5));
        let a = read_cost(IndexScheme::AsyncSimple, 5);
        assert_eq!((a.base_read, a.index_read), (0, 1));
    }

    #[test]
    fn equation_1_dominated_by_base_read() {
        // In LSM, L(RB) >> L(PI), L(DI): check sync-full inherits that.
        let (pi, rb, di) = (0.5, 8.0, 0.5);
        let full = index_update_latency(IndexScheme::SyncFull, pi, rb, di);
        let insert = index_update_latency(IndexScheme::SyncInsert, pi, rb, di);
        let asynch = index_update_latency(IndexScheme::AsyncSimple, pi, rb, di);
        assert_eq!(full, 9.0);
        assert_eq!(insert, 0.5);
        assert_eq!(asynch, 0.0);
        // The paper's 60–80 % latency-reduction claim holds analytically:
        let reduction = 1.0 - insert / full;
        assert!(reduction > 0.6, "sync-insert cuts >60% of index update latency");
    }
}

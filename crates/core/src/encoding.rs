//! Index-row encoding: `value ⊕ rowkey`.
//!
//! The paper (§4, Remark): *"an index row uses the concatenation of the
//! index value and rowkey of the base entry as its rowkey, with a null
//! value"*. We concatenate the order-preserving encodings of each indexed
//! value (composite indexes have several) followed by the base row key, so
//! that:
//!
//! * all index entries for one value are contiguous (exact-match lookup is a
//!   prefix scan);
//! * entries sort by value (range queries on the indexed column are range
//!   scans, Figure 9);
//! * the `(values…, rowkey)` tuple can be decoded back unambiguously.

use bytes::{Bytes, BytesMut};
use diff_index_cluster::encoding::{decode_part, encode_part};

/// Build an index row key from the indexed values (in spec order) and the
/// base row key.
pub fn index_row(values: &[Bytes], base_row: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(
        values.iter().map(|v| v.len() + 2).sum::<usize>() + base_row.len() + 2,
    );
    for v in values {
        encode_part(&mut out, v);
    }
    encode_part(&mut out, base_row);
    out.freeze()
}

/// Decode an index row key produced by [`index_row`] with `n_values`
/// indexed columns, returning `(values, base_row)`.
pub fn decode_index_row(key: &[u8], n_values: usize) -> Option<(Vec<Bytes>, Bytes)> {
    let mut off = 0usize;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let (v, used) = decode_part(&key[off..])?;
        values.push(Bytes::from(v));
        off += used;
    }
    let (row, used) = decode_part(&key[off..])?;
    if off + used != key.len() {
        return None; // trailing bytes: not a well-formed index row
    }
    Some((values, Bytes::from(row)))
}

/// Row-key prefix covering every index entry whose **first** indexed value
/// equals `value` (exact-match lookup).
pub fn value_prefix(value: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(value.len() + 2);
    encode_part(&mut out, value);
    out.freeze()
}

/// Row-key range `[start, end)` covering every index entry whose first
/// indexed value `v` satisfies `lo <= v` and (`v <= hi` if `inclusive`,
/// else `v < hi`). Used by range queries (Figure 9).
pub fn value_range(lo: &[u8], hi: &[u8], inclusive: bool) -> (Bytes, Bytes) {
    let start = value_prefix(lo);
    let end = if inclusive {
        // The smallest byte string strictly greater than `hi` is
        // `hi ++ [0x00]`; entries for `hi` itself stay inside the bound.
        let mut hi_succ = Vec::with_capacity(hi.len() + 1);
        hi_succ.extend_from_slice(hi);
        hi_succ.push(0x00);
        value_prefix(&hi_succ)
    } else {
        value_prefix(hi)
    };
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_value() {
        let k = index_row(&[Bytes::from("red")], b"item42");
        let (vals, row) = decode_index_row(&k, 1).unwrap();
        assert_eq!(vals, vec![Bytes::from("red")]);
        assert_eq!(row, Bytes::from("item42"));
    }

    #[test]
    fn roundtrip_composite_and_binary() {
        let vals = vec![Bytes::from_static(b"a\x00b"), Bytes::from_static(b"")];
        let k = index_row(&vals, b"\x00row\x00");
        let (got, row) = decode_index_row(&k, 2).unwrap();
        assert_eq!(got, vals);
        assert_eq!(row, Bytes::from_static(b"\x00row\x00"));
    }

    #[test]
    fn decode_with_wrong_arity_fails() {
        let k = index_row(&[Bytes::from("v")], b"r");
        assert!(decode_index_row(&k, 2).is_none());
        // Arity 0 leaves the value part as trailing bytes: also rejected.
        assert!(decode_index_row(&k, 0).is_none());
    }

    #[test]
    fn entries_group_by_value_then_rowkey() {
        let a1 = index_row(&[Bytes::from("apple")], b"r1");
        let a2 = index_row(&[Bytes::from("apple")], b"r2");
        let b1 = index_row(&[Bytes::from("banana")], b"r1");
        assert!(a1 < a2 && a2 < b1);
        // Exact-match prefix covers exactly the apple entries.
        let p = value_prefix(b"apple");
        assert!(a1.starts_with(&p) && a2.starts_with(&p));
        assert!(!b1.starts_with(&p));
        // And no value that merely EXTENDS "apple" matches the prefix:
        let apple_pie = index_row(&[Bytes::from("applepie")], b"r1");
        assert!(!apple_pie.starts_with(&p));
    }

    #[test]
    fn value_sort_order_is_preserved_despite_rowkeys() {
        // "a" with a huge rowkey still sorts before "b" with a tiny one.
        let a = index_row(&[Bytes::from("a")], &[0xFFu8; 64]);
        let b = index_row(&[Bytes::from("b")], b"");
        assert!(a < b);
    }

    #[test]
    fn value_range_exclusive_and_inclusive() {
        let e10 = index_row(&[Bytes::from("10")], b"r");
        let e15 = index_row(&[Bytes::from("15")], b"r");
        let e20 = index_row(&[Bytes::from("20")], b"r");
        let e20b = index_row(&[Bytes::from("20")], b"zzzz");
        let e21 = index_row(&[Bytes::from("21")], b"r");

        let (lo, hi) = value_range(b"10", b"20", false);
        assert!(e10 >= lo && e10 < hi);
        assert!(e15 >= lo && e15 < hi);
        assert!(e20 >= hi, "exclusive hi excludes value 20");

        let (lo, hi) = value_range(b"10", b"20", true);
        assert!(e20 >= lo && e20 < hi, "inclusive hi includes value 20");
        assert!(e20b < hi, "…including every rowkey under value 20");
        assert!(e21 >= hi, "but not value 21");
    }
}

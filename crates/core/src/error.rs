//! Error type for Diff-Index operations.

use diff_index_cluster::ClusterError;
use std::fmt;

/// Errors from index creation, maintenance and reads.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying cluster/storage failure.
    Cluster(ClusterError),
    /// The named index does not exist.
    NoSuchIndex(String),
    /// An index with that name already exists on the base table.
    IndexExists(String),
    /// The session has been inactive past its lifetime limit and was
    /// garbage-collected (§5.2); start a new session.
    SessionExpired,
    /// A bounded AUQ at capacity rejected the write's index tasks
    /// (`AdmissionPolicy::Reject`); the base write is not acked. Retryable:
    /// back off and retry once the APS drains the queue.
    AuqFull {
        /// Number of index tasks turned away.
        rejected: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Cluster(e) => write!(f, "cluster: {e}"),
            IndexError::NoSuchIndex(n) => write!(f, "no such index: {n}"),
            IndexError::IndexExists(n) => write!(f, "index already exists: {n}"),
            IndexError::SessionExpired => write!(f, "session expired"),
            IndexError::AuqFull { rejected } => {
                write!(f, "async update queue full: {rejected} task(s) rejected")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for IndexError {
    fn from(e: ClusterError) -> Self {
        IndexError::Cluster(e)
    }
}

/// Result alias for Diff-Index operations.
pub type Result<T> = std::result::Result<T, IndexError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(IndexError::NoSuchIndex("i".into()).to_string().contains('i'));
        assert!(IndexError::SessionExpired.to_string().contains("expired"));
        let e = IndexError::from(ClusterError::NoSuchTable("t".into()));
        assert!(std::error::Error::source(&e).is_some());
        assert!(IndexError::AuqFull { rejected: 3 }.to_string().contains("full"));
    }
}

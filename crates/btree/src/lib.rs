//! # diff-index-btree
//!
//! A paged, on-disk B+Tree with **in-place updates** and a distinguished
//! insert-vs-update API — the baseline engine for Table 1 of the Diff-Index
//! paper (LSM vs. B-Tree). See [`BTree`].
//!
//! ```
//! use diff_index_btree::BTree;
//! let dir = tempdir_lite::TempDir::new("doc").unwrap();
//! let t = BTree::open(dir.path().join("t.db"), 256).unwrap();
//! assert_eq!(t.insert(b"k", b"v1").unwrap(), None);          // insert
//! assert_eq!(t.insert(b"k", b"v2").unwrap(), Some(b"v1".to_vec())); // update returns old
//! ```

#![warn(missing_docs)]

pub mod node;
pub mod pager;
pub mod tree;

pub use pager::{Pager, PAGE_SIZE};
pub use tree::BTree;

//! B+Tree node layout and (de)serialization.
//!
//! Nodes are serialized into single pages. A leaf stores sorted
//! `(key, value)` entries and a pointer to the next leaf (for range scans);
//! an internal node stores separator keys and child page ids.

use crate::pager::PAGE_SIZE;

/// Upper bound on a node's serialized size, leaving slack for the header.
pub const NODE_CAPACITY: usize = PAGE_SIZE - 16;

/// A decoded B+Tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf node: sorted entries plus next-leaf link (0 = none).
    Leaf {
        /// Sorted `(key, value)` pairs.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// Page id of the next leaf, or 0.
        next: u64,
    },
    /// Internal node: `children.len() == keys.len() + 1`; subtree
    /// `children[i]` holds keys `< keys[i]`, `children[i+1]` holds `>= keys[i]`.
    Internal {
        /// Separator keys.
        keys: Vec<Vec<u8>>,
        /// Child page ids.
        children: Vec<u64>,
    },
}

fn put_var(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_var(buf: &[u8], off: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf.get(*off)?;
        *off += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

fn put_slice(out: &mut Vec<u8>, s: &[u8]) {
    put_var(out, s.len() as u64);
    out.extend_from_slice(s);
}

fn get_slice(buf: &[u8], off: &mut usize) -> Option<Vec<u8>> {
    let len = get_var(buf, off)? as usize;
    let s = buf.get(*off..*off + len)?.to_vec();
    *off += len;
    Some(s)
}

impl Node {
    /// Empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf { entries: Vec::new(), next: 0 }
    }

    /// Serialized byte size (must stay ≤ [`NODE_CAPACITY`] before writing).
    pub fn serialized_size(&self) -> usize {
        self.encode().len()
    }

    /// Encode into page bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        match self {
            Node::Leaf { entries, next } => {
                out.push(1u8);
                put_var(&mut out, *next);
                put_var(&mut out, entries.len() as u64);
                for (k, v) in entries {
                    put_slice(&mut out, k);
                    put_slice(&mut out, v);
                }
            }
            Node::Internal { keys, children } => {
                out.push(2u8);
                put_var(&mut out, keys.len() as u64);
                for k in keys {
                    put_slice(&mut out, k);
                }
                for c in children {
                    put_var(&mut out, *c);
                }
            }
        }
        out
    }

    /// Decode from page bytes.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        match *buf.first()? {
            1 => {
                let mut off = 1usize;
                let next = get_var(buf, &mut off)?;
                let n = get_var(buf, &mut off)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = get_slice(buf, &mut off)?;
                    let v = get_slice(buf, &mut off)?;
                    entries.push((k, v));
                }
                Some(Node::Leaf { entries, next })
            }
            2 => {
                let mut off = 1usize;
                let n = get_var(buf, &mut off)? as usize;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(get_slice(buf, &mut off)?);
                }
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..n + 1 {
                    children.push(get_var(buf, &mut off)?);
                }
                Some(Node::Internal { keys, children })
            }
            _ => None,
        }
    }

    /// True if the node no longer fits a page and must split.
    pub fn overflows(&self) -> bool {
        self.serialized_size() > NODE_CAPACITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let n = Node::Leaf {
            entries: vec![(b"a".to_vec(), b"1".to_vec()), (b"bb".to_vec(), b"22".to_vec())],
            next: 42,
        };
        assert_eq!(Node::decode(&n.encode()), Some(n));
    }

    #[test]
    fn internal_roundtrip() {
        let n = Node::Internal {
            keys: vec![b"m".to_vec()],
            children: vec![3, 9],
        };
        assert_eq!(Node::decode(&n.encode()), Some(n));
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let n = Node::empty_leaf();
        assert_eq!(Node::decode(&n.encode()), Some(n));
    }

    #[test]
    fn decode_garbage_is_none() {
        assert_eq!(Node::decode(&[]), None);
        assert_eq!(Node::decode(&[7, 1, 2, 3]), None);
        assert_eq!(Node::decode(&[1]), None, "truncated leaf");
    }

    #[test]
    fn overflow_detection() {
        let mut n = Node::Leaf { entries: Vec::new(), next: 0 };
        if let Node::Leaf { entries, .. } = &mut n {
            for i in 0..100 {
                entries.push((format!("key-{i:04}").into_bytes(), vec![b'v'; 64]));
            }
        }
        assert!(n.overflows());
    }
}

//! Fixed-size page manager with a small in-memory page cache.
//!
//! The B+Tree reads and writes 4 KiB pages in place — exactly the
//! random-I/O, update-in-place behaviour Table 1 of the paper contrasts with
//! the LSM engine's append-only writes. Page reads/writes are counted so the
//! Table 1 bench can report I/O amplification alongside wall-clock numbers.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// One cached page.
struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
    tick: u64,
}

struct CacheInner {
    pages: HashMap<u64, CachedPage>,
    tick: u64,
}

/// Page-granular file accessor with write-back caching.
pub struct Pager {
    file: File,
    path: PathBuf,
    cache: Mutex<CacheInner>,
    cache_capacity: usize,
    /// Number of pages in the file (allocated high-water mark).
    page_count: AtomicU64,
    /// Physical page reads that missed the cache.
    disk_reads: AtomicU64,
    /// Physical page writes.
    disk_writes: AtomicU64,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("pages", &self.page_count())
            .finish()
    }
}

impl Pager {
    /// Open (creating if needed) a paged file. `cache_pages` bounds the
    /// number of resident pages.
    pub fn open(path: impl Into<PathBuf>, cache_pages: usize) -> io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let len = file.metadata()?.len();
        let page_count = len.div_ceil(PAGE_SIZE as u64);
        Ok(Self {
            file,
            path,
            cache: Mutex::new(CacheInner { pages: HashMap::new(), tick: 0 }),
            cache_capacity: cache_pages.max(8),
            page_count: AtomicU64::new(page_count),
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
        })
    }

    /// Current number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::Relaxed)
    }

    /// Physical (cache-missing) page reads so far.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }

    /// Physical page writes so far.
    pub fn disk_writes(&self) -> u64 {
        self.disk_writes.load(Ordering::Relaxed)
    }

    /// Allocate a fresh page at the end of the file, returning its id.
    pub fn allocate(&self) -> io::Result<u64> {
        let id = self.page_count.fetch_add(1, Ordering::Relaxed);
        // Materialize lazily; the page exists once written.
        let mut cache = self.cache.lock();
        let tick = Self::bump_tick(&mut cache);
        cache.pages.insert(id, CachedPage { data: vec![0; PAGE_SIZE], dirty: true, tick });
        self.evict_if_needed(&mut cache)?;
        Ok(id)
    }

    fn bump_tick(cache: &mut CacheInner) -> u64 {
        cache.tick += 1;
        cache.tick
    }

    /// Read a page (through the cache).
    pub fn read(&self, id: u64) -> io::Result<Vec<u8>> {
        let mut cache = self.cache.lock();
        let tick = Self::bump_tick(&mut cache);
        if let Some(p) = cache.pages.get_mut(&id) {
            p.tick = tick;
            return Ok(p.data.clone());
        }
        drop(cache);
        let mut buf = vec![0u8; PAGE_SIZE];
        let off = id * PAGE_SIZE as u64;
        let file_len = self.file.metadata()?.len();
        if off < file_len {
            let avail = ((file_len - off) as usize).min(PAGE_SIZE);
            self.file.read_exact_at(&mut buf[..avail], off)?;
        }
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock();
        let tick = Self::bump_tick(&mut cache);
        cache.pages.insert(id, CachedPage { data: buf.clone(), dirty: false, tick });
        self.evict_if_needed(&mut cache)?;
        Ok(buf)
    }

    /// Write a page (into the cache; flushed on eviction or [`Pager::sync`]).
    pub fn write(&self, id: u64, data: &[u8]) -> io::Result<()> {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {} bytes", data.len());
        let mut page = vec![0u8; PAGE_SIZE];
        page[..data.len()].copy_from_slice(data);
        let mut cache = self.cache.lock();
        let tick = Self::bump_tick(&mut cache);
        cache.pages.insert(id, CachedPage { data: page, dirty: true, tick });
        self.evict_if_needed(&mut cache)?;
        Ok(())
    }

    fn evict_if_needed(&self, cache: &mut CacheInner) -> io::Result<()> {
        while cache.pages.len() > self.cache_capacity {
            let Some((&victim, _)) = cache.pages.iter().min_by_key(|(_, p)| p.tick) else {
                break;
            };
            let page = cache.pages.remove(&victim).unwrap();
            if page.dirty {
                self.file.write_all_at(&page.data, victim * PAGE_SIZE as u64)?;
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Flush all dirty pages and fsync.
    pub fn sync(&self) -> io::Result<()> {
        let mut cache = self.cache.lock();
        for (&id, page) in cache.pages.iter_mut() {
            if page.dirty {
                self.file.write_all_at(&page.data, id * PAGE_SIZE as u64)?;
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
                page.dirty = false;
            }
        }
        self.file.sync_data()
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir_lite::TempDir;

    #[test]
    fn allocate_read_write_roundtrip() {
        let dir = TempDir::new("pager").unwrap();
        let p = Pager::open(dir.path().join("f.db"), 16).unwrap();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
        p.write(a, b"hello").unwrap();
        p.write(b, b"world").unwrap();
        assert_eq!(&p.read(a).unwrap()[..5], b"hello");
        assert_eq!(&p.read(b).unwrap()[..5], b"world");
    }

    #[test]
    fn data_survives_sync_and_reopen() {
        let dir = TempDir::new("pager").unwrap();
        let path = dir.path().join("f.db");
        let id;
        {
            let p = Pager::open(&path, 16).unwrap();
            id = p.allocate().unwrap();
            p.write(id, b"persistent").unwrap();
            p.sync().unwrap();
        }
        let p = Pager::open(&path, 16).unwrap();
        assert_eq!(p.page_count(), 1);
        assert_eq!(&p.read(id).unwrap()[..10], b"persistent");
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let dir = TempDir::new("pager").unwrap();
        let p = Pager::open(dir.path().join("f.db"), 8).unwrap();
        let ids: Vec<u64> = (0..64).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, format!("page-{i}").as_bytes()).unwrap();
        }
        // Most pages must have been evicted; re-reading must hit disk.
        for (i, &id) in ids.iter().enumerate() {
            let data = p.read(id).unwrap();
            assert_eq!(&data[..format!("page-{i}").len()], format!("page-{i}").as_bytes());
        }
        assert!(p.disk_writes() > 0);
        assert!(p.disk_reads() > 0);
    }

    #[test]
    fn reading_unwritten_page_is_zeroes() {
        let dir = TempDir::new("pager").unwrap();
        let p = Pager::open(dir.path().join("f.db"), 8).unwrap();
        let id = p.allocate().unwrap();
        assert_eq!(p.read(id).unwrap(), vec![0u8; PAGE_SIZE]);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_write_panics() {
        let dir = TempDir::new("pager").unwrap();
        let p = Pager::open(dir.path().join("f.db"), 8).unwrap();
        let id = p.allocate().unwrap();
        p.write(id, &vec![0u8; PAGE_SIZE + 1]).unwrap();
    }
}

//! The B+Tree proper: insert / update / get / delete / range scan.
//!
//! This is the paper's Table 1 baseline. The operational contrast with the
//! LSM engine is deliberate and visible in the API:
//!
//! * [`BTree::insert`] **distinguishes insert from update** — it returns the
//!   old value when the key already existed. An RDBMS therefore gets the old
//!   index value "for free" during the base write, which is exactly why
//!   Equation 1 loses its `L(RB)` term on B-Trees (§9, "B-tree vs. LSM").
//! * Updates happen **in place**: the leaf page is rewritten where it is.
//! * Deletes physically remove the entry (lazy structural rebalancing: pages
//!   may underflow, which is fine for a baseline; keys remain findable and
//!   scans remain correct).

use crate::node::{Node, NODE_CAPACITY};
use crate::pager::Pager;
use parking_lot::Mutex;
use std::io;
use std::path::PathBuf;

/// Meta page layout: magic (8) + root page id (8).
const META_MAGIC: u64 = 0xB7EE_0001_CAFE_D00D;

/// Result of a recursive insert: the value the key replaced (if any), plus
/// `(separator, new page)` when the node split on the way back up.
type InsertOutcome = (Option<Vec<u8>>, Option<(Vec<u8>, u64)>);

/// A paged on-disk B+Tree with in-place updates.
pub struct BTree {
    pager: Pager,
    /// Root page id, kept in the meta page (page 0).
    root: Mutex<u64>,
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree").field("pager", &self.pager).finish()
    }
}

impl BTree {
    /// Open (or create) a tree at `path` with a page cache of `cache_pages`.
    pub fn open(path: impl Into<PathBuf>, cache_pages: usize) -> io::Result<Self> {
        let pager = Pager::open(path, cache_pages)?;
        let root = if pager.page_count() == 0 {
            // Fresh file: page 0 = meta, page 1 = empty root leaf.
            let meta = pager.allocate()?;
            debug_assert_eq!(meta, 0);
            let root = pager.allocate()?;
            pager.write(root, &Node::empty_leaf().encode())?;
            write_meta(&pager, root)?;
            root
        } else {
            let meta = pager.read(0)?;
            let magic = u64::from_le_bytes(meta[0..8].try_into().unwrap());
            if magic != META_MAGIC {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad btree magic"));
            }
            u64::from_le_bytes(meta[8..16].try_into().unwrap())
        };
        Ok(Self { pager, root: Mutex::new(root) })
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        let mut page = *self.root.lock();
        loop {
            match self.load(page)? {
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone()));
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
            }
        }
    }

    /// Insert or update. Returns the previous value if the key existed —
    /// the "is this an insert or an update?" knowledge an LSM put lacks.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> io::Result<Option<Vec<u8>>> {
        assert!(
            key.len() + value.len() + 64 < NODE_CAPACITY,
            "entry too large for a page"
        );
        let mut root_guard = self.root.lock();
        let (old, split) = self.insert_rec(*root_guard, key, value)?;
        if let Some((sep, new_page)) = split {
            let new_root_node =
                Node::Internal { keys: vec![sep], children: vec![*root_guard, new_page] };
            let new_root = self.pager.allocate()?;
            self.pager.write(new_root, &new_root_node.encode())?;
            write_meta(&self.pager, new_root)?;
            *root_guard = new_root;
        }
        Ok(old)
    }

    fn insert_rec(
        &self,
        page: u64,
        key: &[u8],
        value: &[u8],
    ) -> io::Result<InsertOutcome> {
        match self.load(page)? {
            Node::Leaf { mut entries, next } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        // In-place update.
                        let old = std::mem::replace(&mut entries[i].1, value.to_vec());
                        Some(old)
                    }
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let node = Node::Leaf { entries, next };
                if !node.overflows() {
                    self.pager.write(page, &node.encode())?;
                    return Ok((old, None));
                }
                // Split the leaf in half.
                let Node::Leaf { mut entries, next } = node else { unreachable!() };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right_page = self.pager.allocate()?;
                self.pager
                    .write(right_page, &Node::Leaf { entries: right_entries, next }.encode())?;
                self.pager.write(page, &Node::Leaf { entries, next: right_page }.encode())?;
                Ok((old, Some((sep, right_page))))
            }
            Node::Internal { mut keys, mut children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let (old, split) = self.insert_rec(children[idx], key, value)?;
                if let Some((sep, new_page)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, new_page);
                }
                let node = Node::Internal { keys, children };
                if !node.overflows() {
                    self.pager.write(page, &node.encode())?;
                    return Ok((old, None));
                }
                let Node::Internal { mut keys, mut children } = node else { unreachable!() };
                let mid = keys.len() / 2;
                let sep = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `sep` moves up, not into either half
                let right_children = children.split_off(mid + 1);
                let right_page = self.pager.allocate()?;
                self.pager.write(
                    right_page,
                    &Node::Internal { keys: right_keys, children: right_children }.encode(),
                )?;
                self.pager.write(page, &Node::Internal { keys, children }.encode())?;
                Ok((old, Some((sep, right_page))))
            }
        }
    }

    /// Remove a key, returning its value if present. Structural rebalancing
    /// is lazy (pages may underflow); correctness of lookups and scans is
    /// unaffected.
    pub fn delete(&self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        let root = *self.root.lock();
        self.delete_rec(root, key)
    }

    fn delete_rec(&self, page: u64, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.load(page)? {
            Node::Leaf { mut entries, next } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let (_, v) = entries.remove(i);
                        self.pager.write(page, &Node::Leaf { entries, next }.encode())?;
                        Ok(Some(v))
                    }
                    Err(_) => Ok(None),
                }
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                self.delete_rec(children[idx], key)
            }
        }
    }

    /// Range scan over `[start, end)` (end `None` = unbounded), up to `limit`
    /// entries, walking the leaf chain.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut page = *self.root.lock();
        // Descend to the leaf containing `start`.
        while let Node::Internal { keys, children } = self.load(page)? {
            let idx = keys.partition_point(|k| k.as_slice() <= start);
            page = children[idx];
        }
        let mut out = Vec::new();
        loop {
            let Node::Leaf { entries, next } = self.load(page)? else {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "leaf chain broken"));
            };
            for (k, v) in entries {
                if k.as_slice() < start {
                    continue;
                }
                if let Some(e) = end {
                    if k.as_slice() >= e {
                        return Ok(out);
                    }
                }
                out.push((k, v));
                if out.len() >= limit {
                    return Ok(out);
                }
            }
            if next == 0 {
                return Ok(out);
            }
            page = next;
        }
    }

    /// Flush dirty pages and fsync.
    pub fn sync(&self) -> io::Result<()> {
        self.pager.sync()
    }

    /// Physical page reads that missed the cache.
    pub fn disk_reads(&self) -> u64 {
        self.pager.disk_reads()
    }

    /// Physical page writes.
    pub fn disk_writes(&self) -> u64 {
        self.pager.disk_writes()
    }

    /// Allocated page count.
    pub fn page_count(&self) -> u64 {
        self.pager.page_count()
    }

    fn load(&self, page: u64) -> io::Result<Node> {
        let buf = self.pager.read(page)?;
        Node::decode(&buf)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad node page {page}")))
    }
}

fn write_meta(pager: &Pager, root: u64) -> io::Result<()> {
    let mut meta = Vec::with_capacity(16);
    meta.extend_from_slice(&META_MAGIC.to_le_bytes());
    meta.extend_from_slice(&root.to_le_bytes());
    pager.write(0, &meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir_lite::TempDir;

    fn open(dir: &TempDir) -> BTree {
        BTree::open(dir.path().join("t.btree"), 256).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let dir = TempDir::new("bt").unwrap();
        let t = open(&dir);
        assert_eq!(t.insert(b"k1", b"v1").unwrap(), None);
        assert_eq!(t.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(t.get(b"nope").unwrap(), None);
    }

    #[test]
    fn update_returns_old_value() {
        // The key behavioural difference from LSM put: the tree KNOWS this
        // is an update and hands back the old value.
        let dir = TempDir::new("bt").unwrap();
        let t = open(&dir);
        assert_eq!(t.insert(b"k", b"old").unwrap(), None);
        assert_eq!(t.insert(b"k", b"new").unwrap(), Some(b"old".to_vec()));
        assert_eq!(t.get(b"k").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn many_inserts_split_pages() {
        let dir = TempDir::new("bt").unwrap();
        let t = open(&dir);
        let n = 5000;
        for i in 0..n {
            t.insert(format!("key{i:06}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        assert!(t.page_count() > 10, "tree must have split into many pages");
        for i in (0..n).step_by(97) {
            assert_eq!(
                t.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("value-{i}").into_bytes())
            );
        }
    }

    #[test]
    fn random_order_inserts_are_sorted_in_scan() {
        let dir = TempDir::new("bt").unwrap();
        let t = open(&dir);
        let mut keys: Vec<u32> = (0..2000).collect();
        // Deterministic shuffle.
        let mut state = 12345u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for k in &keys {
            t.insert(format!("k{k:06}").as_bytes(), b"v").unwrap();
        }
        let all = t.scan(b"", None, usize::MAX).unwrap();
        assert_eq!(all.len(), 2000);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "scan output must be sorted");
        }
    }

    #[test]
    fn scan_bounds_and_limit() {
        let dir = TempDir::new("bt").unwrap();
        let t = open(&dir);
        for i in 0..100 {
            t.insert(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        let mid = t.scan(b"k010", Some(b"k020"), usize::MAX).unwrap();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0].0, b"k010".to_vec());
        let lim = t.scan(b"k000", None, 5).unwrap();
        assert_eq!(lim.len(), 5);
    }

    #[test]
    fn delete_removes_entry() {
        let dir = TempDir::new("bt").unwrap();
        let t = open(&dir);
        t.insert(b"a", b"1").unwrap();
        t.insert(b"b", b"2").unwrap();
        assert_eq!(t.delete(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.delete(b"a").unwrap(), None);
        assert_eq!(t.get(b"a").unwrap(), None);
        assert_eq!(t.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.scan(b"", None, usize::MAX).unwrap().len(), 1);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = TempDir::new("bt").unwrap();
        let path = dir.path().join("t.btree");
        {
            let t = BTree::open(&path, 64).unwrap();
            for i in 0..500 {
                t.insert(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            t.sync().unwrap();
        }
        let t = BTree::open(&path, 64).unwrap();
        for i in (0..500).step_by(31) {
            assert_eq!(
                t.get(format!("k{i:04}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn tiny_cache_forces_real_io_but_stays_correct() {
        let dir = TempDir::new("bt").unwrap();
        let t = BTree::open(dir.path().join("t.btree"), 8).unwrap();
        for i in 0..3000 {
            t.insert(format!("key{i:06}").as_bytes(), vec![b'x'; 32].as_slice()).unwrap();
        }
        assert!(t.disk_writes() > 0, "evictions must have hit disk");
        for i in (0..3000).step_by(211) {
            assert!(t.get(format!("key{i:06}").as_bytes()).unwrap().is_some());
        }
        assert!(t.disk_reads() > 0);
    }

    #[test]
    #[should_panic(expected = "entry too large")]
    fn oversized_entry_panics() {
        let dir = TempDir::new("bt").unwrap();
        let t = open(&dir);
        t.insert(b"k", &vec![0u8; 5000]).unwrap();
    }
}

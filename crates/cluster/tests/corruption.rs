//! On-disk corruption must surface as a *typed* error at the cluster
//! boundary — never a panic, never silently wrong data.
//!
//! Every SSTable block carries a CRC-32 that is verified on decode
//! (`crates/lsm`); this test proves the verification survives the trip up
//! the stack: a bit flipped in a flushed block turns reads of that region
//! into `ClusterError::Storage(LsmError::Corruption)`, classified
//! non-retryable (resending the request cannot help), while the write path
//! (WAL + memtable) stays available.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterError, ClusterOptions};
use diff_index_lsm::LsmError;
use std::path::{Path, PathBuf};

fn find_sstables(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            find_sstables(&path, out);
        } else if path.extension().is_some_and(|e| e == "sst") {
            out.push(path);
        }
    }
}

#[test]
fn flipped_block_bit_surfaces_as_typed_corruption() {
    let dir = tempdir_lite::TempDir::new("corrupt").unwrap();
    let cluster = Cluster::new(dir.path(), ClusterOptions::default()).unwrap();
    cluster.create_table("t", 2).unwrap();
    for i in 0..8 {
        cluster
            .put(
                "t",
                format!("row{i}").as_bytes(),
                &[(Bytes::from("c"), Bytes::from(format!("v{i}")))],
            )
            .unwrap();
    }
    cluster.flush_table("t").unwrap();

    // Flip one bit in the first data block of every flushed table file.
    // Data blocks start at offset 0; their CRC is checked on decode, not at
    // open, so the damage is only discovered by the read below.
    let mut tables = Vec::new();
    find_sstables(dir.path(), &mut tables);
    assert!(!tables.is_empty(), "flush must have produced sstables");
    for path in &tables {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(path, &bytes).unwrap();
    }

    let mut corrupt_reads = 0;
    for i in 0..8 {
        match cluster.get("t", format!("row{i}").as_bytes(), b"c", u64::MAX) {
            Err(e @ ClusterError::Storage(LsmError::Corruption(_))) => {
                assert!(
                    e.to_string().contains("checksum"),
                    "corruption error should name the failed check: {e}"
                );
                assert!(!e.is_retryable(), "corruption must not be classified retryable");
                corrupt_reads += 1;
            }
            Err(e) => panic!("corrupted block surfaced the wrong error type: {e}"),
            Ok(v) => panic!("corrupted block served data: {v:?}"),
        }
    }
    assert!(corrupt_reads > 0);

    // The write path does not touch the damaged blocks: new writes (WAL +
    // memtable) still ack, so the region is degraded, not bricked.
    cluster
        .put("t", b"row0", &[(Bytes::from("c"), Bytes::from("fresh"))])
        .expect("writes must survive read-path corruption");
}

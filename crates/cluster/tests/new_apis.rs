//! Tests for the cluster APIs added during Diff-Index development:
//! raw row-range scans, versioned cell reads, server restart, and region
//! introspection.

use bytes::Bytes;
use diff_index_cluster::{Cluster, ClusterOptions};
use tempdir_lite::TempDir;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn cluster(n: usize) -> (TempDir, Cluster) {
    let dir = TempDir::new("capi").unwrap();
    let c = Cluster::new(dir.path(), ClusterOptions { num_servers: n, ..Default::default() })
        .unwrap();
    (dir, c)
}

#[test]
fn scan_rows_range_includes_extensions_of_start() {
    let (_d, c) = cluster(2);
    c.create_table("t", 4).unwrap();
    for r in ["aa", "aab", "ab", "b", "ba"] {
        c.put("t", r.as_bytes(), &[(b("c"), b("v"))]).unwrap();
    }
    // Plain byte-string range semantics: "aa" <= row < "b".
    let rows = c.scan_rows_range("t", b"aa", Some(b"b"), u64::MAX, 100).unwrap();
    let got: Vec<&str> =
        rows.iter().map(|(r, _)| std::str::from_utf8(r).unwrap()).collect();
    assert_eq!(got, vec!["aa", "aab", "ab"]);
    // Unbounded end.
    let rows = c.scan_rows_range("t", b"b", None, u64::MAX, 100).unwrap();
    assert_eq!(rows.len(), 2);
    // scan_rows shares the same visible result here (both include
    // extensions of the start row and exclude "b" and beyond).
    let rows = c.scan_rows("t", b"aa", Some(b"b"), u64::MAX, 100).unwrap();
    assert_eq!(rows.len(), 3);
}

#[test]
fn get_cell_versioned_exposes_tombstones() {
    let (_d, c) = cluster(1);
    c.create_table("t", 1).unwrap();
    assert!(c.get_cell_versioned("t", b"r", b"c", u64::MAX).unwrap().is_none());
    let t1 = c.put("t", b"r", &[(b("c"), b("v"))]).unwrap();
    let (ts, tomb) = c.get_cell_versioned("t", b"r", b"c", u64::MAX).unwrap().unwrap();
    assert_eq!(ts, t1);
    assert!(!tomb);
    let t2 = c.delete("t", b"r", &[b("c")]).unwrap();
    let (ts, tomb) = c.get_cell_versioned("t", b"r", b"c", u64::MAX).unwrap().unwrap();
    assert_eq!(ts, t2);
    assert!(tomb, "tombstone must be visible to the versioned read");
    // Snapshot before the delete still sees the put.
    let (ts, tomb) = c.get_cell_versioned("t", b"r", b"c", t2 - 1).unwrap().unwrap();
    assert_eq!((ts, tomb), (t1, false));
}

#[test]
fn restarted_server_rejoins_and_recovery_clock_is_monotonic() {
    let (_d, c) = cluster(2);
    c.create_table("t", 2).unwrap();
    let mut last_ts = 0;
    for i in 0..50u8 {
        last_ts = c.put("t", &[i.wrapping_mul(5), b'k'], &[(b("c"), b("v"))]).unwrap().max(last_ts);
    }
    c.crash_server(1);
    c.recover().unwrap();
    c.restart_server(1);
    assert_eq!(c.servers(), vec![0, 1]);
    // Every post-recovery write must carry a timestamp beyond anything
    // written before the crash (the clock-advance fix).
    for i in 0..50u8 {
        let ts = c.put("t", &[i.wrapping_mul(5), b'k'], &[(b("c"), b("w"))]).unwrap();
        assert!(ts > last_ts, "post-recovery ts {ts} must exceed pre-crash {last_ts}");
    }
    // And the new values win everywhere.
    for i in 0..50u8 {
        let got = c.get("t", &[i.wrapping_mul(5), b'k'], b"c", u64::MAX).unwrap().unwrap();
        assert_eq!(got.value, Bytes::from("w"));
    }
}

#[test]
fn region_specs_cover_the_keyspace_in_order() {
    let (_d, c) = cluster(3);
    c.create_table("t", 6).unwrap();
    let specs = c.region_specs("t").unwrap();
    assert_eq!(specs.len(), 6);
    assert!(specs[0].start.is_empty());
    assert!(specs[5].end.is_none());
    for w in specs.windows(2) {
        assert_eq!(w[0].end.as_ref().unwrap(), &w[1].start, "regions must tile");
    }
}

#[test]
fn rpc_counter_grows_with_fanout() {
    let (_d, c) = cluster(2);
    c.create_table("t", 8).unwrap();
    let before = c.rpc_count();
    c.put("t", b"r", &[(b("c"), b("v"))]).unwrap(); // 1 region op
    let after_put = c.rpc_count();
    assert_eq!(after_put - before, 1);
    c.scan_rows("t", b"", None, u64::MAX, 100).unwrap(); // fans out to all 8
    assert_eq!(c.rpc_count() - after_put, 8);
}

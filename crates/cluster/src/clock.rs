//! Per-region-server timestamp oracle.
//!
//! HBase assigns each put a millisecond timestamp from
//! `System.currentTimeMillis()`, monotonically non-decreasing within a
//! region server (§2.2). Wall-clock milliseconds collide under load, which
//! would make distinct puts indistinguishable, so — like HBase's
//! `EnvironmentEdge` with a monotonic guard — we tick forward whenever the
//! wall clock hasn't advanced. The paper's `δ` (1 ms) is the unit.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic millisecond clock, one per region server.
#[derive(Debug)]
pub struct TimestampOracle {
    last: AtomicU64,
}

impl TimestampOracle {
    /// Oracle starting at the current wall-clock time.
    pub fn new() -> Self {
        Self { last: AtomicU64::new(wall_ms()) }
    }

    /// Oracle starting at a fixed value (deterministic tests).
    pub fn starting_at(ms: u64) -> Self {
        Self { last: AtomicU64::new(ms) }
    }

    /// Next timestamp: `max(wall clock, previous + 1)`.
    pub fn next(&self) -> u64 {
        let now = wall_ms();
        self.last
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |last| {
                Some(now.max(last + 1))
            })
            .map(|last| now.max(last + 1))
            .unwrap_or(now)
    }

    /// Most recently issued timestamp.
    pub fn last(&self) -> u64 {
        self.last.load(Ordering::Relaxed)
    }

    /// Ensure every future timestamp is `> ts`. Called when a region is
    /// opened on this server during recovery: the dead server may have
    /// issued timestamps ahead of our clock, and issuing a smaller one
    /// would make new writes lose to recovered data under LSM semantics.
    pub fn advance_past(&self, ts: u64) {
        self.last.fetch_max(ts, Ordering::Relaxed);
    }
}

impl Default for TimestampOracle {
    fn default() -> Self {
        Self::new()
    }
}

fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn strictly_increasing_single_thread() {
        let o = TimestampOracle::starting_at(1000);
        let a = o.next();
        let b = o.next();
        let c = o.next();
        assert!(a < b && b < c);
    }

    #[test]
    fn strictly_increasing_under_concurrency() {
        let o = Arc::new(TimestampOracle::starting_at(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let o = Arc::clone(&o);
                std::thread::spawn(move || (0..1000).map(|_| o.next()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "timestamps must be unique across threads");
    }

    #[test]
    fn tracks_wall_clock_forward() {
        let o = TimestampOracle::new();
        let t = o.next();
        // Sanity: somewhere in the 21st century.
        assert!(t > 1_600_000_000_000);
    }
}

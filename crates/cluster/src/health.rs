//! Master-side failure detection and self-healing (ZooKeeper's role in
//! Figure 3, automated).
//!
//! The paper's §5.3 recovery protocol assumes someone *notices* a dead
//! region server; in HBase that is ZooKeeper session expiry. This module is
//! that someone: a [`HealthMonitor`] probes every region server's liveness
//! (in-process probe by default, a `Ping` RPC over `crates/net` when the
//! cluster is fronted by sockets), tracks consecutive missed probes, and
//! walks each server through `Healthy → Suspect → Dead`. On the transition
//! to `Dead` it runs [`Cluster::recover`] — region reassignment (bumping
//! fencing epochs), WAL replay, observer re-delivery — with no operator in
//! the loop.
//!
//! The monitor can be driven two ways:
//!
//! * **ticked** — the owner calls [`HealthMonitor::tick`] explicitly. One
//!   tick is one probe round; transitions are a pure function of consecutive
//!   misses, so the chaos harness gets deterministic healing (a crashed
//!   server is declared dead exactly `dead_after` ticks after it stops
//!   answering).
//! * **threaded** — [`HealthMonitor::start`] spawns a background thread
//!   ticking every `probe_interval` until [`HealthMonitor::shutdown`].
//!
//! A false suspicion is harmless by construction: `recover()` consults the
//! cluster's own liveness registry and reassigns nothing for a server that
//! is actually up, and the epoch fence only advances when regions really
//! move.

use crate::cluster::{Cluster, WeakCluster};
use crate::keyspace::ServerId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Detector state of one region server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Answering probes.
    Healthy,
    /// Missed at least `suspect_after` consecutive probes — not yet
    /// declared dead (could be a dropped packet / long GC pause).
    Suspect,
    /// Missed `dead_after` consecutive probes: declared dead, regions
    /// reassigned. Stays `Dead` until a probe succeeds again (restart).
    Dead,
}

/// Failure-detection thresholds.
#[derive(Debug, Clone)]
pub struct HealthOptions {
    /// Consecutive missed probes before a server turns `Suspect`.
    pub suspect_after: u32,
    /// Consecutive missed probes before a server is declared `Dead` and
    /// recovery runs. Must be ≥ `suspect_after`; keeping it above 1 makes
    /// the detector robust to a single dropped probe (chaos injects those).
    pub dead_after: u32,
    /// Probe cadence of the background thread mode ([`HealthMonitor::start`]).
    pub probe_interval: Duration,
}

impl Default for HealthOptions {
    fn default() -> Self {
        Self { suspect_after: 1, dead_after: 2, probe_interval: Duration::from_millis(20) }
    }
}

/// Counters describing detector activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthMetrics {
    /// Individual liveness probes issued.
    pub probes: u64,
    /// Transitions into `Suspect`.
    pub suspicions: u64,
    /// Transitions into `Dead` (death declarations).
    pub deaths: u64,
    /// Automatic `Cluster::recover()` runs that completed.
    pub auto_recoveries: u64,
    /// Automatic recoveries that failed (e.g. no surviving servers) and
    /// will be retried on the next tick.
    pub failed_recoveries: u64,
    /// Transitions from `Suspect`/`Dead` back to `Healthy` (rejoins).
    pub rejoins: u64,
}

struct Track {
    state: HealthState,
    misses: u32,
    /// True once this death has been handled by a completed recovery; the
    /// flag resets when the server rejoins so a later death heals again.
    recovered: bool,
}

#[derive(Default)]
struct Counters {
    probes: AtomicU64,
    suspicions: AtomicU64,
    deaths: AtomicU64,
    auto_recoveries: AtomicU64,
    failed_recoveries: AtomicU64,
    rejoins: AtomicU64,
}

type Probe = dyn Fn(ServerId) -> bool + Send + Sync;

/// The master's failure detector + auto-recovery driver.
pub struct HealthMonitor {
    cluster: WeakCluster,
    opts: HealthOptions,
    probe: Mutex<Option<Box<Probe>>>,
    tracks: Mutex<BTreeMap<ServerId, Track>>,
    counters: Counters,
    shutdown: AtomicBool,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl HealthMonitor {
    /// Build a monitor over `cluster`. Holds only a weak handle, so the
    /// monitor never keeps a dropped cluster alive.
    pub fn new(cluster: &Cluster, opts: HealthOptions) -> Arc<Self> {
        assert!(opts.dead_after >= opts.suspect_after.max(1));
        Arc::new(Self {
            cluster: cluster.downgrade(),
            opts,
            probe: Mutex::new(None),
            tracks: Mutex::new(BTreeMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            thread: Mutex::new(None),
        })
    }

    /// Replace the default in-process liveness probe (`Cluster::is_alive`)
    /// with a custom one — the socket deployment installs a `Ping`-RPC probe
    /// here so detection exercises the real network path.
    pub fn set_probe(&self, probe: Box<Probe>) {
        *self.probe.lock() = Some(probe);
    }

    /// One probe round. Returns the servers declared dead *by this tick*
    /// (after their regions were recovered, when recovery succeeded).
    pub fn tick(&self) -> Vec<ServerId> {
        let Some(cluster) = self.cluster.upgrade() else {
            return Vec::new();
        };
        let mut newly_dead = Vec::new();
        {
            let probe = self.probe.lock();
            let mut tracks = self.tracks.lock();
            for sid in cluster.all_server_ids() {
                let up = match probe.as_ref() {
                    Some(p) => p(sid),
                    None => cluster.is_alive(sid),
                };
                self.counters.probes.fetch_add(1, Ordering::Relaxed);
                let t = tracks.entry(sid).or_insert(Track {
                    state: HealthState::Healthy,
                    misses: 0,
                    recovered: false,
                });
                if up {
                    if t.state != HealthState::Healthy {
                        self.counters.rejoins.fetch_add(1, Ordering::Relaxed);
                    }
                    t.state = HealthState::Healthy;
                    t.misses = 0;
                    t.recovered = false;
                    continue;
                }
                t.misses = t.misses.saturating_add(1);
                let next = if t.misses >= self.opts.dead_after {
                    HealthState::Dead
                } else if t.misses >= self.opts.suspect_after {
                    HealthState::Suspect
                } else {
                    HealthState::Healthy
                };
                if next == HealthState::Suspect && t.state == HealthState::Healthy {
                    self.counters.suspicions.fetch_add(1, Ordering::Relaxed);
                }
                if next == HealthState::Dead && t.state != HealthState::Dead {
                    self.counters.deaths.fetch_add(1, Ordering::Relaxed);
                    newly_dead.push(sid);
                }
                t.state = next;
            }
        }
        // Heal outside the track lock: recovery dispatches observers, which
        // issue cluster ops. `recover()` reassigns every dead server's
        // regions in one pass, so one call covers all fresh deaths; servers
        // whose recovery failed (no survivors yet) retry on the next tick.
        if self.needs_recovery() {
            match cluster.recover() {
                Ok(()) => {
                    self.counters.auto_recoveries.fetch_add(1, Ordering::Relaxed);
                    let mut tracks = self.tracks.lock();
                    for t in tracks.values_mut() {
                        if t.state == HealthState::Dead {
                            t.recovered = true;
                        }
                    }
                }
                Err(_) => {
                    self.counters.failed_recoveries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        newly_dead
    }

    fn needs_recovery(&self) -> bool {
        self.tracks
            .lock()
            .values()
            .any(|t| t.state == HealthState::Dead && !t.recovered)
    }

    /// Current detector state of `server` (`Healthy` if never probed).
    pub fn state_of(&self, server: ServerId) -> HealthState {
        self.tracks
            .lock()
            .get(&server)
            .map(|t| t.state)
            .unwrap_or(HealthState::Healthy)
    }

    /// Detector states of every probed server.
    pub fn states(&self) -> Vec<(ServerId, HealthState)> {
        self.tracks.lock().iter().map(|(&s, t)| (s, t.state)).collect()
    }

    /// Detector activity counters.
    pub fn metrics(&self) -> HealthMetrics {
        HealthMetrics {
            probes: self.counters.probes.load(Ordering::Relaxed),
            suspicions: self.counters.suspicions.load(Ordering::Relaxed),
            deaths: self.counters.deaths.load(Ordering::Relaxed),
            auto_recoveries: self.counters.auto_recoveries.load(Ordering::Relaxed),
            failed_recoveries: self.counters.failed_recoveries.load(Ordering::Relaxed),
            rejoins: self.counters.rejoins.load(Ordering::Relaxed),
        }
    }

    /// Spawn the background probe thread (idempotent). The thread ticks
    /// every `probe_interval` until [`HealthMonitor::shutdown`] or the
    /// cluster is dropped.
    pub fn start(self: &Arc<Self>) {
        let mut slot = self.thread.lock();
        if slot.is_some() {
            return;
        }
        let me = Arc::clone(self);
        *slot = Some(std::thread::spawn(move || {
            while !me.shutdown.load(Ordering::Relaxed) {
                if me.cluster.upgrade().is_none() {
                    break;
                }
                me.tick();
                std::thread::sleep(me.opts.probe_interval);
            }
        }));
    }

    /// Stop the background probe thread (no-op if never started).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterOptions;
    use tempdir_lite::TempDir;

    fn cluster(n: usize) -> (TempDir, Cluster) {
        let dir = TempDir::new("health").unwrap();
        let c = Cluster::new(
            dir.path(),
            ClusterOptions { num_servers: n, ..ClusterOptions::default() },
        )
        .unwrap();
        (dir, c)
    }

    #[test]
    fn healthy_cluster_stays_healthy() {
        let (_d, c) = cluster(3);
        let m = HealthMonitor::new(&c, HealthOptions::default());
        for _ in 0..5 {
            assert!(m.tick().is_empty());
        }
        assert!(m.states().iter().all(|(_, s)| *s == HealthState::Healthy));
        let metrics = m.metrics();
        assert_eq!(metrics.probes, 15);
        assert_eq!(metrics.deaths, 0);
        assert_eq!(metrics.auto_recoveries, 0);
    }

    #[test]
    fn crash_walks_suspect_then_dead_then_auto_recovers() {
        let (_d, c) = cluster(2);
        c.create_table("t", 4).unwrap();
        let row = (0..=255u8)
            .map(|b| [b, b'h'])
            .find(|r| c.server_for_row("t", r).unwrap() == 1)
            .unwrap();
        c.put("t", &row, &[(bytes::Bytes::from("c"), bytes::Bytes::from("v"))]).unwrap();

        let m = HealthMonitor::new(
            &c,
            HealthOptions { suspect_after: 1, dead_after: 2, ..HealthOptions::default() },
        );
        m.tick();
        c.crash_server(1);
        assert!(m.tick().is_empty(), "first miss: suspect only");
        assert_eq!(m.state_of(1), HealthState::Suspect);
        assert!(
            matches!(c.get("t", &row, b"c", u64::MAX), Err(crate::error::ClusterError::ServerDown(1))),
            "no recovery has run yet"
        );
        assert_eq!(m.tick(), vec![1], "second miss: declared dead");
        assert_eq!(m.state_of(1), HealthState::Dead);
        // Recovery ran automatically: the row is readable from the new owner.
        let got = c.get("t", &row, b"c", u64::MAX).unwrap().unwrap();
        assert_eq!(got.value, bytes::Bytes::from("v"));
        assert_eq!(m.metrics().auto_recoveries, 1);
        assert_eq!(c.recovery_stats().recoveries, 1);

        // Restart → rejoin; a later crash of the other server heals too.
        c.restart_server(1);
        m.tick();
        assert_eq!(m.state_of(1), HealthState::Healthy);
        assert_eq!(m.metrics().rejoins, 1);
        c.crash_server(0);
        m.tick();
        m.tick();
        assert_eq!(m.state_of(0), HealthState::Dead);
        assert_eq!(m.metrics().auto_recoveries, 2);
        let got = c.get("t", &row, b"c", u64::MAX).unwrap().unwrap();
        assert_eq!(got.value, bytes::Bytes::from("v"));
    }

    #[test]
    fn single_dropped_probe_does_not_kill_a_live_server() {
        let (_d, c) = cluster(2);
        let m = HealthMonitor::new(
            &c,
            HealthOptions { suspect_after: 1, dead_after: 2, ..HealthOptions::default() },
        );
        // Custom probe that fails exactly once for server 0.
        let dropped = AtomicBool::new(false);
        let c2 = c.clone();
        m.set_probe(Box::new(move |sid| {
            if sid == 0 && !dropped.swap(true, Ordering::SeqCst) {
                return false;
            }
            c2.is_alive(sid)
        }));
        m.tick();
        assert_eq!(m.state_of(0), HealthState::Suspect, "one miss suspects");
        m.tick();
        assert_eq!(m.state_of(0), HealthState::Healthy, "next success clears it");
        assert_eq!(m.metrics().deaths, 0);
        assert_eq!(c.recovery_stats().recoveries, 0);
    }

    #[test]
    fn background_thread_heals_without_ticks() {
        let (_d, c) = cluster(2);
        c.create_table("t", 4).unwrap();
        let row = (0..=255u8)
            .map(|b| [b, b't'])
            .find(|r| c.server_for_row("t", r).unwrap() == 1)
            .unwrap();
        c.put("t", &row, &[(bytes::Bytes::from("c"), bytes::Bytes::from("v"))]).unwrap();
        let m = HealthMonitor::new(
            &c,
            HealthOptions {
                suspect_after: 1,
                dead_after: 2,
                probe_interval: Duration::from_millis(5),
            },
        );
        m.start();
        m.start(); // idempotent
        c.crash_server(1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match c.get("t", &row, b"c", u64::MAX) {
                Ok(Some(v)) => {
                    assert_eq!(v.value, bytes::Bytes::from("v"));
                    break;
                }
                _ if std::time::Instant::now() > deadline => {
                    panic!("background monitor did not heal in time")
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        m.shutdown();
        assert!(m.metrics().auto_recoveries >= 1);
    }
}
